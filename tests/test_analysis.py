"""Unit tests for statistics and table rendering."""

import pytest

from repro.analysis import (
    Summary,
    ascii_bars,
    ascii_series,
    cdf_points,
    mean,
    render_table,
    stdev,
    summarize,
)
from repro.analysis.stats import median, percentile


def test_mean_empty():
    assert mean([]) == 0.0


def test_mean_basic():
    assert mean([1, 2, 3]) == pytest.approx(2.0)


def test_stdev():
    assert stdev([5]) == 0.0
    assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.0)


def test_median():
    assert median([]) == 0.0
    assert median([3, 1, 2]) == 2
    assert median([1, 2, 3, 4]) == pytest.approx(2.5)


def test_percentile():
    values = list(range(11))
    assert percentile(values, 0) == 0
    assert percentile(values, 50) == 5
    assert percentile(values, 100) == 10
    assert percentile(values, 25) == pytest.approx(2.5)
    with pytest.raises(ValueError):
        percentile(values, 101)


def test_summarize():
    summary = summarize([1.0, 2.0, 3.0])
    assert summary.mean == pytest.approx(2.0)
    assert summary.n == 3
    assert summary.minimum == 1.0
    assert summary.maximum == 3.0
    assert "±" in str(summary)


def test_summarize_empty():
    assert summarize([]) == Summary(0.0, 0.0, 0.0, 0.0, 0)


def test_empty_summary_renders_na_not_fabricated_zeros():
    empty = summarize([], failures=5)
    assert str(empty) == "n/a (n=0) [5 failed]"
    assert empty.fmt_mean() == "n/a"
    assert empty.fmt_stdev() == "n/a"
    # A populated summary keeps the numeric rendering.
    full = summarize([1.0, 2.0])
    assert full.fmt_mean() == "1.500"
    assert full.fmt_mean(".1f") == "1.5"
    assert "n/a" not in str(full)


def test_cdf_points():
    points = cdf_points([3.0, 1.0, 2.0])
    assert points == [(1.0, pytest.approx(1 / 3)),
                      (2.0, pytest.approx(2 / 3)),
                      (3.0, pytest.approx(1.0))]


def test_render_table_alignment():
    table = render_table(["name", "value"], [["a", 1], ["long-name", 22]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}


def test_ascii_bars():
    chart = ascii_bars(["a", "bb"], [1.0, 2.0])
    lines = chart.splitlines()
    assert len(lines) == 2
    assert lines[1].count("#") > lines[0].count("#")


def test_ascii_bars_mismatched_lengths():
    with pytest.raises(ValueError):
        ascii_bars(["a"], [1.0, 2.0])


def test_ascii_series():
    out = ascii_series({"s": [(1, 1.0), (2, 4.0)]})
    assert "series: s" in out
    assert out.count("|") == 2
