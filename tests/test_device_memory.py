"""Unit tests for the memory-pressure model."""

import pytest

from repro.device import Device, MemoryModel, MemorySpec, NEXUS4
from repro.sim import Environment


def test_spec_validation():
    with pytest.raises(ValueError):
        MemorySpec(size_gb=0)
    with pytest.raises(ValueError):
        MemorySpec(size_gb=1.0, os_reserved_gb=1.5)


def test_available_memory():
    spec = MemorySpec(size_gb=2.0, os_reserved_gb=0.3)
    assert spec.available_gb == pytest.approx(1.7)


def test_no_penalty_when_fitting():
    model = MemoryModel(MemorySpec(2.0))
    assert model.cycle_multiplier(0.4) == 1.0


def test_penalty_grows_monotonically():
    model = MemoryModel(MemorySpec(0.5))
    ws = [0.1, 0.2, 0.3, 0.4, 0.6, 1.0]
    factors = [model.cycle_multiplier(w) for w in ws]
    assert factors == sorted(factors)


def test_penalty_caps_at_max():
    model = MemoryModel(MemorySpec(0.5))
    assert model.cycle_multiplier(50.0) == model.max_penalty


def test_knee_at_exact_fit():
    model = MemoryModel(MemorySpec(1.0, os_reserved_gb=0.3))
    assert model.cycle_multiplier(0.7) == pytest.approx(model.knee_penalty)


def test_paper_calibration_point():
    """Chrome working set on 512 MB ≈ 2× cycles; on 2 GB ≈ 1×."""
    big = MemoryModel(MemorySpec(2.0))
    small = MemoryModel(MemorySpec(0.5))
    ws = 0.38
    assert big.cycle_multiplier(ws) == pytest.approx(1.0)
    assert 1.7 < small.cycle_multiplier(ws) < 2.8


def test_negative_working_set_rejected():
    model = MemoryModel(MemorySpec(1.0))
    with pytest.raises(ValueError):
        model.pressure(-0.1)


def test_model_parameter_validation():
    with pytest.raises(ValueError):
        MemoryModel(MemorySpec(1.0), comfort=1.5)
    with pytest.raises(ValueError):
        MemoryModel(MemorySpec(1.0), knee_penalty=0.5)


def test_device_applies_working_set_multiplier():
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=1512, memory_gb=0.5)
    device.set_working_set(0.38)
    assert device.memory_pressure_multiplier > 1.5
    task = device.submit(1e9)
    env.run(task.done)
    base = 1e9 / (1512e6 * 1.40)
    assert env.now > 1.5 * base


def test_device_os_reservation_depends_on_android_version():
    env = Environment()
    modern = Device(env, NEXUS4)  # Android 5.1.1
    assert modern.memory.spec.os_reserved_gb == pytest.approx(0.30)
