"""End-to-end cache determinism: cold and warm runs are byte-identical.

The acceptance contract for the result cache is replay, not
approximation: a warm run must produce the same journal bytes, the same
deterministic runlog view, and the same figure stdout as the cold run
that populated the cache — at any ``--jobs`` value — with a 100% hit
ratio.  Cache traffic itself is host-only observability and must never
leak into any compared artifact.
"""

from __future__ import annotations

import json

from repro.cache import TrialCache
from repro.cli import main
from repro.core.experiments import RobustTrialRunner, TrialRunner, derive_seed
from repro.obs.runlog import RunLog, deterministic_bytes, read_runlog


def seeded_trial(seed: int) -> float:
    return (seed % 97) / 97.0


def flaky_trial(seed: int) -> float:
    if seed % 2 == 0:
        raise RuntimeError("boom")
    return float(seed)


def record_facets(report):
    """The deterministic face of a run report (host wall time excluded)."""
    return [(r.trial, r.seed, r.status, r.value, r.error, r.attempts)
            for r in report.records]


def run_robust(tmp_path, tag, cache, trials=4):
    journal = tmp_path / f"journal_{tag}.json"
    runlog_path = tmp_path / f"run_{tag}.jsonl"
    with RunLog(runlog_path) as runlog:
        runner = RobustTrialRunner(trials=trials, experiment="exp",
                                   journal_path=journal, runlog=runlog,
                                   cache=cache)
        values = runner.run(seeded_trial)
    return values, journal.read_bytes(), read_runlog(runlog_path)


def test_cold_and_warm_robust_runs_are_byte_identical(tmp_path):
    cache = TrialCache(tmp_path / "cache")
    cold_values, cold_journal, cold_events = run_robust(tmp_path, "cold",
                                                        cache)
    assert (cache.stats.hits, cache.stats.misses) == (0, 4)
    assert cache.stats.stores == 4

    warm_cache = TrialCache(tmp_path / "cache")
    warm_values, warm_journal, warm_events = run_robust(tmp_path, "warm",
                                                        warm_cache)
    assert record_facets(warm_values) == record_facets(cold_values)
    assert warm_journal == cold_journal
    assert warm_cache.stats.hit_ratio == 1.0
    # Host-only traffic differs (cache events, wall times); the
    # deterministic view must not.
    assert (deterministic_bytes(warm_events)
            == deterministic_bytes(cold_events))
    kinds = [e["event"] for e in warm_events]
    assert kinds.count("cache_hit") == 4
    assert "task_dispatch" not in kinds  # nothing reached the executor


def test_warm_run_replays_trial_complete_with_zero_wall(tmp_path):
    cache = TrialCache(tmp_path / "cache")
    run_robust(tmp_path, "cold", cache)
    _, _, events = run_robust(tmp_path, "warm",
                              TrialCache(tmp_path / "cache"))
    completes = [e for e in events if e["event"] == "trial_complete"]
    assert len(completes) == 4
    assert all(e["host"] == {"wall_s": 0.0} for e in completes)
    assert all(e["status"] == "ok" for e in completes)


def test_failed_trials_are_never_cached(tmp_path):
    cache = TrialCache(tmp_path / "cache")
    journal = tmp_path / "journal.json"
    runner = RobustTrialRunner(trials=4, experiment="exp", max_attempts=1,
                               journal_path=journal, cache=cache)
    runner.run(flaky_trial)
    rows = json.loads(journal.read_text())["records"]
    failed = sum(1 for r in rows if r["status"] != "ok")
    assert failed > 0
    assert cache.entry_count() == 4 - failed  # only ok rows stored
    # A warm run re-executes exactly the failed trials.
    warm = TrialCache(tmp_path / "cache")
    RobustTrialRunner(trials=4, experiment="exp", max_attempts=1,
                      journal_path=tmp_path / "j2.json",
                      cache=warm).run(flaky_trial)
    assert warm.stats.hits == 4 - failed
    assert warm.stats.misses == failed


def test_trial_runner_uses_the_cache_for_plain_sweeps(tmp_path):
    cache = TrialCache(tmp_path / "cache")
    cold = TrialRunner(trials=3, experiment="exp", cache=cache).run(
        seeded_trial)
    assert cache.stats.stores == 3
    warm_cache = TrialCache(tmp_path / "cache")
    warm = TrialRunner(trials=3, experiment="exp", cache=warm_cache).run(
        seeded_trial)
    assert warm == cold
    assert warm_cache.stats.hit_ratio == 1.0


def test_trial_index_and_seed_both_guard_the_key(tmp_path):
    # Two experiments share trial indices but derive different seeds;
    # their entries must not collide.
    cache = TrialCache(tmp_path / "cache")
    a = TrialRunner(trials=2, experiment="a", cache=cache).run(seeded_trial)
    b = TrialRunner(trials=2, experiment="b", cache=cache).run(seeded_trial)
    assert cache.stats.hits == 0 and cache.stats.misses == 4
    assert a == [seeded_trial(derive_seed("a", t)) for t in range(2)]
    assert b == [seeded_trial(derive_seed("b", t)) for t in range(2)]


# -- the CLI round trip ------------------------------------------------------

FAST = ["fig3a", "--trials", "1", "--pages", "1"]


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_cli_cache_round_trip_is_deterministic(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    code, cold_out, cold_err = run_cli(
        capsys, FAST + ["--cache", cache_dir,
                        "--journal", str(tmp_path / "j1")])
    assert code == 0
    assert " 0 hits, " in cold_err and " stores" in cold_err

    code, warm_out, warm_err = run_cli(
        capsys, FAST + ["--cache", cache_dir,
                        "--journal", str(tmp_path / "j2")])
    assert code == 0
    assert warm_out == cold_out
    assert "(100% hit ratio)" in warm_err
    for name in (tmp_path / "j1").glob("*.json"):
        assert name.read_bytes() == (tmp_path / "j2" / name.name).read_bytes()


def test_cli_cache_env_var_is_the_flag_default(tmp_path, capsys,
                                               monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "envcache"))
    code, _, err = run_cli(capsys, FAST)
    assert code == 0
    assert "cache:" in err
    assert (tmp_path / "envcache" / "repro-cache.json").exists()


def test_cli_without_cache_prints_no_cache_line(tmp_path, capsys):
    code, _, err = run_cli(capsys, FAST)
    assert code == 0
    assert "cache:" not in err


def test_cache_subcommand_stats_gc_clear(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert run_cli(capsys, FAST + ["--cache", cache_dir])[0] == 0

    code, out, _ = run_cli(capsys, ["cache", "stats", cache_dir])
    assert code == 0
    assert "entries" in out and "fig3a" in out

    code, out, _ = run_cli(capsys, ["cache", "gc", cache_dir,
                                    "--max-bytes", "0"])
    assert code == 0
    assert "removed" in out

    assert run_cli(capsys, FAST + ["--cache", cache_dir])[0] == 0
    code, out, _ = run_cli(capsys, ["cache", "clear", cache_dir])
    assert code == 0
    assert "removed" in out


def test_cache_subcommand_error_paths(tmp_path, capsys):
    code, _, err = run_cli(capsys, ["cache", "stats"])
    assert code == 2
    assert "error: no cache directory" in err
    code, _, err = run_cli(capsys, ["cache", "gc", str(tmp_path)])
    assert code == 2  # gc needs at least one criterion
    code, _, err = run_cli(capsys, ["cache", "clear", str(tmp_path)])
    assert code == 2  # unmarked directory refused
    assert "repro-cache" in err
