"""Unit tests for the regex parser and AST normalization."""

import pytest

from repro.regexlib import RegexSyntaxError
from repro.regexlib.parse import (
    Alternate,
    Anchor,
    CharClass,
    Concat,
    Dot,
    Empty,
    Group,
    Literal,
    Repeat,
    merge_intervals,
    negate_intervals,
    parse,
)


def test_literal_sequence():
    node, groups = parse("abc")
    assert isinstance(node, Concat)
    assert [type(p) for p in node.parts] == [Literal] * 3
    assert groups == 0


def test_empty_pattern():
    node, _ = parse("")
    assert isinstance(node, Empty)


def test_alternation_order_preserved():
    node, _ = parse("a|b|c")
    assert isinstance(node, Alternate)
    assert [p.char for p in node.options] == ["a", "b", "c"]


def test_group_counting():
    _, groups = parse("(a)(b(c))")
    assert groups == 3


def test_non_capturing_group_not_counted():
    node, groups = parse("(?:ab)+")
    assert groups == 0
    assert isinstance(node, Repeat)


def test_quantifiers():
    star, _ = parse("a*")
    plus, _ = parse("a+")
    quest, _ = parse("a?")
    assert (star.min, star.max) == (0, None)
    assert (plus.min, plus.max) == (1, None)
    assert (quest.min, quest.max) == (0, 1)
    assert not star.lazy


def test_lazy_quantifiers():
    node, _ = parse("a+?")
    assert node.lazy


def test_counted_repeats():
    exact, _ = parse("a{3}")
    assert (exact.min, exact.max) == (3, 3)
    ranged, _ = parse("a{2,5}")
    assert (ranged.min, ranged.max) == (2, 5)
    open_ended, _ = parse("a{4,}")
    assert (open_ended.min, open_ended.max) == (4, None)


def test_brace_without_digits_is_literal():
    node, _ = parse("a{x}")
    assert isinstance(node, Concat)
    assert node.parts[1].char == "{"


def test_reversed_repeat_bounds_rejected():
    with pytest.raises(RegexSyntaxError):
        parse("a{5,2}")


def test_huge_repeat_rejected():
    with pytest.raises(RegexSyntaxError):
        parse("a{1,100000}")


def test_char_class_ranges_merge():
    node, _ = parse("[a-cb-e]")
    assert isinstance(node, CharClass)
    assert node.intervals == ((ord("a"), ord("e")),)


def test_negated_class():
    node, _ = parse("[^a]")
    assert isinstance(node, CharClass)
    # 'a' must not be inside any interval.
    assert not any(lo <= ord("a") <= hi for lo, hi in node.intervals)
    assert any(lo <= ord("b") <= hi for lo, hi in node.intervals)


def test_class_with_escape_classes():
    node, _ = parse(r"[\d\s]")
    assert isinstance(node, CharClass)
    assert any(lo <= ord("5") <= hi for lo, hi in node.intervals)
    assert any(lo <= ord(" ") <= hi for lo, hi in node.intervals)


def test_literal_dash_in_class():
    node, _ = parse("[a-]")
    assert any(lo <= ord("-") <= hi for lo, hi in node.intervals)


def test_reversed_range_rejected():
    with pytest.raises(RegexSyntaxError):
        parse("[z-a]")


def test_unterminated_class_rejected():
    with pytest.raises(RegexSyntaxError):
        parse("[abc")


def test_unbalanced_paren_rejected():
    with pytest.raises(RegexSyntaxError):
        parse("(ab")
    with pytest.raises(RegexSyntaxError):
        parse("ab)")


def test_dangling_quantifier_rejected():
    with pytest.raises(RegexSyntaxError):
        parse("*a")


def test_quantified_anchor_rejected():
    with pytest.raises(RegexSyntaxError):
        parse("^*")


def test_anchors():
    node, _ = parse("^a$")
    assert isinstance(node.parts[0], Anchor) and node.parts[0].kind == "bol"
    assert isinstance(node.parts[2], Anchor) and node.parts[2].kind == "eol"


def test_word_boundary_escapes():
    node, _ = parse(r"\ba\B")
    assert node.parts[0].kind == "wb"
    assert node.parts[2].kind == "nwb"


def test_hex_and_unicode_escapes():
    node, _ = parse(r"\x41B")
    assert node.parts[0].char == "A"
    assert node.parts[1].char == "B"


def test_truncated_hex_rejected():
    with pytest.raises(RegexSyntaxError):
        parse(r"\x4")


def test_unknown_escape_rejected():
    with pytest.raises(RegexSyntaxError):
        parse(r"\q")


def test_dot_node():
    node, _ = parse(".")
    assert isinstance(node, Dot)


def test_syntax_error_reports_position():
    try:
        parse("ab[")
    except RegexSyntaxError as error:
        assert error.position >= 2
        assert error.pattern == "ab["
    else:  # pragma: no cover
        pytest.fail("expected RegexSyntaxError")


def test_merge_intervals():
    assert merge_intervals([(5, 9), (1, 3), (4, 6)]) == ((1, 9),)
    assert merge_intervals([(1, 2), (5, 6)]) == ((1, 2), (5, 6))


def test_negate_intervals_roundtrip():
    intervals = ((10, 20), (30, 40))
    twice = negate_intervals(negate_intervals(intervals))
    assert twice == intervals
