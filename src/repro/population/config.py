"""Fleet configuration and the seeded per-session sampler.

A fleet run is a pure function of its :class:`PopulationConfig`: session
``i`` always draws the same (tier, device, workload, network, page) and
simulates with the same seed, whatever the worker count.  All randomness
flows through :func:`~repro.core.experiments.derive_seed` and
:func:`~repro.core.background.make_rng` — the audited construction
points simlint's dataflow rules (DF701) trace.

Two seed namespaces keep sampling and simulation independent:

* ``{experiment}#mix`` seeds the *draw* of session ``i``'s composition,
* ``{experiment}:{workload}`` seeds the *simulation* of session ``i``,

so changing the market mix never perturbs the QoE stream of sessions
whose draw happens to be unchanged, and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple, TypeVar

from repro.core.background import make_rng
from repro.core.experiments import derive_seed
from repro.device.catalog import DeviceSpec
from repro.netstack import LinkSpec
from repro.population.market import (
    DEFAULT_NETWORKS,
    DEFAULT_WORKLOAD_MIX,
    DeviceTier,
    NetworkProfile,
    WORKLOADS,
    default_market,
)

T = TypeVar("T")


@dataclass(frozen=True)
class PopulationConfig:
    """Everything a fleet run depends on (and nothing about *how* it runs).

    Executors, runlogs, and caches stay out on purpose: they are passed
    to :class:`~repro.population.fleet.FleetRunner` directly, so this
    object is pure data — picklable for workers and canonicalizable for
    cache keys.
    """

    sessions: int = 200
    seed: int = 0
    tiers: Tuple[DeviceTier, ...] = field(default_factory=default_market)
    workload_mix: Tuple[Tuple[str, float], ...] = DEFAULT_WORKLOAD_MIX
    networks: Tuple[NetworkProfile, ...] = DEFAULT_NETWORKS
    n_pages: int = 6
    video_s: float = 20.0
    call_s: float = 10.0
    background_jitter: bool = True

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError(f"need at least one session (got {self.sessions})")
        if self.seed < 0:
            raise ValueError(f"seed cannot be negative (got {self.seed})")
        if not self.tiers:
            raise ValueError("need at least one device tier")
        names = [tier.name for tier in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names in {names}")
        if not self.workload_mix:
            raise ValueError("need at least one workload in the mix")
        for workload, share in self.workload_mix:
            if workload not in WORKLOADS:
                raise ValueError(
                    f"unknown workload {workload!r} (expected one of "
                    f"{WORKLOADS})")
            if share <= 0:
                raise ValueError(
                    f"workload {workload!r} share must be positive "
                    f"(got {share})")
        if not self.networks:
            raise ValueError("need at least one network profile")
        if self.n_pages < 1:
            raise ValueError(f"need at least one page (got {self.n_pages})")
        if self.video_s <= 0:
            raise ValueError(
                f"video duration must be positive (got {self.video_s})")
        if self.call_s <= 0:
            raise ValueError(
                f"call duration must be positive (got {self.call_s})")

    @property
    def experiment(self) -> str:
        """The seed-namespace root every session derives from."""
        return f"population@{self.seed}"


@dataclass(frozen=True)
class SessionSpec:
    """One sampled user session, fully determined before simulation."""

    index: int
    tier: str
    device: DeviceSpec
    workload: str
    network: str
    link: LinkSpec
    page_index: int
    seed: int


def _weighted(rng, pairs: List[Tuple[T, float]]) -> T:
    """One share-weighted draw (weights normalized implicitly)."""
    total = sum(share for _, share in pairs)
    mark = rng.random() * total
    cumulative = 0.0
    for value, share in pairs:
        cumulative += share
        if mark < cumulative:
            return value
    return pairs[-1][0]


class SessionSampler:
    """Maps a session index to its deterministic :class:`SessionSpec`."""

    def __init__(self, config: PopulationConfig):
        self.config = config
        self._tier_pairs = [(tier, tier.share) for tier in config.tiers]
        self._workload_pairs = list(config.workload_mix)
        self._network_pairs = [(net, net.share) for net in config.networks]

    def sample(self, index: int) -> SessionSpec:
        """Session ``index``'s composition — a pure function of config."""
        if not 0 <= index < self.config.sessions:
            raise ValueError(
                f"session index {index} outside [0, {self.config.sessions})")
        experiment = self.config.experiment
        rng = make_rng(derive_seed(f"{experiment}#mix", index))
        tier = _weighted(rng, self._tier_pairs)
        device = tier.devices[rng.randrange(len(tier.devices))]
        workload = _weighted(rng, self._workload_pairs)
        network = _weighted(rng, self._network_pairs)
        page_index = rng.randrange(self.config.n_pages)
        return SessionSpec(
            index=index,
            tier=tier.name,
            device=device,
            workload=workload,
            network=network.name,
            link=network.link,
            page_index=page_index,
            seed=derive_seed(f"{experiment}:{workload}", index),
        )


__all__ = ["PopulationConfig", "SessionSampler", "SessionSpec"]
