"""Regex call profiling: measure real engine work for (pattern, subject).

The page generator attaches thousands of regex calls to scripts; executing
each one through the engine at generation time would be wasteful because
the same (pattern, subject) pairs recur constantly (the same URL filter
over the same kind of list).  :class:`RegexProfiler` runs each distinct
pair exactly once — through the Pike VM *and*, when supported, the lazy
DFA — and memoizes the measured operation counts.
"""

from __future__ import annotations

from typing import Optional

from repro.jsruntime.model import RegexCall
from repro.regexlib import Regex
from repro.regexlib.pikevm import Counter
from repro.regexlib import pikevm


class RegexProfiler:
    """Executes and memoizes regex calls, producing :class:`RegexCall`\\ s."""

    def __init__(self) -> None:
        self._regexes: dict[str, Regex] = {}
        self._measured: dict[tuple[str, str, str], tuple[int, Optional[int]]] = {}

    def _regex(self, pattern: str) -> Regex:
        regex = self._regexes.get(pattern)
        if regex is None:
            regex = Regex(pattern)
            self._regexes[pattern] = regex
        return regex

    def _measure(self, pattern: str, subject: str, mode: str) -> tuple[int, Optional[int]]:
        key = (pattern, subject, mode)
        cached = self._measured.get(key)
        if cached is not None:
            return cached
        regex = self._regex(pattern)
        # Pike VM cost (captures / spans / findall all run here).
        counter = Counter()
        if mode == "findall":
            pos = 0
            while pos <= len(subject):
                slots = pikevm.run(regex.program, subject, start=pos, counter=counter)
                if slots is None:
                    break
                start, end = slots[0], slots[1]
                pos = end + 1 if end == start else end
        else:
            pikevm.run(regex.program, subject, counter=counter)
        pike_ops = counter.ops
        # DFA cost, when this call shape can use it.
        dfa_ops: Optional[int] = None
        dfa = regex.dfa()
        if dfa is not None and mode == "test":
            dfa_counter = Counter()
            dfa.matches(subject, dfa_counter)
            dfa_ops = dfa_counter.ops
        result = (pike_ops, dfa_ops)
        self._measured[key] = result
        return result

    def profile(self, pattern: str, subject: str, mode: str = "test",
                repeats: int = 1) -> RegexCall:
        """Measure one call and return its recorded descriptor."""
        pike_ops, dfa_ops = self._measure(pattern, subject, mode)
        return RegexCall(
            pattern=pattern,
            subject_chars=len(subject),
            mode=mode,
            pike_ops=pike_ops,
            dfa_ops=dfa_ops,
            repeats=repeats,
        )


__all__ = ["RegexProfiler"]
