"""Fig 5b: telephony QoE vs memory capacity (mild effect)."""

from repro.analysis import render_table
from repro.core.studies import RtcStudy, RtcStudyConfig
from repro.rtc import CallConfig


def run_fig5b():
    study = RtcStudy(RtcStudyConfig(call=CallConfig(call_duration_s=10),
                                    trials=1))
    return study.vs_memory(sizes_gb=(0.5, 1.0, 1.5, 2.0))


def test_fig5b(benchmark, fig_printer):
    points = benchmark.pedantic(run_fig5b, rounds=1, iterations=1)
    table = render_table(
        ["Memory (GB)", "Setup delay (s)", "Frame rate (fps)"],
        [[p.label, f"{p.setup_delay.mean:.1f}", f"{p.frame_rate.mean:.1f}"]
         for p in points],
    )
    fig_printer("Fig 5b: Skype vs memory (Nexus4)", table)
    by_gb = {p.label: p for p in points}
    # Memory matters less than the clock: frame rate holds up.
    assert by_gb[0.5].frame_rate.mean > 0.6 * by_gb[2.0].frame_rate.mean
    assert by_gb[0.5].setup_delay.mean >= by_gb[2.0].setup_delay.mean * 0.95
