"""Numeric-flag validation matrix: every bad value exits 2 with one line.

The contract under test: an out-of-range numeric flag never reaches the
study code.  The CLI prints exactly one ``error: ...`` line to stderr
that names the flag and echoes the offending value, and exits 2 — it
must never "succeed" by printing an all-zero figure (the ``--pages 0``
regression) or crash with a traceback.
"""

from __future__ import annotations

import pytest

from repro.cli import main

#: (argv suffix, flag name as it must appear in the message).
#: --task-timeout / --max-task-retries ride on --jobs 2 because they are
#: rejected outright under serial execution (a separate, earlier check).
MATRIX = [
    (["--pages", "0"], "--pages"),
    (["--pages", "-3"], "--pages"),
    (["--trials", "0"], "--trials"),
    (["--trials", "-2"], "--trials"),
    (["--media-s", "0"], "--media-s"),
    (["--media-s", "-1.5"], "--media-s"),
    (["--jobs", "0"], "--jobs"),
    (["--jobs", "-4"], "--jobs"),
    (["--jobs", "2", "--task-timeout", "0"], "--task-timeout"),
    (["--jobs", "2", "--task-timeout", "-30"], "--task-timeout"),
    (["--jobs", "2", "--max-task-retries", "-1"], "--max-task-retries"),
    (["--crash-probability", "-0.1"], "--crash-probability"),
    (["--crash-probability", "1.5"], "--crash-probability"),
]


@pytest.mark.parametrize("suffix,flag", MATRIX,
                         ids=["_".join(s) for s, _ in MATRIX])
@pytest.mark.parametrize("figure", ["faults", "fig3a"])
def test_bad_numeric_flag_exits_2_naming_flag_and_value(
        capsys, figure, suffix, flag):
    assert main([figure] + suffix) == 2
    err = capsys.readouterr().err.strip()
    assert err.startswith("error:")
    assert len(err.splitlines()) == 1
    assert flag in err
    assert suffix[-1].lstrip("-").rstrip("0").rstrip(".") in err.replace(
        "-", "")  # the offending value is echoed (sign/float-format free)
    assert "Traceback" not in err


def test_bad_flag_produces_no_stdout(capsys):
    # Regression: `fig3a --pages 0` used to exit 0 and print a full
    # figure of all-zero rows.
    assert main(["fig3a", "--pages", "0"]) == 2
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "error: --pages must be at least 1 (got 0)" in captured.err


def test_media_s_zero_is_rejected_before_any_simulation(capsys):
    assert main(["fig5", "--media-s", "0"]) == 2
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "error: --media-s must be positive (got 0.0)" in captured.err


def test_boundary_values_are_accepted_by_validation(capsys):
    # 1 page / 1 trial / jobs 1 is the smallest legal run; it must get
    # past validation (and all the way through for the fastest figure).
    assert main(["fig3a", "--pages", "1", "--trials", "1"]) == 0
    assert "error:" not in capsys.readouterr().err
