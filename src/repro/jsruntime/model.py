"""Script/function/regex-call descriptors and the CPU cost model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass(frozen=True)
class RegexCall:
    """One recorded regex invocation inside a JS function.

    ``pike_ops``/``dfa_ops`` are measured engine-operation counts from an
    actual run of the pattern over the subject (see
    :class:`~repro.jsruntime.profile.RegexProfiler`); ``dfa_ops`` is
    ``None`` when the pattern cannot run on the DFA (word boundaries) or
    when captures force the Pike VM (``mode != 'test'``).  ``repeats``
    scales the call (loops over list entries).
    """

    pattern: str
    subject_chars: int
    mode: str  # 'search' | 'test' | 'findall'
    pike_ops: int
    dfa_ops: Optional[int]
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("search", "test", "findall"):
            raise ValueError(f"unknown regex call mode {self.mode!r}")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")


@dataclass(frozen=True)
class JsFunction:
    """A function body: generic interpreter work plus regex calls."""

    name: str
    generic_ops: float
    regex_calls: tuple[RegexCall, ...] = ()

    @property
    def has_regex(self) -> bool:
        return bool(self.regex_calls)


@dataclass(frozen=True)
class Script:
    """An external script: compile cost plus its function bodies."""

    url: str
    compile_ops: float
    functions: tuple[JsFunction, ...]

    @property
    def regex_functions(self) -> tuple[JsFunction, ...]:
        return tuple(fn for fn in self.functions if fn.has_regex)


@dataclass(frozen=True)
class CpuCostModel:
    """Reference-op cost of engine operations on the CPU.

    An interpreted/JIT-stub regex VM step touches thread lists and capture
    vectors (~15 machine ops); a warm DFA transition is a load+branch loop
    (~4 ops); generic interpreter "ops" are already in reference units.
    """

    pike_op_cost: float = 18.0
    dfa_op_cost: float = 6.5

    def call_ops(self, call: RegexCall) -> float:
        """Reference ops for one recorded call (all repeats) on the CPU."""
        if call.mode == "test" and call.dfa_ops is not None:
            per_call = call.dfa_ops * self.dfa_op_cost
        else:
            per_call = call.pike_ops * self.pike_op_cost
        return per_call * call.repeats

    def function_regex_ops(self, function: JsFunction) -> float:
        """Reference ops spent in regex evaluation inside ``function``."""
        return sum(self.call_ops(call) for call in function.regex_calls)

    def function_ops(self, function: JsFunction) -> float:
        """Total reference ops to execute ``function`` on the CPU."""
        return function.generic_ops + self.function_regex_ops(function)

    def script_ops(self, script: Script) -> float:
        """Total reference ops to compile and run ``script``."""
        return script.compile_ops + sum(
            self.function_ops(fn) for fn in script.functions
        )

    def script_regex_ops(self, script: Script) -> float:
        """Reference ops spent in regex evaluation inside ``script``."""
        return sum(self.function_regex_ops(fn) for fn in script.functions)

    def regex_fraction(self, scripts: Sequence[Script]) -> float:
        """Share of total scripting work that is regex evaluation."""
        total = sum(self.script_ops(s) for s in scripts)
        if total == 0:
            return 0.0
        regex = sum(self.script_regex_ops(s) for s in scripts)
        return regex / total


__all__ = ["CpuCostModel", "JsFunction", "RegexCall", "Script"]
