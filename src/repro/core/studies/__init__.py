"""Study definitions, one module per paper figure family."""

from repro.core.studies.web import WebStudy, WebStudyConfig
from repro.core.studies.faults import FaultStudy, FaultStudyConfig, FaultSweepPoint
from repro.core.studies.video import VideoStudy, VideoStudyConfig
from repro.core.studies.rtc import RtcStudy, RtcStudyConfig
from repro.core.studies.network import throughput_vs_clock
from repro.core.studies.offload import OffloadStudy, OffloadStudyConfig
from repro.core.studies.history import evolution_timeline
from repro.core.studies.joint import (
    browsers_vs_clock,
    joint_network_device_grid,
    tls_overhead,
)

__all__ = [
    "browsers_vs_clock",
    "joint_network_device_grid",
    "tls_overhead",
    "FaultStudy",
    "FaultStudyConfig",
    "FaultSweepPoint",
    "OffloadStudy",
    "OffloadStudyConfig",
    "RtcStudy",
    "RtcStudyConfig",
    "VideoStudy",
    "VideoStudyConfig",
    "WebStudy",
    "WebStudyConfig",
    "evolution_timeline",
    "throughput_vs_clock",
]
