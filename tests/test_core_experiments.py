"""Unit tests for the trial runner and background load."""

import random

import pytest

from repro.core import BackgroundLoad, TrialRunner
from repro.core.experiments import derive_seed
from repro.device import Device, NEXUS4, by_name
from repro.sim import Environment


def test_derive_seed_is_stable():
    assert derive_seed("exp", 0) == derive_seed("exp", 0)
    assert derive_seed("exp", 0) != derive_seed("exp", 1)
    assert derive_seed("a", 0) != derive_seed("b", 0)


def _benchmark_experiment_names() -> list[str]:
    """Every experiment-name shape the studies and benchmarks derive
    seeds from (see the call sites in repro/core/studies/*)."""
    from repro.device import GOVERNOR_CODES, NEXUS4_LADDER, TABLE1_DEVICES

    names: list[str] = []
    for fig in ("fig2a", "fig2b", "fig2c"):
        names += [f"{fig}:{spec.name}" for spec in TABLE1_DEVICES]
    for fig in ("fig3a", "fig4a", "fig5a", "fig7c"):
        names += [f"{fig}:{mhz}" for mhz in NEXUS4_LADDER]
    for fig in ("fig3b", "fig4b", "fig5b"):
        names += [f"{fig}:{gb}" for gb in (0.5, 1.0, 1.5, 2.0)]
    for fig in ("fig3c", "fig4c", "fig5c"):
        names += [f"{fig}:{n}" for n in (1, 2, 3, 4)]
    for fig in ("fig3d", "fig4d", "fig5d"):
        names += [f"{fig}:{code}" for code in GOVERNOR_CODES]
    for category in ("news", "sports", "shopping", "social", "reference"):
        for prefix in ("cat", "catd"):
            names += [f"{prefix}:{category}:hi", f"{prefix}:{category}:lo"]
    for p_bad in (0.0, 0.2, 0.4, 0.6):
        names += [f"faults:web:ge:{p_bad}", f"faults:video:ge:{p_bad}"]
    for cap in (1.0, 0.75, 0.5, 0.35):
        names += [f"faults:web:thermal:{cap}", f"faults:video:thermal:{cap}",
                  f"faults:video:startup:{cap}"]
    return names


def test_derive_seed_has_no_collisions_across_benchmarks():
    """CRC-32 is weak mixing, so check the real namespace stays injective.

    The documented birthday bound for this many (experiment, trial) pairs
    is ~1e-4; this test pins the *actual* namespace collision-free. If it
    ever fails, strengthen the mixing in derive_seed (and regenerate the
    figure baselines — see the module docstring of repro.core.experiments).
    """
    names = _benchmark_experiment_names()
    assert len(names) == len(set(names))
    seeds = {
        (name, trial): derive_seed(name, trial)
        for name in names
        for trial in range(100)
    }
    assert len(set(seeds.values())) == len(seeds), (
        "derive_seed collision in the benchmark namespace"
    )
    # Retry streams must not collide with any first-attempt stream either.
    from repro.core.experiments import derive_retry_seed

    retry = {
        (name, trial, attempt): derive_retry_seed(name, trial, attempt)
        for name in names[:20]
        for trial in range(20)
        for attempt in range(3)
    }
    assert len(set(retry.values())) == len(retry)


def test_runner_executes_all_trials():
    runner = TrialRunner(trials=4, experiment="t")
    seeds = runner.run(lambda seed: seed)
    assert len(seeds) == 4
    assert len(set(seeds)) == 4


def test_runner_summary():
    runner = TrialRunner(trials=3, experiment="t")
    summary = runner.summary(lambda seed: float(seed % 7))
    assert summary.n == 3


def test_runner_rejects_zero_trials():
    with pytest.raises(ValueError):
        TrialRunner(trials=0)


def test_background_load_emits_bursts():
    env = Environment()
    device = Device(env, NEXUS4, governor="PF")
    load = BackgroundLoad(env, device, random.Random(1))
    env.run(until=10.0)
    assert load.bursts > 3
    assert device.cpu.busy_time() > 0


def test_background_load_seed_determinism():
    counts = []
    for _ in range(2):
        env = Environment()
        device = Device(env, NEXUS4, governor="PF")
        load = BackgroundLoad(env, device, random.Random(42))
        env.run(until=5.0)
        counts.append(load.bursts)
    assert counts[0] == counts[1]


def test_background_load_hurts_slow_devices_more():
    """The jitter mechanism behind the paper's low-end error bars."""
    stolen = {}
    for name in ("Intex Amaze+", "Google Pixel2"):
        env = Environment()
        device = Device(env, by_name(name), governor="PF")
        BackgroundLoad(env, device, random.Random(7))
        env.run(until=10.0)
        stolen[name] = device.cpu.busy_time()
    assert stolen["Intex Amaze+"] > 2 * stolen["Google Pixel2"]


def test_background_load_rejects_bad_interval():
    env = Environment()
    device = Device(env, NEXUS4)
    with pytest.raises(ValueError):
        BackgroundLoad(env, device, random.Random(1), mean_interval_s=0)
