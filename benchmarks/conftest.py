"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables/figures and prints
the rows/series so the reproduced numbers are visible in the benchmark
log.  Scales are reduced from the paper's (20 trials × 50 pages × 5 min)
to keep a full ``pytest benchmarks/ --benchmark-only`` run in minutes; the
studies accept larger configs for full-fidelity runs.
"""

from __future__ import annotations

import pytest

from repro.obs.perfstore import PerfStore, default_store_path


def emit(title: str, body: str) -> None:
    """Print one reproduced figure with a banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture(scope="session")
def fig_printer():
    return emit


@pytest.fixture(scope="session")
def perf_track():
    """Append one measurement to the shared perf trajectory.

    Writes go to ``BENCH_obs.json`` in the cwd (or ``REPRO_PERFSTORE``),
    so each benchmark run extends the performance history that
    ``python -m repro perf check`` budget-gates in CI.
    """
    store = PerfStore(default_store_path())

    def track(name: str, value: float, unit: str = "s", **meta) -> None:
        store.append(name, value, unit=unit, meta=meta)

    return track
