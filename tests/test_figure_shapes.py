"""Golden-shape regression suite for the paper's headline figures.

EXPERIMENTS.md records the quantitative claims each figure reproduction
makes (device orderings, slowdown factors, governor penalties).  These
tests pin the *shape* of those claims at reduced scale — few pages, one
trial — so a kernel or study regression that flattens a curve or flips
an ordering fails tier-1 fast, without rerunning the full sweeps.

Absolute values at this scale differ from the EXPERIMENTS.md tables
(those run the paper's full corpus); the orderings and coarse factors
asserted here are scale-invariant, which is what makes them stable
golden shapes rather than brittle snapshots.
"""

from __future__ import annotations

import pytest

from repro.core.studies import (
    VideoStudy,
    VideoStudyConfig,
    WebStudy,
    WebStudyConfig,
)
from repro.device.catalog import GIONEE_F103, GALAXY_S6_EDGE, INTEX_AMAZE, PIXEL2
from repro.video import VideoSpec

#: Four rungs of the Nexus 4 DVFS ladder (Fig 3a's x-axis, thinned).
CLOCK_LADDER = (384, 702, 1026, 1512)


@pytest.fixture(scope="module")
def web_study() -> WebStudy:
    """One shared corpus (one page per category) for the web shape checks."""
    return WebStudy(WebStudyConfig(n_pages=5, trials=1))


# -- Fig 2a: PLT across Table 1 devices -------------------------------------


def test_fig2a_device_ordering(web_study):
    """Low-end loads slower than mid-range, mid-range slower than flagship."""
    by_name = {
        spec.name: summary.mean
        for spec, summary in web_study.qoe_across_devices(
            (INTEX_AMAZE, GIONEE_F103, PIXEL2))
    }
    assert by_name[INTEX_AMAZE.name] > by_name[GIONEE_F103.name]
    assert by_name[GIONEE_F103.name] > by_name[PIXEL2.name]


def test_fig2a_low_end_factor(web_study):
    """The Intex-to-Pixel2 gap stays severalfold (≈4× at full scale)."""
    results = dict(
        (spec.name, summary.mean)
        for spec, summary in web_study.qoe_across_devices(
            (INTEX_AMAZE, PIXEL2))
    )
    assert results[INTEX_AMAZE.name] >= 3.0 * results[PIXEL2.name]


def test_fig2a_price_inversion(web_study):
    """Pixel2 beats the pricier S6-edge (the paper's cost!=QoE point)."""
    results = dict(
        (spec.name, summary.mean)
        for spec, summary in web_study.qoe_across_devices(
            (GALAXY_S6_EDGE, PIXEL2))
    )
    assert results[PIXEL2.name] < results[GALAXY_S6_EDGE.name]
    assert PIXEL2.cost_usd < GALAXY_S6_EDGE.cost_usd


# -- Fig 3a: PLT vs CPU clock ------------------------------------------------


def test_fig3a_clock_monotonicity(web_study):
    """PLT falls monotonically as the pinned clock rises."""
    points = web_study.plt_vs_clock(ladder=CLOCK_LADDER)
    assert [p.clock_mhz for p in points] == list(CLOCK_LADDER)
    means = [p.plt.mean for p in points]
    assert all(earlier > later for earlier, later in zip(means, means[1:]))


def test_fig3a_clock_factor(web_study):
    """Bottom-to-top of the ladder costs at least 3× PLT (3.2× at scale)."""
    points = web_study.plt_vs_clock(ladder=(CLOCK_LADDER[0],
                                            CLOCK_LADDER[-1]))
    slowest, fastest = points[0].plt.mean, points[-1].plt.mean
    assert slowest >= 3.0 * fastest


def test_fig3a_decomposition_shifts_to_compute(web_study):
    """At the lowest clock the load is compute-bound, not network-bound."""
    points = web_study.plt_vs_clock(ladder=(CLOCK_LADDER[0],
                                            CLOCK_LADDER[-1]))
    low = points[0]
    assert low.compute_time.mean > low.network_time.mean


# -- Fig 3d: PLT vs governor -------------------------------------------------


def test_fig3d_powersave_penalty(web_study):
    """Powersave pays a clear PLT penalty over ondemand (+42% at scale)."""
    by_governor = dict(web_study.plt_vs_governor(governors=("OD", "PW")))
    assert by_governor["PW"].mean >= 1.15 * by_governor["OD"].mean


# -- Fig 2b: video startup across devices ------------------------------------


def test_fig2b_startup_ordering():
    """Start-up latency orders low-end > flagship, severalfold apart."""
    study = VideoStudy(VideoStudyConfig(
        clip=VideoSpec(duration_s=20.0), trials=1))
    points = {
        point.label: point.startup.mean
        for point in study.qoe_across_devices((INTEX_AMAZE, PIXEL2))
    }
    assert points[INTEX_AMAZE.name] > 2.0 * points[PIXEL2.name]
