"""Fig 2c: Skype frame rate across the seven Table 1 devices."""

from repro.analysis import ascii_bars
from repro.core.studies import RtcStudy, RtcStudyConfig
from repro.rtc import CallConfig


def run_fig2c():
    study = RtcStudy(RtcStudyConfig(call=CallConfig(call_duration_s=10),
                                    trials=1))
    return study.qoe_across_devices()


def test_fig2c(benchmark, fig_printer):
    points = benchmark.pedantic(run_fig2c, rounds=1, iterations=1)
    body = ascii_bars([str(p.label) for p in points],
                      [p.frame_rate.mean for p in points], unit=" fps")
    fig_printer("Fig 2c: Skype frame rate across devices", body)

    by_device = {p.label: p for p in points}
    # Paper: 30 fps on the high end dropping to ~18 fps on the Intex.
    assert by_device["Google Pixel2"].frame_rate.mean > 27
    assert 14 < by_device["Intex Amaze+"].frame_rate.mean < 23
    rates = [p.frame_rate.mean for p in points]
    assert max(rates) - min(rates) > 7
