"""Property-based tests on network-stack invariants."""

from hypothesis import given, settings, strategies as st

from repro.device import Device, NEXUS4
from repro.netstack import HostStack, Link, LinkSpec, TcpConnection
from repro.sim import Environment


def _session(mhz: int, link_spec: LinkSpec):
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=mhz)
    link = Link(env, link_spec)
    stack = HostStack(env, device)
    return env, link, stack


@settings(max_examples=30, deadline=None)
@given(
    nbytes=st.integers(1, 2_000_000),
    mhz=st.sampled_from([384, 810, 1512]),
)
def test_receive_conserves_bytes(nbytes, mhz):
    env, link, stack = _session(mhz, LinkSpec())
    conn = TcpConnection(env, link, stack)

    def fetch():
        yield from conn.receive(nbytes)

    env.run(env.process(fetch()))
    assert conn.bytes_downloaded == nbytes
    assert stack.rx_bytes >= nbytes
    assert link.bytes_carried >= nbytes


@settings(max_examples=30, deadline=None)
@given(
    nbytes=st.integers(1_000, 1_000_000),
    goodput=st.floats(1e6, 100e6),
)
def test_download_never_beats_the_link(nbytes, goodput):
    spec = LinkSpec(goodput_bps=goodput)
    env, link, stack = _session(1512, spec)
    conn = TcpConnection(env, link, stack)

    def fetch():
        yield from conn.receive(nbytes)

    env.run(env.process(fetch()))
    assert env.now >= nbytes / spec.bytes_per_s  # can't outrun serialization
    assert env.now >= spec.rtt_s / 2  # first-byte propagation


@settings(max_examples=20, deadline=None)
@given(nbytes=st.integers(10_000, 500_000))
def test_slower_clock_never_faster(nbytes):
    durations = []
    for mhz in (1512, 384):
        env, link, stack = _session(mhz, LinkSpec())
        conn = TcpConnection(env, link, stack)

        def fetch():
            yield from conn.receive(nbytes)

        env.run(env.process(fetch()))
        durations.append(env.now)
    fast, slow = durations
    assert slow >= fast - 1e-9


@settings(max_examples=20, deadline=None)
@given(
    chunks=st.lists(st.integers(1_000, 100_000), min_size=1, max_size=8),
)
def test_chunked_equals_sum_of_bytes(chunks):
    env, link, stack = _session(1512, LinkSpec())
    conn = TcpConnection(env, link, stack)

    def fetch():
        first = True
        for chunk in chunks:
            yield from conn.receive(chunk, first_byte_latency=first)
            first = False

    env.run(env.process(fetch()))
    assert conn.bytes_downloaded == sum(chunks)
