"""Deterministic fault injection for the simulated testbed.

The paper measures QoE on healthy devices over a clean LAN; this package
injects the degraded conditions that dominate real mobile QoE — bursty
loss, outages, latency spikes, thermal throttling, memory pressure, and
outright crashes — as seeded, composable simulation processes.

Public API:

* :class:`FaultPlan` — declarative list of fault specs; ``install(env,
  rng=make_rng(seed), ...)`` binds them to one trial.
* Spec types — :class:`BurstLossSpec`, :class:`LinkFlapSpec`,
  :class:`LatencySpikeSpec`, :class:`ThermalThrottleSpec`,
  :class:`MemoryPressureSpec`, :class:`CrashSpec`.
* :class:`FaultTrace` / :class:`FaultEvent` — the canonical, replayable
  record of everything a plan injected.
* Injector classes (``*Injector``) — the runtime processes, normally
  constructed by ``FaultPlan.install`` rather than directly.

Determinism: every injector draws only from the seeded RNG stream handed
to it (simlint rule FLT401 rejects anything else), so the same
``(experiment, trial, FaultPlan)`` produces a byte-identical
``FaultTrace`` and identical QoE metrics.
"""

from repro.faults.device import MemoryPressureInjector, ThermalThrottleInjector
from repro.faults.link import (
    GilbertElliottLossInjector,
    LatencySpikeInjector,
    LinkFlapInjector,
)
from repro.faults.plan import (
    BurstLossSpec,
    CrashSpec,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    FaultTrace,
    LatencySpikeSpec,
    LinkFlapSpec,
    MemoryPressureSpec,
    ThermalThrottleSpec,
    spawn_rng,
)
from repro.faults.process import CrashInjector

__all__ = [
    "BurstLossSpec",
    "CrashInjector",
    "CrashSpec",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "FaultTrace",
    "GilbertElliottLossInjector",
    "LatencySpikeInjector",
    "LinkFlapInjector",
    "LinkFlapSpec",
    "LatencySpikeSpec",
    "MemoryPressureInjector",
    "MemoryPressureSpec",
    "ThermalThrottleInjector",
    "ThermalThrottleSpec",
    "spawn_rng",
]
