"""Unit tests for the five Android frequency governors."""

import pytest

from repro.device import Device, NEXUS4
from repro.device.governors import (
    GOVERNOR_CODES,
    InteractiveGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    UserspaceGovernor,
    make_governor,
)
from repro.sim import Environment


def finish_time(governor_code, cycles=2e9, **gov_kwargs):
    env = Environment()
    device = Device(env, NEXUS4, governor=governor_code)
    task = device.submit(cycles)
    env.run(task.done)
    return env.now


def test_performance_pins_max():
    env = Environment()
    device = Device(env, NEXUS4, governor="PF")
    assert device.cpu.clusters[0].freq_mhz == 1512


def test_powersave_caps_low():
    env = Environment()
    device = Device(env, NEXUS4, governor="PW")
    assert device.cpu.clusters[0].freq_mhz <= 1512 * 0.65


def test_userspace_defaults_to_max_step():
    env = Environment()
    device = Device(env, NEXUS4, governor="US")
    assert device.cpu.clusters[0].freq_mhz == 1512


def test_userspace_explicit_setspeed():
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=810)
    assert device.cpu.clusters[0].freq_mhz == 810


def test_ondemand_starts_low_and_ramps_under_load():
    env = Environment()
    device = Device(env, NEXUS4, governor="OD")
    cluster = device.cpu.clusters[0]
    assert cluster.freq_mhz == 384
    task = device.submit(2e9)
    env.run(task.done)
    assert cluster.freq_mhz == 1512


def test_ondemand_scales_down_when_idle():
    env = Environment()
    device = Device(env, NEXUS4, governor="OD")
    task = device.submit(2e9)
    env.run(task.done)
    env.run(until=env.now + 1.0)  # idle samples
    assert device.cpu.clusters[0].freq_mhz == 384


def test_interactive_ramps_quickly():
    env = Environment()
    device = Device(env, NEXUS4, governor="IN")
    device.submit(5e9)
    env.run(until=0.15)
    assert device.cpu.clusters[0].freq_mhz >= 1242


def test_governor_ordering_matches_paper():
    """PF ≈ IN ≈ OD < US-default=PF < PW for a sustained task."""
    times = {code: finish_time(code) for code in GOVERNOR_CODES}
    assert times["PF"] <= times["IN"] <= times["PF"] * 1.15
    assert times["OD"] <= times["PF"] * 1.25
    assert times["US"] == pytest.approx(times["PF"], rel=1e-6)
    assert times["PW"] > times["PF"] * 1.5


def test_powersave_cap_fraction_configurable():
    env = Environment()
    device = Device(env, NEXUS4, governor="PF")
    governor = PowersaveGovernor(env, device.cpu, cap_fraction=0.25)
    governor.apply_initial(device.cpu.clusters[0])
    assert device.cpu.clusters[0].freq_mhz <= 0.35 * 1512


def test_powersave_rejects_bad_fraction():
    env = Environment()
    device = Device(env, NEXUS4, governor="PF")
    with pytest.raises(ValueError):
        PowersaveGovernor(env, device.cpu, cap_fraction=0.0)


def test_make_governor_accepts_codes_and_names():
    env = Environment()
    device = Device(env, NEXUS4, governor="PF")
    assert isinstance(make_governor("ondemand", env, device.cpu),
                      OndemandGovernor)
    assert isinstance(make_governor("IN", env, device.cpu),
                      InteractiveGovernor)
    assert isinstance(make_governor("performance", env, device.cpu),
                      PerformanceGovernor)
    assert isinstance(make_governor("userspace", env, device.cpu),
                      UserspaceGovernor)


def test_make_governor_unknown_name():
    env = Environment()
    device = Device(env, NEXUS4, governor="PF")
    with pytest.raises(ValueError, match="unknown governor"):
        make_governor("turbo", env, device.cpu)


def test_governor_cannot_start_twice():
    env = Environment()
    device = Device(env, NEXUS4, governor="PF")
    with pytest.raises(RuntimeError):
        device.governor.start()


def test_ondemand_threshold_validation():
    env = Environment()
    device = Device(env, NEXUS4, governor="PF")
    with pytest.raises(ValueError):
        OndemandGovernor(env, device.cpu, up_threshold=1.5)


def test_pinned_clock_overrides_governor_choice():
    env = Environment()
    device = Device(env, NEXUS4, governor="PW", pinned_mhz=1512)
    assert device.governor_code == "US"
    assert device.cpu.clusters[0].freq_mhz == 1512
