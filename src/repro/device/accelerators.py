"""Specialized coprocessors present on the device.

The paper's central asymmetry — video QoE survives low-end hardware, Web
QoE does not — rests on video applications using *dedicated hardware
codecs* (present even on $60 phones) while browsers run everything on the
CPU.  This module models that hardware inventory:

* :class:`HardwareCodec` — fixed-function video encode/decode engine with a
  throughput ceiling in pixels/second, independent of the CPU clock.
* :class:`DspSpec` — a Hexagon-class DSP (specs used by :mod:`repro.dsp`).
* :class:`AcceleratorSet` — what a given phone ships with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Pixel throughputs for common fixed-function codec generations, in
#: luma pixels per second (1080p30 needs ~62 Mpx/s, 4K30 ~249 Mpx/s).
MPIX = 1_000_000.0


@dataclass(frozen=True)
class HardwareCodec:
    """A fixed-function video codec block.

    ``decode_mpix_s``/``encode_mpix_s`` cap sustained pixel throughput.
    ``init_time_s`` is the one-time firmware/session bring-up cost, paid
    during stream start-up (it contributes to the start-up latency floor).
    """

    name: str
    decode_mpix_s: float
    encode_mpix_s: float
    init_time_s: float = 0.120
    max_height: int = 2160
    #: Whether real-time-communication apps can reach the encoder.  False
    #: on low-end chipsets whose vendor OMX integration is too broken for
    #: Skype-class apps, which then fall back to software encoding.
    rtc_usable: bool = True

    def supports(self, width: int, height: int, fps: float) -> bool:
        """Whether the block can decode this format in real time."""
        return height <= self.max_height and width * height * fps <= (
            self.decode_mpix_s * MPIX
        )

    def decode_time(self, width: int, height: int, frames: int) -> float:
        """Time to decode ``frames`` frames of the given resolution."""
        return frames * width * height / (self.decode_mpix_s * MPIX)

    def encode_time(self, width: int, height: int, frames: int) -> float:
        """Time to encode ``frames`` frames of the given resolution."""
        return frames * width * height / (self.encode_mpix_s * MPIX)


@dataclass(frozen=True)
class DspSpec:
    """A Hexagon-class DSP coprocessor.

    ``freq_mhz`` is the fixed DSP clock; ``vector_lanes`` the HVX-style
    SIMD width in bytes; ``scalar_ipc`` relative efficiency of the scalar
    VLIW pipeline on branchy code.  FastRPC costs model the CPU↔DSP
    remote-procedure-call path the paper used.
    """

    name: str = "hexagon-682"
    freq_mhz: float = 787.0
    vector_lanes: int = 128
    scalar_ipc: float = 1.6
    fastrpc_invoke_s: float = 0.00030
    fastrpc_byte_s: float = 2.0e-9  # marshalling cost per payload byte
    active_w: float = 0.28


@dataclass(frozen=True)
class AcceleratorSet:
    """Inventory of coprocessors on one phone."""

    codec: Optional[HardwareCodec] = None
    dsp: Optional[DspSpec] = None

    @property
    def has_hw_decode(self) -> bool:
        return self.codec is not None

    @property
    def has_dsp(self) -> bool:
        return self.dsp is not None


# Codec generations used by the catalog -------------------------------------

CODEC_LOW_END = HardwareCodec("vpu-lite", decode_mpix_s=70.0, encode_mpix_s=35.0,
                              init_time_s=0.200, max_height=1080,
                              rtc_usable=False)
CODEC_MID = HardwareCodec("vpu-mid", decode_mpix_s=130.0, encode_mpix_s=65.0,
                          init_time_s=0.150, max_height=1080)
CODEC_HIGH = HardwareCodec("vpu-high", decode_mpix_s=500.0, encode_mpix_s=250.0,
                           init_time_s=0.090, max_height=2160)

__all__ = [
    "AcceleratorSet",
    "CODEC_HIGH",
    "CODEC_LOW_END",
    "CODEC_MID",
    "DspSpec",
    "HardwareCodec",
    "MPIX",
]
