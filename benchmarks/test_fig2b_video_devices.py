"""Fig 2b: video-streaming QoE across the seven Table 1 devices."""

from repro.analysis import render_table
from repro.core.studies import VideoStudy, VideoStudyConfig
from repro.video import VideoSpec


def run_fig2b():
    study = VideoStudy(VideoStudyConfig(clip=VideoSpec(duration_s=60),
                                        trials=1))
    return study.qoe_across_devices()


def test_fig2b(benchmark, fig_printer):
    points = benchmark.pedantic(run_fig2b, rounds=1, iterations=1)
    table = render_table(
        ["Device", "Startup (s)", "Stall ratio"],
        [[p.label, f"{p.startup.mean:.2f} ± {p.startup.stdev:.2f}",
          f"{p.stall_ratio.mean:.3f}"] for p in points],
    )
    fig_printer("Fig 2b: YouTube start-up latency and stall ratio", table)

    by_device = {p.label: p for p in points}
    intex = by_device["Intex Amaze+"]
    pixel2 = by_device["Google Pixel2"]
    # Start-up grows several-fold from high to low end ...
    assert intex.startup.mean > 2.5 * pixel2.startup.mean
    # ... but the stall ratio stays ≈0 on every device (the paper's point).
    assert all(p.stall_ratio.mean < 0.03 for p in points)
