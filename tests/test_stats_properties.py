"""Property tests for :mod:`repro.analysis.stats` (hypothesis).

The helpers feed every figure table and the population aggregator's
equivalence contract, so their algebraic properties — bounds, order
invariance, CDF monotonicity — are pinned over generated inputs rather
than a handful of examples.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import (
    cdf_points,
    mean,
    median,
    percentile,
    stdev,
    summarize,
)

finite = st.floats(min_value=-1e9, max_value=1e9,
                   allow_nan=False, allow_infinity=False)
samples = st.lists(finite, min_size=1, max_size=50)
quantiles = st.floats(min_value=0.0, max_value=100.0)


@given(samples, quantiles)
@settings(max_examples=100, deadline=None)
def test_percentile_within_sample_bounds(values, q):
    result = percentile(values, q)
    assert min(values) <= result <= max(values)


@given(samples, quantiles, quantiles)
@settings(max_examples=100, deadline=None)
def test_percentile_monotone_in_q(values, q1, q2):
    lo, hi = sorted((q1, q2))
    assert percentile(values, lo) <= percentile(values, hi)


@given(samples)
@settings(max_examples=100, deadline=None)
def test_percentile_endpoints_are_min_and_max(values):
    assert percentile(values, 0.0) == min(values)
    assert percentile(values, 100.0) == max(values)


@pytest.mark.parametrize("bad_q", (-0.001, 100.001, 1e9, -1e9))
@pytest.mark.parametrize("values", ([], [1.0, 2.0]))
def test_percentile_rejects_out_of_range_q(values, bad_q):
    # Regression: the bound check must fire even for an empty sample —
    # percentile([], 200) used to answer 0.0 and hide the caller bug.
    with pytest.raises(ValueError):
        percentile(values, bad_q)


@given(samples, st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_mean_and_median_are_permutation_invariant(values, rng):
    shuffled = list(values)
    rng.shuffle(shuffled)
    assert math.isclose(mean(shuffled), mean(values),
                        rel_tol=1e-9, abs_tol=1e-9)
    assert median(shuffled) == median(values)


@given(samples)
@settings(max_examples=100, deadline=None)
def test_stdev_nonnegative_and_zero_for_constant(values):
    assert stdev(values) >= 0.0
    # "Zero" up to rounding: mean([c]*n) can land an ulp away from c, so
    # the spread of a constant sample is bounded by c's own granularity.
    constant = values[0]
    assert stdev([constant] * len(values)) <= 1e-9 * max(1.0, abs(constant))


@given(samples)
@settings(max_examples=100, deadline=None)
def test_summarize_is_consistent_with_the_helpers(values):
    summary = summarize(values)
    assert summary.n == len(values)
    assert summary.minimum == min(values)
    assert summary.maximum == max(values)
    assert math.isclose(summary.mean, mean(values),
                        rel_tol=1e-9, abs_tol=1e-9)
    assert math.isclose(summary.stdev, stdev(values),
                        rel_tol=1e-9, abs_tol=1e-9)


@given(samples)
@settings(max_examples=100, deadline=None)
def test_cdf_points_non_decreasing_and_ends_at_one(values):
    points = cdf_points(values)
    assert len(points) == len(values)
    xs = [x for x, _ in points]
    ps = [p for _, p in points]
    assert xs == sorted(xs)
    assert all(a <= b for a, b in zip(ps, ps[1:]))
    assert ps[0] > 0.0
    assert ps[-1] == pytest.approx(1.0)
