"""Ablation: CPU-coupled packet processing on/off.

Removing the per-packet CPU cost flattens Fig 6 — throughput becomes
link-limited at every clock — demonstrating that the paper's §4.1 effect
comes entirely from host-side processing, not the radio.
"""

from repro.analysis import render_table
from repro.device import NEXUS4
from repro.netstack import PacketCostModel, run_iperf


def run_ablation():
    rows = []
    free = PacketCostModel(rx_ops_per_pkt=0.0, tx_ops_per_pkt=0.0)
    for mhz in (384, 594, 1512):
        with_cpu = run_iperf(NEXUS4, clock_mhz=mhz, duration_s=6.0)
        without = run_iperf(NEXUS4, clock_mhz=mhz, duration_s=6.0, cost=free)
        rows.append((mhz, with_cpu.throughput_mbps, without.throughput_mbps))
    return rows


def test_ablation_pktcpu(benchmark, fig_printer):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = render_table(
        ["Clock (MHz)", "With pkt CPU (Mbps)", "Without (Mbps)"],
        [[mhz, f"{a:.1f}", f"{b:.1f}"] for mhz, a, b in rows],
    )
    fig_printer("Ablation: per-packet CPU cost drives Fig 6", table)
    by_clock = {mhz: (a, b) for mhz, a, b in rows}
    # Without packet CPU, every clock is link-limited (flat ≈48 Mbps).
    assert abs(by_clock[384][1] - by_clock[1512][1]) < 1.5
    # With it, 384 MHz loses ≥25 % throughput.
    assert by_clock[384][0] < 0.75 * by_clock[384][1]
