"""Code fingerprints: which sources does a trial function depend on?

A cache hit is only sound if the code that would recompute the result is
the code that produced it.  Pinning the whole repository into every key
would be safe but useless — touching a docstring in ``repro.rtc`` must
not invalidate web-study entries.  Instead each trial function gets a
*code fingerprint*: the SHA-256 of the sources of the ``repro.*``
modules it transitively imports, discovered through the same
:class:`~repro.lint.project.ProjectModel` import graph the ``--project``
linter uses.  Editing any module a trial depends on flips the
fingerprint (a miss, recompute); editing an unrelated module leaves it
alone (still a hit).

The walk is an over-approximation by design: module-level *and*
function-level imports both count, and a bare ``import repro.x`` that
the import table records as ``repro`` pulls in the package root.  An
over-approximation can only cause spurious recomputation, never a stale
hit — the safe direction for a cache.

Trial functions defined outside the package root (tests, notebooks) are
hashed from their own module source via :data:`sys.modules`, then their
imports are followed *into* the root; an unlocatable module raises
:class:`~repro.cache.keys.Uncacheable` and the trial simply runs
uncached.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import sys
from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.cache.keys import Uncacheable
from repro.lint.project import ModuleInfo, ProjectModel, module_name_for

#: Memoized ProjectModels keyed by package root (one parse per session).
_MODELS: Dict[Path, ProjectModel] = {}
#: Memoized fingerprints keyed by (root, start-module set).
_FINGERPRINTS: Dict[Tuple[Path, FrozenSet[str]], str] = {}


def clear_caches() -> None:
    """Forget memoized models and fingerprints (tests edit sources)."""
    _MODELS.clear()
    _FINGERPRINTS.clear()


def package_root() -> Path:
    """Directory of the installed ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parent


def project_model(root: Optional[Path] = None) -> ProjectModel:
    """Parse-once import model of every module under ``root``."""
    root = (root or package_root()).resolve()
    model = _MODELS.get(root)
    if model is None:
        model = ProjectModel()
        for path in sorted(root.rglob("*.py")):
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source)
            except (OSError, SyntaxError):
                continue  # unreadable/broken files cannot be depended on
            model.add_module(module_name_for(path), str(path), tree, source)
        _MODELS[root] = model
    return model


def _module_of_target(model: ProjectModel, target: str) -> Optional[str]:
    """Longest known module prefix of an import target.

    Import tables record *symbol* targets (``repro.device.Device``); the
    dependency is the module that defines the symbol, found by trimming
    dotted components until a known module name remains.
    """
    parts = target.split(".")
    for length in range(len(parts), 0, -1):
        name = ".".join(parts[:length])
        if name in model.modules:
            return name
    return None


def _external_module(name: str) -> Optional[ModuleInfo]:
    """Parse an imported-but-outside-the-root module (tests, scripts)."""
    module = sys.modules.get(name)
    path = getattr(module, "__file__", None)
    if module is None or not path or not Path(path).exists():
        return None
    try:
        source = Path(path).read_text(encoding="utf-8")
        tree = ast.parse(source)
    except (OSError, SyntaxError):
        return None
    # A throwaway model reuses the import-table builder without
    # polluting the memoized root model.
    return ProjectModel().add_module(name, str(path), tree, source)


def fingerprint_modules(start: Iterable[str],
                        root: Optional[Path] = None) -> str:
    """Digest of the sources reachable from ``start`` through imports.

    ``start`` names modules (dotted); each must live under ``root`` or
    be importable enough to appear in :data:`sys.modules` with a real
    file.  Raises :class:`Uncacheable` when a start module cannot be
    located — the caller must not cache what it cannot fingerprint.
    """
    root = (root or package_root()).resolve()
    start_set = frozenset(start)
    memo_key = (root, start_set)
    cached = _FINGERPRINTS.get(memo_key)
    if cached is not None:
        return cached
    model = project_model(root)
    sources: Dict[str, str] = {}
    seen: Set[str] = set()
    stack = sorted(start_set)
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        info = model.modules.get(name)
        if info is None:
            info = _external_module(name)
        if info is None:
            if name in start_set:
                raise Uncacheable(
                    f"cannot locate source for module {name!r}; its "
                    f"trials run uncached")
            continue  # a dep outside the root: not part of the contract
        sources[name] = info.source
        for target in sorted(set(info.imports.values())):
            dep = _module_of_target(model, target)
            if dep is not None:
                stack.append(dep)
    digest = hashlib.sha256()
    for name in sorted(sources):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(sources[name].encode("utf-8"))
        digest.update(b"\x00")
    fingerprint = digest.hexdigest()[:16]
    _FINGERPRINTS[memo_key] = fingerprint
    return fingerprint


def _note_module(value: Any, modules: Set[str]) -> None:
    name = getattr(value, "__module__", None)
    if isinstance(name, str) and name:
        modules.add(name)


def start_modules(obj: Any, _depth: int = 0) -> Set[str]:
    """Modules whose code the trial object directly references.

    The trial function's own module plus the modules of any objects it
    carries (a dataclass task holds a study, specs, a fault plan — each
    contributes its defining module).  Transitive imports are then
    resolved by :func:`fingerprint_modules`; recursion here is shallow
    because imports, not object graphs, carry the rest.
    """
    modules: Set[str] = set()
    if _depth > 4 or obj is None or isinstance(obj, (bool, int, float, str,
                                                     bytes, Path)):
        return modules
    if isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            modules |= start_modules(item, _depth + 1)
        return modules
    if isinstance(obj, dict):
        for item in obj.values():
            modules |= start_modules(item, _depth + 1)
        return modules
    if isinstance(obj, type):
        _note_module(obj, modules)
        return modules
    if callable(obj) and not isinstance(obj, type) and hasattr(obj, "__qualname__"):
        _note_module(obj, modules)
        self_obj = getattr(obj, "__self__", None)
        if self_obj is not None:
            modules |= start_modules(self_obj, _depth + 1)
        return modules
    _note_module(type(obj), modules)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for spec in dataclasses.fields(obj):
            modules |= start_modules(getattr(obj, spec.name), _depth + 1)
    return modules


def code_fingerprint(obj: Any, root: Optional[Path] = None) -> str:
    """Code fingerprint for a trial function or task object."""
    modules = {name for name in start_modules(obj) if name != "builtins"}
    if not modules:
        raise Uncacheable(
            f"no source modules discoverable for {type(obj).__qualname__}")
    return fingerprint_modules(sorted(modules), root=root)


__all__ = [
    "clear_caches",
    "code_fingerprint",
    "fingerprint_modules",
    "package_root",
    "project_model",
    "start_modules",
]
