"""Deterministic trial fan-out (see :mod:`repro.parallel.executors`).

``repro.parallel.supervisor`` adds the fault-tolerant production path
(pool rebuild, hung-task timeout, poison-task quarantine, signal drain);
``repro.parallel.chaos`` is the deterministic host-fault test harness.
Executors participate in run-level observability by carrying an optional
``runlog`` attribute (a :class:`repro.obs.runlog.RunLog`) that the CLI
attaches — supervision events then land in ``run.jsonl`` next to the
journal.  See ``docs/observability.md`` ("Run-level observability").
"""

from repro.parallel.executors import (
    Executor,
    MultiprocessExecutor,
    ParallelExecutionError,
    SerialExecutor,
    ensure_picklable,
    get_executor,
)
from repro.parallel.supervisor import (
    TASK_ERROR,
    TASK_HANG,
    WORKER_CRASH,
    QuarantinedTask,
    SupervisedExecutor,
    SupervisionReport,
    drop_quarantined,
)

__all__ = [
    "Executor",
    "MultiprocessExecutor",
    "ParallelExecutionError",
    "QuarantinedTask",
    "SerialExecutor",
    "SupervisedExecutor",
    "SupervisionReport",
    "TASK_ERROR",
    "TASK_HANG",
    "WORKER_CRASH",
    "drop_quarantined",
    "ensure_picklable",
    "get_executor",
]
