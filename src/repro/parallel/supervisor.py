"""Supervised fan-out: survive host-level faults without losing determinism.

``MultiprocessExecutor`` is fast but brittle: one worker killed by the
OOM killer raises ``BrokenProcessPool`` and destroys hours of sweep
progress, and a single hung task stalls the run forever.
:class:`SupervisedExecutor` wraps the same ``ProcessPoolExecutor``
fan-out in a supervision loop that

* **rebuilds a broken pool** and re-dispatches only the unfinished task
  indices (completed results are never re-run);
* **enforces a per-task wall-clock budget** (``task_timeout_s``) — a
  hung task's pool is killed and every casualty is reassigned to a
  fresh pool;
* **quarantines poison tasks**: a task that keeps faulting is retired
  after ``max_task_retries`` faulted dispatches as a typed
  :class:`QuarantinedTask` (taxonomy :data:`WORKER_CRASH` /
  :data:`TASK_HANG` / :data:`TASK_ERROR`) instead of failing the sweep;
* **drains on SIGINT/SIGTERM**: in-flight results are collected and
  yielded (so the caller journals them) before ``KeyboardInterrupt`` is
  raised, which makes an interrupted sweep resume cleanly via the
  journal ``--resume`` path.

Determinism is untouched: every trial is a pure function of its task
item, so re-dispatching a task after a crash reproduces the identical
result, and the index keying of the :class:`~repro.parallel.Executor`
contract keeps completion order out of the output.  The acceptance
property (see ``tests/test_parallel_supervisor.py``) is that a
chaos-afflicted run's journal is *byte-identical* to a serial run's.

Supervision events are host-level facts (how often the pool broke on
this machine) and therefore deliberately stay out of journals — the same
policy that keeps ``duration_wall_s`` out of the v3 journal schema.
They are observable through the ``parallel.*`` metrics namespace
(``parallel.pool_rebuilds``, ``parallel.task_retries``,
``parallel.quarantined`` counters and the ``parallel.live_workers``
gauge), through :attr:`SupervisedExecutor.last_supervision` /
:attr:`SupervisedExecutor.supervision_totals`, and — when a
:class:`repro.obs.runlog.RunLog` is attached — as host-keyed events
(``task_dispatch``, ``task_retry``, ``pool_rebuild``, ``hang_reclaim``,
``quarantine``, ``signal_drain``) in the run-level ``run.jsonl`` stream.

This module is the only place in the codebase allowed to register
signal handlers — simlint rule PAR602 enforces that, the way PAR601
pins process fan-out to ``repro.parallel``.
"""

from __future__ import annotations

import signal
import time
from collections import deque
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs.metrics import MetricsRegistry, NullMetrics, NULL_METRICS
from repro.obs.runlog import AnyRunLog, NULL_RUNLOG
from repro.parallel.executors import Executor, ensure_picklable

#: Quarantine taxonomy: why the supervisor gave up on a task.
WORKER_CRASH = "worker_crash"  #: the worker process died (pool broken)
TASK_HANG = "task_hang"        #: the task exceeded ``task_timeout_s``
TASK_ERROR = "task_error"      #: the task raised (or its result would not pickle)

_QUARANTINE_KINDS = frozenset({WORKER_CRASH, TASK_HANG, TASK_ERROR})

#: Exceptions that mean "the pool itself died", not "the task failed".
_POOL_FAILURES = (BrokenProcessPool, CancelledError)


@dataclass(frozen=True)
class QuarantinedTask:
    """Typed placeholder yielded for a task the supervisor retired.

    Sits in the result stream where the real result would be, so callers
    (``RobustTrialRunner``, the studies) can classify the loss into
    their own failure taxonomy instead of the whole sweep failing.
    """

    index: int     #: task index in the submitted item list
    kind: str      #: one of :data:`WORKER_CRASH` / :data:`TASK_HANG` / :data:`TASK_ERROR`
    attempts: int  #: faulted dispatches before the supervisor gave up
    error: str     #: deterministic one-line description of the last fault


@dataclass
class SupervisionReport:
    """What the supervisor had to do during one ``run_tasks`` call."""

    pool_rebuilds: int = 0
    task_retries: int = 0
    quarantined: List[QuarantinedTask] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no supervision action was needed."""
        return (self.pool_rebuilds == 0 and self.task_retries == 0
                and not self.quarantined)


def drop_quarantined(results: Sequence[Any]) -> list:
    """Filter :class:`QuarantinedTask` placeholders out of ``map`` output.

    The studies summarize whatever trials survived (the same graceful
    degradation ``Summary.failures`` gives sim-level faults), so a
    quarantined trial shrinks ``n`` instead of crashing the sweep.
    """
    return [r for r in results if not isinstance(r, QuarantinedTask)]


@dataclass
class _InFlight:
    """Bookkeeping for one submitted future."""

    index: int
    deadline: Optional[float]


class SupervisedExecutor(Executor):
    """Fault-tolerant :class:`~repro.parallel.Executor` over worker pools.

    Contract differences from ``MultiprocessExecutor``, all in the
    direction of never losing the sweep:

    * task exceptions do **not** propagate — a task that keeps raising is
      quarantined as :data:`TASK_ERROR` after ``max_task_retries``
      faulted dispatches and yielded as a :class:`QuarantinedTask`;
    * the pool path is always taken (no serial degradation for one item
      or one worker), so crash/hang recovery semantics do not silently
      change with the workload size;
    * ``run_tasks`` still yields every index exactly once — a quarantined
      index yields its placeholder.

    The dispatch window is one in-flight task per worker: submitted tasks
    start (almost) immediately, which keeps the ``task_timeout_s``
    deadline honest, and bounds the blast radius of a pool break to at
    most ``max_workers`` re-dispatched tasks.

    ``drain_signals=True`` (the default) registers SIGINT/SIGTERM
    handlers for the duration of the run: the first signal stops new
    submissions, drains in-flight results for up to ``drain_grace_s``
    (so the caller's journal captures them), then raises
    ``KeyboardInterrupt``; a second signal aborts the drain immediately.
    Handlers are always restored, and registration is skipped off the
    main thread.
    """

    def __init__(
        self,
        max_workers: int,
        *,
        task_timeout_s: Optional[float] = None,
        max_task_retries: int = 3,
        drain_signals: bool = True,
        drain_grace_s: Optional[float] = None,
        poll_interval_s: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
        runlog: Optional[AnyRunLog] = None,
    ):
        if max_workers < 1:
            raise ValueError("need at least one worker")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError("task timeout must be positive")
        if max_task_retries < 0:
            raise ValueError("max task retries cannot be negative")
        if poll_interval_s <= 0:
            raise ValueError("poll interval must be positive")
        self.jobs = max_workers
        self.task_timeout_s = task_timeout_s
        self.max_task_retries = max_task_retries
        self.drain_signals = drain_signals
        self.drain_grace_s = (
            drain_grace_s if drain_grace_s is not None
            else (task_timeout_s if task_timeout_s is not None else 30.0)
        )
        self.poll_interval_s = poll_interval_s
        self._metrics: Union[MetricsRegistry, NullMetrics] = (
            metrics if metrics is not None else NULL_METRICS
        )
        self._pool_rebuilds = self._metrics.counter("parallel.pool_rebuilds")
        self._task_retries = self._metrics.counter("parallel.task_retries")
        self._quarantined = self._metrics.counter("parallel.quarantined")
        self._live_workers = self._metrics.gauge("parallel.live_workers")
        #: Run-level event stream for supervision events (host facts).
        #: The CLI attaches one after construction; default is the no-op.
        self.runlog: AnyRunLog = runlog if runlog is not None else NULL_RUNLOG
        #: Supervision stats of the most recent ``run_tasks`` call.
        self.last_supervision = SupervisionReport()
        #: Supervision stats accumulated over every ``run_tasks`` call of
        #: this executor's lifetime — what the CLI's one-line
        #: ``supervision:`` summary prints after a multi-sweep command.
        self.supervision_totals = SupervisionReport()
        self._signals_seen = 0

    # -- submission hook ---------------------------------------------------

    def _submit(self, pool: ProcessPoolExecutor, fn: Callable[[Any], Any],
                item: Any, index: int, attempt: int) -> Future:
        """Submit one task; ``ChaosExecutor`` overrides this to inject
        planned faults for ``(index, attempt)``."""
        return pool.submit(fn, item)

    # -- pool lifecycle ----------------------------------------------------

    def _new_pool(self, workers: int) -> ProcessPoolExecutor:
        pool = ProcessPoolExecutor(max_workers=workers)
        self._live_workers.set(workers)
        return pool

    def _kill_pool(self, pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting — hung workers included.

        ``shutdown`` alone never reclaims a worker stuck in a busy loop;
        terminating the processes first is the only way to cancel a hung
        task.  ``_processes`` is private API, so failures to reach it
        degrade to a plain shutdown (the leaked worker dies with the
        parent).
        """
        try:
            processes = dict(getattr(pool, "_processes", None) or {})
            for process in processes.values():
                process.terminate()
        except Exception:
            pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        self._live_workers.set(0)

    def _rebuild_pool(self, workers: int,
                      report: SupervisionReport) -> ProcessPoolExecutor:
        report.pool_rebuilds += 1
        self.supervision_totals.pool_rebuilds += 1
        self._pool_rebuilds.inc()
        self.runlog.emit("pool_rebuild", workers=workers)
        return self._new_pool(workers)

    # -- fault accounting --------------------------------------------------

    def _record_fault(self, index: int, attempts: List[int], kind: str,
                      error: str,
                      report: SupervisionReport) -> Optional[QuarantinedTask]:
        """Count one faulted dispatch; quarantine when the budget is spent.

        Returns the :class:`QuarantinedTask` to yield, or ``None`` when
        the task has retries left (caller re-queues it).
        """
        attempts[index] += 1
        if attempts[index] > self.max_task_retries:
            quarantined = QuarantinedTask(index=index, kind=kind,
                                          attempts=attempts[index],
                                          error=error)
            report.quarantined.append(quarantined)
            self.supervision_totals.quarantined.append(quarantined)
            self._quarantined.inc()
            self.runlog.emit("quarantine", index=index, kind=kind,
                             attempts=attempts[index], error=error)
            return quarantined
        report.task_retries += 1
        self.supervision_totals.task_retries += 1
        self._task_retries.inc()
        self.runlog.emit("task_retry", index=index, kind=kind, error=error)
        return None

    # -- signal plumbing ---------------------------------------------------

    def _install_handlers(self) -> Optional[Dict[int, Any]]:
        if not self.drain_signals:
            return None
        self._signals_seen = 0

        def on_signal(signum: int, frame: Any) -> None:
            self._signals_seen += 1

        try:
            return {
                signum: signal.signal(signum, on_signal)
                for signum in (signal.SIGINT, signal.SIGTERM)
            }
        except ValueError:
            # signal.signal only works on the main thread; supervision
            # still runs, just without the drain-on-signal behavior.
            return None

    @staticmethod
    def _restore_handlers(previous: Optional[Dict[int, Any]]) -> None:
        if previous is None:
            return
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    # -- execution ---------------------------------------------------------

    def run_tasks(self, fn: Callable[[Any], Any],
                  items: Sequence[Any]) -> Iterator[Tuple[int, Any]]:
        work = list(items)
        self.last_supervision = SupervisionReport()
        if not work:
            return
        ensure_picklable(fn)
        yield from self._supervise(fn, work, self.last_supervision)

    def _supervise(self, fn: Callable[[Any], Any], work: list,
                   report: SupervisionReport) -> Iterator[Tuple[int, Any]]:
        workers = min(self.jobs, len(work))
        queue: Deque[int] = deque(range(len(work)))
        attempts: List[int] = [0] * len(work)
        inflight: Dict[Future, _InFlight] = {}
        previous_handlers = self._install_handlers()
        pool = self._new_pool(workers)
        try:
            while queue or inflight:
                if self._signals_seen:
                    yield from self._drain(inflight)
                    raise KeyboardInterrupt(
                        "sweep interrupted: in-flight results drained; "
                        "rerun with --resume to continue"
                    )
                broken = False
                # Fill the dispatch window (one in-flight task per worker).
                while queue and len(inflight) < workers and not broken:
                    index = queue.popleft()
                    try:
                        future = self._submit(pool, fn, work[index], index,
                                              attempts[index])
                    except Exception:
                        # Submitting on a dead pool (BrokenProcessPool /
                        # RuntimeError): the item itself never dispatched,
                        # so it goes back without a fault charge.
                        queue.appendleft(index)
                        broken = True
                        break
                    deadline = (
                        None if self.task_timeout_s is None
                        # Host watchdog, not sim time: the budget guards the
                        # machine, so it must read a real clock.
                        else time.monotonic() + self.task_timeout_s  # simlint: disable=DET001 -- host-level watchdog deadline
                    )
                    inflight[future] = _InFlight(index=index,
                                                 deadline=deadline)
                    self.runlog.emit("task_dispatch", index=index,
                                     attempt=attempts[index])
                if not broken and inflight:
                    done, _ = wait(set(inflight),
                                   timeout=self.poll_interval_s)
                    for future in done:
                        slot = inflight.pop(future)
                        tag, payload = _settle(future)
                        if tag == "ok":
                            self.runlog.emit("task_complete",
                                             index=slot.index)
                            yield slot.index, payload
                        elif tag == "error":
                            quarantined = self._record_fault(
                                slot.index, attempts, TASK_ERROR, payload,
                                report)
                            if quarantined is not None:
                                yield slot.index, quarantined
                            else:
                                queue.append(slot.index)
                        else:  # pool failure
                            broken = True
                            quarantined = self._record_fault(
                                slot.index, attempts, WORKER_CRASH, payload,
                                report)
                            if quarantined is not None:
                                yield slot.index, quarantined
                            else:
                                queue.append(slot.index)
                if broken:
                    # The pool died. Completed cohort members keep their
                    # results; everything else re-dispatches against a
                    # fresh pool with one fault charged (the culprit is
                    # unattributable, so the whole cohort pays — the
                    # one-per-worker window bounds the collateral).
                    for future, slot in sorted(inflight.items(),
                                               key=lambda kv: kv[1].index):
                        tag, payload = _settle(future)
                        if tag == "ok":
                            self.runlog.emit("task_complete",
                                             index=slot.index)
                            yield slot.index, payload
                            continue
                        kind = TASK_ERROR if tag == "error" else WORKER_CRASH
                        quarantined = self._record_fault(
                            slot.index, attempts, kind, payload, report)
                        if quarantined is not None:
                            yield slot.index, quarantined
                        else:
                            queue.append(slot.index)
                    inflight.clear()
                    self._kill_pool(pool)
                    pool = self._rebuild_pool(workers, report)
                    continue
                if self.task_timeout_s is not None and inflight:
                    now = time.monotonic()  # simlint: disable=DET001 -- host-level watchdog clock
                    expired = {future for future, slot in inflight.items()
                               if slot.deadline is not None
                               and now >= slot.deadline}
                    if expired:
                        # A running future cannot be cancelled; killing the
                        # pool is the only way to reclaim a hung worker.
                        # Innocent cohort members re-queue without a fault
                        # charge.
                        hung = sorted(inflight[f].index for f in expired)
                        survivors = sorted(slot.index
                                           for future, slot in inflight.items()
                                           if future not in expired)
                        self.runlog.emit("hang_reclaim", hung=hung,
                                         survivors=survivors)
                        inflight.clear()
                        self._kill_pool(pool)
                        pool = self._rebuild_pool(workers, report)
                        queue.extendleft(reversed(survivors))
                        for index in hung:
                            quarantined = self._record_fault(
                                index, attempts, TASK_HANG,
                                f"exceeded the {self.task_timeout_s:g}s "
                                f"task timeout",
                                report)
                            if quarantined is not None:
                                yield index, quarantined
                            else:
                                queue.append(index)
        finally:
            self._restore_handlers(previous_handlers)
            self._kill_pool(pool)

    def _drain(self, inflight: Dict[Future, _InFlight],
               ) -> Iterator[Tuple[int, Any]]:
        """Collect what the workers already have before shutting down.

        Yields every in-flight result that completes within
        ``drain_grace_s`` so the consumer can journal it; faults during
        the drain are simply dropped — the trial reruns on ``--resume``.
        A second signal aborts the drain immediately.
        """
        self.runlog.emit("signal_drain", inflight=len(inflight))
        deadline = time.monotonic() + self.drain_grace_s  # simlint: disable=DET001 -- host-level drain deadline
        while inflight and self._signals_seen < 2:
            remaining = deadline - time.monotonic()  # simlint: disable=DET001 -- host-level drain deadline
            if remaining <= 0:
                break
            done, _ = wait(set(inflight),
                           timeout=min(self.poll_interval_s, remaining))
            for future in done:
                slot = inflight.pop(future)
                tag, payload = _settle(future)
                if tag == "ok":
                    yield slot.index, payload


def _settle(future: Future) -> Tuple[str, Any]:
    """Classify a future: ``("ok", result)``, ``("error", msg)``, or
    ``("pool", msg)`` for infrastructure death (including still-pending
    futures on a broken pool)."""
    try:
        result = future.result(timeout=0)
    except _POOL_FAILURES:
        return "pool", "worker process died; process pool broken"
    except FutureTimeoutError:
        # Not done: its pool broke under it before it could run.
        return "pool", "worker process died; process pool broken"
    except Exception as error:  # noqa: BLE001 - taxonomy boundary
        return "error", f"{type(error).__name__}: {error}"
    return "ok", result


__all__ = [
    "QuarantinedTask",
    "SupervisedExecutor",
    "SupervisionReport",
    "TASK_ERROR",
    "TASK_HANG",
    "WORKER_CRASH",
    "drop_quarantined",
]
