"""Project mode: the DF7xx dataflow rules, baseline workflow, and CLI.

Fixtures build small multi-module packages under ``tmp_path`` so every
flow under test actually crosses a module boundary — that is the whole
point of ``--project`` over the per-file rules.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint.cli import main as lint_main
from repro.lint.engine import (
    PARSE_ERROR_RULE,
    finding_fingerprint,
    run_project_lint,
    write_baseline,
)
from repro.lint.findings import Severity
from repro.lint.project import ProjectModel, module_name_for
from repro.lint.reporters import render_json, render_text


def build(tmp_path: Path, files: dict) -> Path:
    """Write a ``{relative path: source}`` tree; packages need __init__.py."""
    for name, source in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return tmp_path


def project_lint(tmp_path: Path, files: dict, *, select=None, **kwargs):
    root = build(tmp_path, files)
    return run_project_lint([root], select=select, root=root, **kwargs)


def rule_ids(report):
    return sorted({finding.rule for finding in report.findings})


# -- project model ---------------------------------------------------------

def test_module_name_walks_init_chain(tmp_path):
    build(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/sub/__init__.py": "",
        "pkg/sub/mod.py": "",
    })
    assert module_name_for(tmp_path / "pkg/sub/mod.py") == "pkg.sub.mod"
    assert module_name_for(tmp_path / "pkg/__init__.py") == "pkg"


def test_model_resolves_imports_and_calls(tmp_path):
    build(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/lib.py": """
            def helper():
                return 1
            """,
        "pkg/app.py": """
            from pkg.lib import helper as h

            def entry():
                return h()
            """,
    })
    import ast
    model = ProjectModel()
    for rel in ("pkg/__init__.py", "pkg/lib.py", "pkg/app.py"):
        source = (tmp_path / rel).read_text()
        model.add_module(module_name_for(tmp_path / rel), rel,
                         ast.parse(source), source)
    model.finish()
    assert "pkg.lib.helper" in model.functions
    app = model.modules["pkg.app"]
    assert model.resolve(app, "h") == "pkg.lib.helper"
    assert "pkg.lib.helper" in model.callees("pkg.app.entry")


# -- DF701: RNG provenance -------------------------------------------------

def test_df701_flags_inline_rng_crossing_modules(tmp_path):
    report = project_lint(tmp_path, {
        "repro/__init__.py": "",
        "repro/sim/__init__.py": "",
        "repro/sim/study.py": """
            def run_study(rng):
                return rng.random()
            """,
        "app.py": """
            import random

            from repro.sim.study import run_study

            def main():
                return run_study(rng=random.Random(42))
            """,
    }, select=["DF701"])
    assert rule_ids(report) == ["DF701"]
    (finding,) = report.findings
    assert finding.path == "app.py"
    assert "make_rng" in finding.message
    # The message names the origin of the unaudited construction.
    assert "app.py:7" in finding.message


def test_df701_flags_rng_through_dataclass_field(tmp_path):
    report = project_lint(tmp_path, {
        "repro/__init__.py": "",
        "repro/sim/__init__.py": "",
        "repro/sim/study.py": """
            from dataclasses import dataclass
            import random

            @dataclass
            class Study:
                name: str
                rng: random.Random
            """,
        "app.py": """
            import random

            from repro.sim.study import Study

            def main():
                return Study("fig2a", random.Random(7))
            """,
    }, select=["DF701"])
    assert rule_ids(report) == ["DF701"]


def test_df701_clean_with_factory_provenance(tmp_path):
    report = project_lint(tmp_path, {
        "repro/__init__.py": "",
        "repro/sim/__init__.py": "",
        "repro/sim/study.py": """
            def run_study(rng):
                return rng.random()
            """,
        "seeds.py": """
            import random

            def make_rng(seed):
                return random.Random(seed)

            def derive_seed(*parts):
                return 7
            """,
        "app.py": """
            import random

            from repro.sim.study import run_study
            from seeds import derive_seed, make_rng

            def audited():
                return run_study(rng=make_rng(3))

            def derived():
                return run_study(rng=random.Random(derive_seed("s", 1)))
            """,
    }, select=["DF701"])
    assert report.findings == []


def test_df701_ignores_sinks_outside_audited_modules(tmp_path):
    # An rng= param on an unaudited module is not a DF701 sink.
    report = project_lint(tmp_path, {
        "helpers.py": """
            def shuffle(rng):
                return rng.random()
            """,
        "app.py": """
            import random

            from helpers import shuffle

            def main():
                return shuffle(rng=random.Random(1))
            """,
    }, select=["DF701"])
    assert report.findings == []


# -- DF702: wall-clock taint -----------------------------------------------

def test_df702_flags_wallclock_laundered_through_helper(tmp_path):
    report = project_lint(tmp_path, {
        "records.py": """
            class TrialRecord:
                def __init__(self, trial, error=None, duration_wall_s=None):
                    self.trial = trial
                    self.error = error
                    self.duration_wall_s = duration_wall_s
            """,
        "clock.py": """
            import time

            def stamp():
                return time.time()
            """,
        "runner.py": """
            from clock import stamp
            from records import TrialRecord

            def record_failure(trial):
                return TrialRecord(trial, error=f"failed at {stamp()}")
            """,
    }, select=["DF702"])
    assert rule_ids(report) == ["DF702"]
    (finding,) = report.findings
    assert finding.path == "runner.py"
    assert "clock.py:5" in finding.message
    assert "TrialRecord field error" in finding.message


def test_df702_exempts_duration_wall_s(tmp_path):
    report = project_lint(tmp_path, {
        "records.py": """
            class TrialRecord:
                def __init__(self, trial, duration_wall_s=None):
                    self.trial = trial
                    self.duration_wall_s = duration_wall_s
            """,
        "runner.py": """
            import time

            from records import TrialRecord

            def timed(trial):
                start = time.monotonic()
                record = TrialRecord(trial, duration_wall_s=0.0)
                record.duration_wall_s = time.monotonic() - start
                return record
            """,
    }, select=["DF702"])
    assert report.findings == []


def test_df702_flags_wallclock_attr_store_and_metric(tmp_path):
    report = project_lint(tmp_path, {
        "records.py": """
            class TrialRecord:
                def __init__(self, trial):
                    self.trial = trial
                    self.error = None
            """,
        "runner.py": """
            import time

            from records import TrialRecord

            def poison(trial, registry):
                record = TrialRecord(trial)
                record.error = f"{time.perf_counter()}"
                gauge = registry.gauge("latency")
                gauge.set(time.monotonic())
                return record
            """,
    }, select=["DF702"])
    assert rule_ids(report) == ["DF702"]
    sinks = sorted(f.message.split(" flows into ")[1].split(";")[0]
                   for f in report.findings)
    assert sinks == ["TrialRecord field error", "metric set()"]


# -- DF703: pickle-safety --------------------------------------------------

def test_df703_flags_lambda_into_multiprocess_map(tmp_path):
    report = project_lint(tmp_path, {
        "pool.py": """
            class MultiprocessExecutor:
                def __init__(self, max_workers):
                    self.max_workers = max_workers

                def map(self, fn, items):
                    return [fn(item) for item in items]
            """,
        "app.py": """
            from pool import MultiprocessExecutor

            def fanout(items):
                exe = MultiprocessExecutor(4)
                return exe.map(lambda x: x + 1, items)
            """,
    }, select=["DF703"])
    assert rule_ids(report) == ["DF703"]
    (finding,) = report.findings
    assert "lambda" in finding.message
    assert "app.py:6" in finding.message


def test_df703_flags_local_def_but_not_serial(tmp_path):
    report = project_lint(tmp_path, {
        "pool.py": """
            class MultiprocessExecutor:
                def map(self, fn, items):
                    return [fn(item) for item in items]

            class SerialExecutor:
                def map(self, fn, items):
                    return [fn(item) for item in items]
            """,
        "app.py": """
            from pool import MultiprocessExecutor, SerialExecutor

            def multi(items):
                def inner(x):
                    return x + 1
                return MultiprocessExecutor().map(inner, items)

            def serial(items):
                return SerialExecutor().map(lambda x: x + 1, items)
            """,
    }, select=["DF703"])
    assert rule_ids(report) == ["DF703"]
    (finding,) = report.findings
    assert "defined inside another function" in finding.message


def test_df703_clean_with_module_level_task(tmp_path):
    report = project_lint(tmp_path, {
        "pool.py": """
            class MultiprocessExecutor:
                def map(self, fn, items):
                    return [fn(item) for item in items]
            """,
        "app.py": """
            from pool import MultiprocessExecutor

            def double(x):
                return x * 2

            def fanout(items):
                return MultiprocessExecutor().map(double, items)
            """,
    }, select=["DF703"])
    assert report.findings == []


# -- suppressions, determinism, parse errors -------------------------------

def test_project_findings_honor_line_suppressions(tmp_path):
    report = project_lint(tmp_path, {
        "pool.py": """
            class MultiprocessExecutor:
                def map(self, fn, items):
                    return [fn(item) for item in items]
            """,
        "app.py": """
            from pool import MultiprocessExecutor

            def fanout(items):
                exe = MultiprocessExecutor()
                return exe.map(lambda x: x, items)  # simlint: disable=DF703
            """,
    }, select=["DF703"])
    assert report.findings == []
    assert report.suppressed == 1


def test_project_report_is_byte_identical(tmp_path):
    files = {
        "repro/__init__.py": "",
        "repro/sim/__init__.py": "",
        "repro/sim/study.py": """
            def run_study(rng):
                return rng.random()
            """,
        "app.py": """
            import random

            from repro.sim.study import run_study

            def main():
                return run_study(rng=random.Random(42))
            """,
    }
    first = render_json(project_lint(tmp_path, files))
    second = render_json(run_project_lint([tmp_path], root=tmp_path))
    assert first == second


def test_parse_error_carries_line_col_and_text(tmp_path):
    report = project_lint(tmp_path, {
        "ok.py": "x = 1\n",
        "bad.py": "def broken(:\n    pass\n",
    })
    e000 = [f for f in report.findings if f.rule == PARSE_ERROR_RULE]
    (finding,) = e000
    assert finding.path == "bad.py"
    assert finding.line == 1
    assert finding.col > 0
    assert "line 1" in finding.message
    assert "def broken(:" in finding.message


# -- baseline workflow -----------------------------------------------------

FLAGGED_PROJECT = {
    "pool.py": """
        class MultiprocessExecutor:
            def map(self, fn, items):
                return [fn(item) for item in items]
        """,
    "app.py": """
        from pool import MultiprocessExecutor

        def fanout(items):
            return MultiprocessExecutor().map(lambda x: x, items)
        """,
}


def test_baseline_hides_recorded_findings(tmp_path):
    report = project_lint(tmp_path, FLAGGED_PROJECT, select=["DF703"])
    assert len(report.findings) == 1
    baseline_path = tmp_path / "baseline.json"
    write_baseline(report, baseline_path)

    rebaselined = run_project_lint([tmp_path], select=["DF703"],
                                   root=tmp_path, baseline=baseline_path)
    assert rebaselined.findings == []
    assert rebaselined.baselined == 1
    assert "1 baselined" in render_text(rebaselined)


def test_baseline_fingerprint_ignores_line_numbers(tmp_path):
    report = project_lint(tmp_path, FLAGGED_PROJECT, select=["DF703"])
    (finding,) = report.findings
    fingerprint = finding_fingerprint(finding)
    assert str(finding.line) not in fingerprint.split("::")[1]
    assert fingerprint.startswith("DF703::app.py::")


def test_baseline_rejects_garbage_file(tmp_path):
    build(tmp_path, FLAGGED_PROJECT)
    garbage = tmp_path / "not-a-baseline.json"
    garbage.write_text("[1, 2, 3]")
    with pytest.raises(ValueError, match="baseline"):
        run_project_lint([tmp_path], root=tmp_path, baseline=garbage)


# -- CLI contract ----------------------------------------------------------

def test_cli_df_rules_require_project_flag(tmp_path, capsys):
    build(tmp_path, FLAGGED_PROJECT)
    assert lint_main([str(tmp_path), "--select", "DF703"]) == 2
    assert "--project" in capsys.readouterr().out


def test_cli_unknown_rule_exits_2_in_project_mode(tmp_path, capsys):
    build(tmp_path, FLAGGED_PROJECT)
    assert lint_main([str(tmp_path), "--project",
                      "--select", "DF999"]) == 2
    assert "unknown rule id(s): DF999" in capsys.readouterr().out


def test_cli_baseline_requires_project(tmp_path, capsys):
    build(tmp_path, FLAGGED_PROJECT)
    baseline = tmp_path / "baseline.json"
    assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 2
    assert "--project" in capsys.readouterr().out


def test_cli_write_then_apply_baseline(tmp_path, capsys):
    build(tmp_path, FLAGGED_PROJECT)
    baseline = tmp_path / "baseline.json"
    assert lint_main([str(tmp_path), "--project", "--select", "DF703",
                      "--write-baseline", str(baseline)]) == 0
    assert "recorded 1 finding(s)" in capsys.readouterr().out

    assert lint_main([str(tmp_path), "--project", "--select", "DF703",
                      "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_cli_project_mode_finds_and_fails(tmp_path, capsys):
    build(tmp_path, FLAGGED_PROJECT)
    assert lint_main([str(tmp_path), "--project",
                      "--select", "DF703"]) == 1
    assert "DF703" in capsys.readouterr().out


def test_cli_list_rules_marks_project_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DF701", "DF702", "DF703"):
        assert rule_id in out
        line = next(l for l in out.splitlines() if l.startswith(rule_id))
        assert "(--project)" in line
