"""Pluggable trial executors: serial and multiprocess fan-out.

The paper's methodology is embarrassingly parallel — every figure is N
independent seeded repetitions per sweep point, and ``derive_seed`` makes
trial ``i`` of an experiment a pure function of ``(experiment, trial)``.
Executors exploit that: a task function is applied to each item of a work
list, results come back keyed by item index, and callers merge them in
index order, so the output of a sweep is byte-identical for any worker
count.

Three implementations share one contract:

* :class:`SerialExecutor` — in-process, in-order; the default everywhere,
  and the reference behavior the multiprocess path must reproduce.
* :class:`MultiprocessExecutor` — ``concurrent.futures``
  ``ProcessPoolExecutor`` fan-out with ``max_workers`` processes.  Tasks
  and results cross the process boundary by pickling, so task callables
  must be picklable (module-level functions or instances of module-level
  classes — not lambdas or closures).  Completion order is
  nondeterministic; the index keying is what restores determinism.
* :class:`~repro.parallel.supervisor.SupervisedExecutor` — the
  production fan-out: the same pool semantics wrapped in a supervisor
  that rebuilds a broken pool, times out hung tasks, quarantines poison
  tasks, and drains cleanly on SIGINT/SIGTERM.  ``get_executor`` returns
  it for ``--jobs N > 1``.

Workers never touch shared files: journals, CSVs, and figure tables are
written by the parent after the merge (see
:class:`repro.core.experiments.RobustTrialRunner`).  This module is the
only place in the codebase allowed to spawn worker processes — simlint
rule PAR601 enforces that.
"""

from __future__ import annotations

import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence, Tuple


class ParallelExecutionError(RuntimeError):
    """Fan-out infrastructure failure (not a task-level error)."""


def ensure_picklable(fn: Callable[[Any], Any]) -> None:
    """Pre-flight check that ``fn`` can cross the process boundary.

    A lambda or closure fails deep inside the pool machinery with an
    obscure traceback; checking up front turns that into a pointed
    :class:`ParallelExecutionError` before any worker is spawned.
    """
    try:
        pickle.dumps(fn)
    except Exception as error:
        raise ParallelExecutionError(
            f"task {fn!r} is not picklable and cannot cross the "
            f"process boundary (use a module-level function or class "
            f"instance, not a lambda/closure): {error}"
        ) from error


class Executor:
    """Contract: apply ``fn`` to every item, yield ``(index, result)``.

    ``run_tasks`` may yield in any order but must yield every index
    exactly once; ``map`` restores item order.  Exceptions raised by
    ``fn`` propagate to the caller in both implementations.
    """

    #: Worker-process count the executor was configured for (1 = serial).
    jobs: int = 1

    def run_tasks(self, fn: Callable[[Any], Any],
                  items: Sequence[Any]) -> Iterator[Tuple[int, Any]]:
        raise NotImplementedError

    def map(self, fn: Callable[[Any], Any],
            items: Iterable[Any]) -> list:
        """All results, in item order, regardless of completion order."""
        work = list(items)
        results: list = [None] * len(work)
        seen = [False] * len(work)
        for index, result in self.run_tasks(fn, work):
            results[index] = result
            seen[index] = True
        if not all(seen):
            missing = [i for i, ok in enumerate(seen) if not ok]
            raise ParallelExecutionError(
                f"executor dropped task indices {missing}"
            )
        return results


class SerialExecutor(Executor):
    """In-process execution in item order — the reference behavior."""

    def run_tasks(self, fn: Callable[[Any], Any],
                  items: Sequence[Any]) -> Iterator[Tuple[int, Any]]:
        for index, item in enumerate(items):
            yield index, fn(item)


class MultiprocessExecutor(Executor):
    """``ProcessPoolExecutor`` fan-out across ``max_workers`` processes.

    Yields ``(index, result)`` pairs as tasks complete, so a caller that
    journals incrementally can checkpoint after every finished trial
    while still merging deterministically by index.
    """

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ValueError("need at least one worker")
        self.jobs = max_workers

    def run_tasks(self, fn: Callable[[Any], Any],
                  items: Sequence[Any]) -> Iterator[Tuple[int, Any]]:
        work = list(items)
        if not work:
            return
        workers = min(self.jobs, len(work))
        if workers == 1:
            yield from SerialExecutor().run_tasks(fn, work)
            return
        ensure_picklable(fn)
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            pending = {pool.submit(fn, item): index
                       for index, item in enumerate(work)}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    yield index, future.result()
        finally:
            # A task exception (or an abandoned generator) must not leave
            # orphaned workers grinding through the rest of the queue: a
            # plain `with` block would shutdown(wait=True) and block on
            # every still-pending task instead.
            pool.shutdown(wait=False, cancel_futures=True)


def get_executor(
    jobs: int = 1,
    *,
    task_timeout_s: Optional[float] = None,
    max_task_retries: Optional[int] = None,
    supervised: bool = True,
) -> Executor:
    """``--jobs`` to executor: 1 is serial, N>1 is N worker processes.

    For ``jobs > 1`` the default is a
    :class:`~repro.parallel.supervisor.SupervisedExecutor` (pool rebuild
    on worker crash, hung-task timeout, poison-task quarantine, signal
    drain); pass ``supervised=False`` for the bare
    :class:`MultiprocessExecutor`.  ``task_timeout_s`` and
    ``max_task_retries`` tune the supervisor and are rejected for the
    unsupervised paths.
    """
    if jobs < 1:
        raise ValueError(f"--jobs must be at least 1 (got {jobs})")
    if jobs == 1 or not supervised:
        if task_timeout_s is not None or max_task_retries is not None:
            raise ValueError(
                "task_timeout_s/max_task_retries require a supervised "
                "multiprocess executor (jobs > 1, supervised=True)"
            )
        return SerialExecutor() if jobs == 1 else MultiprocessExecutor(jobs)
    # Function-level import: the supervisor builds on this module's
    # Executor contract, so the dependency must point one way at import
    # time.
    from repro.parallel.supervisor import SupervisedExecutor

    kwargs: dict = {}
    if task_timeout_s is not None:
        kwargs["task_timeout_s"] = task_timeout_s
    if max_task_retries is not None:
        kwargs["max_task_retries"] = max_task_retries
    return SupervisedExecutor(jobs, **kwargs)


__all__ = [
    "Executor",
    "MultiprocessExecutor",
    "ParallelExecutionError",
    "SerialExecutor",
    "ensure_picklable",
    "get_executor",
]
