"""Fault-injection rules (FLT4xx).

Fault injectors are the one part of the codebase whose *job* is
randomness, which makes them the easiest place to silently lose the
replay guarantee: an injector that reaches for the global ``random``
module (or is constructed without a stream at all) produces a different
fault schedule every run, and the trial journal/`FaultTrace` replay
contract breaks.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileContext, Rule, call_name

#: rng= keyword values that are obviously not a seeded stream.
_UNSEEDED_RNG_CALLS = frozenset({
    "random.Random",
    "Random",
    "random.SystemRandom",
    "SystemRandom",
})


def _imports_repro_faults(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name == "repro.faults"
                   or alias.name.startswith("repro.faults.")
                   for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "repro.faults" or module.startswith("repro.faults."):
                return True
            if module == "repro" and any(alias.name == "faults"
                                         for alias in node.names):
                return True
    return False


class SeededFaultInjectionRule(Rule):
    """FLT401: injectors and ``FaultPlan.install`` need an explicit seeded RNG."""

    id = "FLT401"
    severity = Severity.ERROR
    title = "fault injector without an explicit seeded RNG"
    rationale = (
        "Every fault injector draws its schedule from the RNG stream it is "
        "handed; constructing one without rng= (or with an unseeded "
        "random.Random()) silently decouples the fault schedule from the "
        "trial seed, so the same (experiment, trial, FaultPlan) no longer "
        "replays to the same FaultTrace. Pass a make_rng-derived stream."
    )

    def applies_to(self, context: FileContext) -> bool:
        # The faults package itself plus anything that imports it.
        return ("/faults/" in context.norm_path
                or context.norm_path.endswith("/faults.py")
                or _imports_repro_faults(context.tree))

    @staticmethod
    def _rng_keyword(node: ast.Call) -> "ast.keyword | None":
        for keyword in node.keywords:
            if keyword.arg == "rng":
                return keyword
        return None

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            tail = name.rsplit(".", 1)[-1]
            is_injector = tail.endswith("Injector") and tail != "Injector"
            is_install = (tail == "install"
                          and isinstance(node.func, ast.Attribute))
            if not (is_injector or is_install):
                continue
            what = (f"injector {tail}" if is_injector
                    else "FaultPlan.install")
            keyword = self._rng_keyword(node)
            if keyword is None:
                yield self.finding(
                    context, node,
                    f"{what} called without an explicit rng=; pass a seeded "
                    f"stream (make_rng(seed) or spawn_rng(parent))",
                )
                continue
            value = keyword.value
            if isinstance(value, ast.Constant) and value.value is None:
                yield self.finding(
                    context, node,
                    f"{what} called with rng=None; fault schedules must "
                    f"come from a seeded stream",
                )
            elif (isinstance(value, ast.Call)
                  and call_name(value) in _UNSEEDED_RNG_CALLS
                  and not (value.args or value.keywords)):
                yield self.finding(
                    context, node,
                    f"{what} called with an unseeded {call_name(value)}(); "
                    f"derive the stream from the trial seed instead",
                )


__all__ = ["SeededFaultInjectionRule"]
