#!/usr/bin/env python3
"""Quickstart: load one Web page on a low-end and a high-end phone.

Builds a synthetic news page, loads it through the full simulation stack
(device model → TCP/TLS over the testbed LAN → browser engine), and
prints the QoE metrics the paper reports: PLT, the critical-path
compute/network split, and energy.

Run:  python examples/quickstart.py
"""

from repro.device import Device, by_name
from repro.netstack import Link
from repro.sim import Environment
from repro.web import BrowserEngine
from repro.workloads import generate_page


def load_page(device_name: str, page) -> None:
    env = Environment()
    device = Device(env, by_name(device_name), governor="OD")
    browser = BrowserEngine(env, device, Link(env))
    result = env.run(env.process(browser.load(page)))

    print(f"\n{device_name}")
    print(f"  PLT                 {result.plt:6.2f} s")
    print(f"  critical-path compute {result.compute_time:6.2f} s")
    print(f"  critical-path network {result.network_time:6.2f} s")
    print(f"  scripting share     {result.scripting_share:6.1%}")
    print(f"  requests            {result.n_requests:4d}  "
          f"({result.bytes_fetched / 1e6:.2f} MB)")
    print(f"  CPU energy          {result.energy_j:6.2f} J")


def main() -> None:
    page = generate_page(seed=1, category="news")
    print(f"page: {page.url} ({page.category}, "
          f"{len(page.objects)} objects, {page.total_bytes / 1e6:.2f} MB)")
    for device_name in ("Intex Amaze+", "Google Pixel2"):
        load_page(device_name, page)
    print("\nSame page, same network — the $60 phone pays several times "
          "the PLT of the $700 one.")


if __name__ == "__main__":
    main()
