"""Fault-injection package: specs, injectors, traces, and determinism."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.background import make_rng
from repro.device import Device, NEXUS4
from repro.faults import (
    BurstLossSpec,
    CrashSpec,
    FaultPlan,
    FaultTrace,
    LatencySpikeSpec,
    LinkFlapSpec,
    MemoryPressureSpec,
    ThermalThrottleSpec,
    spawn_rng,
)
from repro.netstack import Link, LinkSpec
from repro.sim import Environment, Interrupt

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


# -- spec validation --------------------------------------------------------

def test_spec_validation_rejects_bad_parameters():
    with pytest.raises(ValueError):
        BurstLossSpec(p_bad=1.0)
    with pytest.raises(ValueError):
        BurstLossSpec(mean_good_s=0.0)
    with pytest.raises(ValueError):
        LinkFlapSpec(mean_down_s=-1.0)
    with pytest.raises(ValueError):
        LatencySpikeSpec(spike_s=0.0)
    with pytest.raises(ValueError):
        ThermalThrottleSpec(schedule=())
    with pytest.raises(ValueError):
        ThermalThrottleSpec(schedule=((1.0, 0.5), (1.0, 0.4)))
    with pytest.raises(ValueError):
        ThermalThrottleSpec(schedule=((1.0, 1.5),))
    with pytest.raises(ValueError):
        MemoryPressureSpec(pressure_gb=(0.5, 0.1))
    with pytest.raises(ValueError):
        CrashSpec(probability=1.5)


def test_plan_rejects_non_spec_objects():
    with pytest.raises(TypeError):
        FaultPlan(["not a spec"])


def test_plan_describe_is_stable():
    plan = FaultPlan((BurstLossSpec(), CrashSpec()))
    assert plan.describe() == "BurstLossSpec; CrashSpec"
    assert FaultPlan().describe() == "clean"


def test_install_requires_targets():
    env = Environment()
    rng = make_rng(1)
    with pytest.raises(ValueError, match="link"):
        FaultPlan((BurstLossSpec(),)).install(env, rng=rng)
    with pytest.raises(ValueError, match="device"):
        FaultPlan((ThermalThrottleSpec(),)).install(env, rng=rng)
    with pytest.raises(ValueError, match="processes"):
        FaultPlan((CrashSpec(),)).install(env, rng=rng)


# -- link injectors ---------------------------------------------------------

def test_ge_loss_injector_toggles_link_loss():
    env = Environment()
    link = Link(env, LinkSpec())
    trace = FaultTrace()
    plan = FaultPlan((BurstLossSpec(p_good=0.0, p_bad=0.3),))
    plan.install(env, rng=make_rng(7), link=link, trace=trace)
    env.run(until=30.0)
    actions = {e.action for e in trace}
    assert {"good", "bad"} <= actions
    losses = {e.detail for e in trace if e.injector == "ge-loss"}
    assert "loss=0.3" in losses


def test_link_flap_blocks_transfer_until_restored():
    env = Environment()
    link = Link(env, LinkSpec(goodput_bps=8e6))
    done = []

    def take_down_then_up():
        yield env.timeout(0.1)
        link.take_down()
        assert link.is_down
        yield env.timeout(2.0)
        link.bring_up()

    def sender():
        yield env.timeout(0.2)  # starts while the link is down
        yield from link.transmit(1_000_000)
        done.append(env.now)

    env.process(take_down_then_up())
    env.process(sender())
    env.run(until=10.0)
    # 1 MB at 1 MB/s = 1 s of serialization, starting only at t=2.1.
    assert done == [pytest.approx(3.1)]


def test_latency_spike_adds_delay():
    env = Environment()
    link = Link(env, LinkSpec(goodput_bps=8e6))
    link.set_extra_delay(0.5)
    done = []

    def sender():
        yield from link.transmit(1_000_000)
        done.append(env.now)

    env.process(sender())
    env.run(until=10.0)
    assert done == [pytest.approx(1.5)]


# -- device injectors -------------------------------------------------------

def test_thermal_throttle_caps_then_lifts():
    env = Environment()
    device = Device(env, NEXUS4, governor="PF")
    full_mhz = device.cpu.clusters[0].freq_mhz
    trace = FaultTrace()
    spec = ThermalThrottleSpec(schedule=((1.0, 0.5), (5.0, 1.0)))
    FaultPlan((spec,)).install(env, rng=make_rng(3), device=device,
                               trace=trace)
    env.run(until=2.0)
    capped_mhz = device.cpu.clusters[0].freq_mhz
    assert capped_mhz <= 0.5 * full_mhz
    env.run(until=6.0)
    assert device.cpu.clusters[0].freq_mhz == full_mhz
    assert [e.action for e in trace] == ["cap", "lift"]


def test_memory_pressure_injector_raises_pressure():
    env = Environment()
    device = Device(env, NEXUS4)
    trace = FaultTrace()
    spec = MemoryPressureSpec(mean_interval_s=0.5, pressure_gb=(0.2, 0.4))
    FaultPlan((spec,)).install(env, rng=make_rng(11), device=device,
                               trace=trace)
    env.run(until=10.0)
    assert 0.2 <= device.fault_pressure_gb <= 0.4
    assert any(e.action == "evict" for e in trace)


# -- crash injector ---------------------------------------------------------

def test_crash_injector_interrupts_foreground_process():
    env = Environment()

    def workload():
        yield env.timeout(100.0)

    proc = env.process(workload())
    plan = FaultPlan((CrashSpec(probability=1.0, window_s=(1.0, 2.0)),))
    trace = plan.install(env, rng=make_rng(5), processes=[proc])
    with pytest.raises(Interrupt) as exc_info:
        env.run(proc)
    assert exc_info.value.cause == "fault:crash"
    assert 1.0 <= trace.events[0].t <= 2.0


def test_crash_injector_never_fires_at_zero_probability():
    env = Environment()

    def workload():
        yield env.timeout(1.0)
        return "done"

    proc = env.process(workload())
    plan = FaultPlan((CrashSpec(probability=0.0),))
    trace = plan.install(env, rng=make_rng(5), processes=[proc])
    assert env.run(proc) == "done"
    assert len(trace) == 0


# -- determinism: the replay contract ---------------------------------------

def _full_scenario_trace(seed: int) -> str:
    """Run every injector type for 20 sim-seconds; return the trace bytes."""
    env = Environment()
    device = Device(env, NEXUS4, governor="OD")
    link = Link(env, LinkSpec())

    def workload():
        while True:
            yield from link.transmit(100_000)
            yield from device.run(5e6)

    proc = env.process(workload())
    plan = FaultPlan((
        BurstLossSpec(mean_good_s=2.0, mean_bad_s=1.0),
        LinkFlapSpec(mean_up_s=4.0, mean_down_s=0.5),
        LatencySpikeSpec(mean_interval_s=3.0),
        ThermalThrottleSpec(schedule=((2.0, 0.5), (10.0, 1.0))),
        MemoryPressureSpec(mean_interval_s=2.0),
        CrashSpec(probability=0.5, window_s=(15.0, 40.0)),
    ))
    trace = plan.install(env, rng=make_rng(seed), link=link, device=device,
                         processes=[proc])
    try:
        env.run(until=20.0)
    except Interrupt:
        pass
    return trace.to_jsonl()


@settings(max_examples=5, deadline=None)
@given(seed=SEEDS)
def test_fault_trace_replays_bit_identically(seed):
    assert _full_scenario_trace(seed) == _full_scenario_trace(seed)


@settings(max_examples=5, deadline=None)
@given(seeds=st.lists(SEEDS, min_size=2, max_size=2, unique=True))
def test_fault_trace_diverges_across_seeds(seeds):
    first, second = (_full_scenario_trace(seed) for seed in seeds)
    assert first != second


def test_spawn_rng_decouples_sibling_streams():
    # Extra draws on the first child must not shift the second child's
    # stream relative to a fresh derivation from the same parent seed.
    parent_a = make_rng(99)
    child_a1 = spawn_rng(parent_a)
    child_a1.random()  # consume from the first child only
    child_a2 = spawn_rng(parent_a)
    parent_b = make_rng(99)
    spawn_rng(parent_b)
    child_b2 = spawn_rng(parent_b)
    assert child_a2.random() == child_b2.random()


def test_trace_jsonl_is_canonical():
    env = Environment()
    trace = FaultTrace()
    trace.record(env, "x", "start", "k=1")
    line = trace.to_jsonl()
    assert line == '{"action":"start","detail":"k=1","injector":"x","t":0.0}'


def test_faulted_page_load_qoe_is_deterministic():
    from repro.core.studies import FaultStudy, FaultStudyConfig

    study = FaultStudy(FaultStudyConfig(n_pages=1, trials=1))
    plan = FaultPlan((BurstLossSpec(p_bad=0.4, mean_good_s=1.0,
                                    mean_bad_s=1.0),))
    page = study.corpus[0]
    first = study.load_page_with_faults(NEXUS4, page, plan, 1234,
                                        governor="OD")
    second = study.load_page_with_faults(NEXUS4, page, plan, 1234,
                                         governor="OD")
    assert first == second
