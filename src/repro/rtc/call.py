"""A video call: signaling setup, then the per-frame media pipeline.

**Call setup** is a signaling exchange (registration, capability
negotiation, key exchange, relay probing) whose CPU cost dominates on a
slow clock; the paper measures an 18-second swing across the Nexus4
ladder and attributes it to client-side processing, since the network
never changes.

**Media loop**: every frame period, a send pipeline (capture → preprocess
→ encode → mux → packetize) and a receive pipeline (depacketize → demux →
decode → render) each run one CPU task; hardware codecs offload the
en/decode where the chipset allows (see
:class:`~repro.rtc.abr.SkypeLikeAbr`).  Frame packets cross the kernel
stack both ways — nothing is prefetchable in an interactive call, which
is why telephony, unlike streaming, degrades linearly with the clock.

The achieved frame rate is frames completed over wall time, capped at the
30 fps target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.device import Device
from repro.netstack import HostStack, Link, TcpConnection
from repro.rtc.abr import RtcCostModel, RtcFormat, SkypeLikeAbr
from repro.sim import Environment


@dataclass(frozen=True)
class CallConfig:
    """Call tunables (defaults calibrated to Figs 2c/5)."""

    target_fps: float = 30.0
    call_duration_s: float = 30.0
    #: Signaling: message count and per-message client CPU (crypto,
    #: capability negotiation, relay probing).
    setup_messages: int = 8
    setup_ops_per_message: float = 1.5e9
    setup_message_bytes: float = 1_200.0
    #: Single-core scheduling-thrash multiplier (cf. the video player).
    single_core_pipeline_factor: float = 1.45


@dataclass
class CallResult:
    """QoE outcome of one call (§2.1 metrics)."""

    format: RtcFormat
    setup_delay_s: float = 0.0
    frames_sent: int = 0
    call_wall_s: float = 0.0
    sw_encode: bool = False
    energy_j: float = 0.0

    @property
    def frame_rate(self) -> float:
        if self.call_wall_s <= 0:
            return 0.0
        return self.frames_sent / self.call_wall_s


class VideoCall:
    """Places one call from the device to a LAN peer."""

    def __init__(
        self,
        env: Environment,
        device: Device,
        link: Link,
        config: CallConfig = CallConfig(),
        abr: Optional[SkypeLikeAbr] = None,
        stack: Optional[HostStack] = None,
    ):
        self.env = env
        self.device = device
        self.link = link
        self.config = config
        self.abr = abr or SkypeLikeAbr(target_fps=config.target_fps)
        self.stack = stack or HostStack(env, device)

    def _setup(self, conn: TcpConnection):
        """Process: the signaling exchange that answers the call."""
        yield from conn.connect()
        for _ in range(self.config.setup_messages):
            yield from conn.send(self.config.setup_message_bytes)
            yield from self.device.run(self.config.setup_ops_per_message)
            yield from conn.receive(self.config.setup_message_bytes)

    def run(self):
        """Process: set up and hold the call; returns a :class:`CallResult`."""
        env = self.env
        config = self.config
        self.device.set_working_set(0.33)
        conn = TcpConnection(env, self.link, self.stack, tls=True)
        yield from self._setup(conn)

        fmt = self.abr.select(self.device)
        result = CallResult(format=fmt,
                            sw_encode=self.abr.needs_sw_encode(self.device))
        result.setup_delay_s = env.now

        frame_period = 1.0 / config.target_fps
        frame_bytes = fmt.bitrate_bps / 8.0 / config.target_fps
        direction_ops = self.abr.cost.direction_ops(fmt, result.sw_encode)
        if self.device.cpu.online_cores == 1:
            direction_ops *= config.single_core_pipeline_factor
        call_start = env.now
        end_at = call_start + config.call_duration_s
        while env.now < end_at:
            started = env.now
            send_task = self.device.submit(direction_ops)
            recv_task = self.device.submit(direction_ops)
            pkt_out = env.process(self.stack.process_tx(frame_bytes))
            pkt_in = env.process(self.stack.process_rx(frame_bytes))
            codec = self.device.accelerators.codec
            waits = [send_task.done, recv_task.done, pkt_out, pkt_in]
            if codec is not None and codec.rtc_usable:
                hw_time = (codec.encode_time(fmt.width, fmt.height, 1)
                           + codec.decode_time(fmt.width, fmt.height, 1))
                waits.append(env.timeout(hw_time))
            yield env.all_of(waits)
            result.frames_sent += 1
            elapsed = env.now - started
            if elapsed < frame_period:
                # The pipeline beat the frame budget; pace to the camera.
                yield env.timeout(frame_period - elapsed)
        result.call_wall_s = env.now - call_start
        result.energy_j = self.device.energy.energy_j
        return result


__all__ = ["CallConfig", "CallResult", "VideoCall"]
