"""Rule base class, shared AST helpers, and the rule registry."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.findings import Finding, Severity


@dataclass
class FileContext:
    """Everything a rule needs about one source file."""

    path: str
    source: str
    tree: ast.Module
    #: Posix-style path, lowercase, for rule scoping tests.
    norm_path: str = field(init=False)

    def __post_init__(self) -> None:
        self.norm_path = self.path.replace("\\", "/").lower()


class Rule:
    """One named, severity-ranked invariant.

    Subclasses set the class attributes and implement :meth:`check`, which
    yields raw findings; the engine applies suppressions and filtering.
    """

    id: str = ""
    severity: Severity = Severity.WARNING
    title: str = ""
    rationale: str = ""

    def applies_to(self, context: FileContext) -> bool:
        """Path-based scoping hook; default is every file."""
        return True

    def check(self, context: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, context: FileContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            severity=self.severity,
            message=message,
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call target, e.g. ``time.time`` or ``id``."""
    return dotted_name(node.func)


def iter_generator_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.FunctionDef, List[ast.expr]]]:
    """Yield (function, [yield nodes]) for every generator function.

    Nested functions are visited independently: a yield inside an inner
    ``def`` belongs to the inner function only.
    """
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yields = [
            sub for sub in _walk_function_body(node)
            if isinstance(sub, (ast.Yield, ast.YieldFrom))
        ]
        if yields:
            yield node, yields  # type: ignore[misc]


def _walk_function_body(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def references_env(func: ast.AST) -> bool:
    """Heuristic: does the function touch a simulation environment?

    True when the body reads a bare ``env`` name or an ``.env`` attribute
    (``self.env``, ``device.env``, ...) — the signature shared by every
    process generator in the codebase.
    """
    for node in _walk_function_body(func):
        if isinstance(node, ast.Name) and node.id == "env":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "env":
            return True
    return False


def walk_function_body(func: ast.AST) -> Iterator[ast.AST]:
    """Public alias of the nested-function-excluding body walker."""
    return _walk_function_body(func)


from repro.lint.rules.cache import CacheDirectWriteRule  # noqa: E402
from repro.lint.rules.catalog import CatalogSchemaRule  # noqa: E402
from repro.lint.rules.dataflow import (  # noqa: E402
    ALL_PROJECT_RULES,
    ProjectRule,
)
from repro.lint.rules.determinism import (  # noqa: E402
    IdOrderingRule,
    SetIterationRule,
    StudyRngFactoryRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.lint.rules.faults import SeededFaultInjectionRule  # noqa: E402
from repro.lint.rules.obs import (  # noqa: E402
    RawSpanPairRule,
    RunlogDirectWriteRule,
)
from repro.lint.rules.parallel import (  # noqa: E402
    RawProcessFanoutRule,
    RawSignalHandlerRule,
)
from repro.lint.rules.simapi import (  # noqa: E402
    BlockingCallRule,
    KernelStateMutationRule,
    NonEventYieldRule,
)
from repro.lint.rules.units import MixedUnitArithmeticRule  # noqa: E402

#: Registry in rule-id order; the engine runs them all unless filtered.
ALL_RULES: Tuple[Rule, ...] = (
    WallClockRule(),
    UnseededRandomRule(),
    SetIterationRule(),
    IdOrderingRule(),
    StudyRngFactoryRule(),
    NonEventYieldRule(),
    BlockingCallRule(),
    KernelStateMutationRule(),
    MixedUnitArithmeticRule(),
    CatalogSchemaRule(),
    SeededFaultInjectionRule(),
    RawSpanPairRule(),
    RunlogDirectWriteRule(),
    RawProcessFanoutRule(),
    RawSignalHandlerRule(),
    CacheDirectWriteRule(),
)


def rules_by_id() -> Dict[str, Rule]:
    """Every registered rule — file and project — keyed by id."""
    return {rule.id: rule for rule in ALL_RULES + ALL_PROJECT_RULES}


__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "FileContext",
    "ProjectRule",
    "Rule",
    "call_name",
    "dotted_name",
    "iter_generator_functions",
    "references_env",
    "rules_by_id",
    "walk_function_body",
]
