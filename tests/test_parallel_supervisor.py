"""Supervisor failure paths: rebuild, timeout, quarantine, drain, chaos.

The acceptance property of the whole layer is *chaos invariance*: a run
afflicted by planned worker crashes, hangs, and pickle corruption must
produce byte-identical journals and summaries to a serial run, because
every injected fault is retry-recoverable and every trial is a pure
function of its seed.  The SIGINT test drives a real ``python -m repro``
subprocess so the full drain → journal flush → ``--resume`` path is
exercised the way an operator would hit it.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.background import make_rng
from repro.core.experiments import (
    RobustTrialRunner,
    TRIAL_CRASH,
    TRIAL_ERROR,
    TRIAL_TIMEOUT,
)
from repro.parallel import (
    QuarantinedTask,
    SerialExecutor,
    SupervisedExecutor,
    TASK_ERROR,
    TASK_HANG,
    WORKER_CRASH,
    drop_quarantined,
)
from repro.parallel.chaos import (
    CHAOS_CORRUPT,
    CHAOS_CRASH,
    CHAOS_HANG,
    ChaosExecutor,
    ChaosFault,
    ChaosPlan,
)

# Pool churn makes these tests inherently slower than unit scale; the
# budgets below (timeouts, poll intervals) are tuned so a full chaos run
# stays in the low seconds.
FAST = dict(poll_interval_s=0.02)


def square(x: int) -> int:
    return x * x


def seeded_value(seed: int) -> float:
    return make_rng(seed).uniform(1.0, 2.0)


def poison_plan(index: int, kind: str, attempts: int = 10,
                hang_s: float = 60.0) -> ChaosPlan:
    """A plan that faults ``index`` on every dispatch — unrecoverable."""
    return ChaosPlan(faults=tuple(
        ChaosFault(index=index, kind=kind, attempt=a, hang_s=hang_s)
        for a in range(attempts)
    ))


# -- healthy path -----------------------------------------------------------

def test_supervised_map_matches_serial_when_healthy():
    items = list(range(16))
    supervised = SupervisedExecutor(3, **FAST)
    assert supervised.map(square, items) == [x * x for x in items]
    assert supervised.last_supervision.clean


def test_supervised_always_uses_the_pool():
    # No serial degradation for one item/worker: quarantine and recovery
    # semantics must not silently change with workload size, so even the
    # smallest run crosses the process boundary (and therefore requires a
    # picklable task, unlike MultiprocessExecutor's single-item path).
    assert SupervisedExecutor(4, **FAST).map(square, [7]) == [49]


def test_supervisor_constructor_validation():
    with pytest.raises(ValueError):
        SupervisedExecutor(0)
    with pytest.raises(ValueError):
        SupervisedExecutor(2, task_timeout_s=0.0)
    with pytest.raises(ValueError):
        SupervisedExecutor(2, max_task_retries=-1)
    with pytest.raises(ValueError):
        SupervisedExecutor(2, poll_interval_s=0.0)


# -- crash recovery ---------------------------------------------------------

def test_pool_rebuild_recovers_worker_crashes():
    plan = ChaosPlan(faults=(
        ChaosFault(index=1, kind=CHAOS_CRASH),
        ChaosFault(index=6, kind=CHAOS_CRASH),
    ))
    executor = ChaosExecutor(2, plan, **FAST)
    items = list(range(10))
    assert executor.map(square, items) == [x * x for x in items]
    report = executor.last_supervision
    assert report.pool_rebuilds >= 2
    assert report.task_retries >= 2
    assert report.quarantined == []


def test_completed_cohort_results_survive_a_pool_break():
    # When a pool breaks, in-flight futures that already finished must
    # yield their genuine results, not re-run.  With a wide window and
    # one crasher, most of the cohort completes before the break lands.
    plan = ChaosPlan(faults=(ChaosFault(index=0, kind=CHAOS_CRASH),))
    executor = ChaosExecutor(4, plan, **FAST)
    items = list(range(12))
    assert executor.map(square, items) == [x * x for x in items]
    assert executor.last_supervision.quarantined == []


# -- hang timeout -----------------------------------------------------------

def test_hung_task_is_cancelled_and_reassigned():
    plan = ChaosPlan(faults=(ChaosFault(index=2, kind=CHAOS_HANG,
                                        hang_s=60.0),))
    executor = ChaosExecutor(2, plan, task_timeout_s=0.4, **FAST)
    started = time.monotonic()  # simlint: disable=DET001 -- host-side test stopwatch
    items = list(range(6))
    assert executor.map(square, items) == [x * x for x in items]
    elapsed = time.monotonic() - started  # simlint: disable=DET001 -- host-side test stopwatch
    # The 60s sleep was killed at the ~0.4s budget, not waited out.
    assert elapsed < 30.0
    report = executor.last_supervision
    assert report.pool_rebuilds >= 1
    assert report.quarantined == []


def test_chaos_hang_plan_requires_a_task_timeout():
    plan = ChaosPlan(faults=(ChaosFault(index=0, kind=CHAOS_HANG),))
    with pytest.raises(ValueError, match="task_timeout_s"):
        ChaosExecutor(2, plan)


# -- quarantine taxonomy ----------------------------------------------------

def test_poison_crash_quarantines_as_worker_crash():
    executor = ChaosExecutor(2, poison_plan(3, CHAOS_CRASH),
                             max_task_retries=2, **FAST)
    results = executor.map(square, list(range(6)))
    quarantined = [r for r in results if isinstance(r, QuarantinedTask)]
    assert [q.index for q in quarantined] == [3]
    assert quarantined[0].kind == WORKER_CRASH
    assert quarantined[0].attempts == 3  # initial dispatch + 2 retries
    assert drop_quarantined(results) == [x * x for x in range(6) if x != 3]


def test_poison_hang_quarantines_as_task_hang():
    executor = ChaosExecutor(2, poison_plan(1, CHAOS_HANG),
                             task_timeout_s=0.3, max_task_retries=1, **FAST)
    results = executor.map(square, list(range(4)))
    quarantined = [r for r in results if isinstance(r, QuarantinedTask)]
    assert [q.kind for q in quarantined] == [TASK_HANG]
    assert quarantined[0].index == 1
    assert "timeout" in quarantined[0].error


def test_poison_corrupt_quarantines_as_task_error():
    executor = ChaosExecutor(2, poison_plan(2, CHAOS_CORRUPT),
                             max_task_retries=1, **FAST)
    results = executor.map(square, list(range(5)))
    quarantined = [r for r in results if isinstance(r, QuarantinedTask)]
    assert [q.kind for q in quarantined] == [TASK_ERROR]
    assert quarantined[0].index == 2


def test_task_exception_quarantines_instead_of_propagating():
    # Unlike MultiprocessExecutor, a supervised run never dies on a task
    # exception: the failing task retries, then quarantines as TASK_ERROR.
    executor = SupervisedExecutor(2, max_task_retries=1, **FAST)
    results = executor.map(_explode_on_three, list(range(5)))
    quarantined = [r for r in results if isinstance(r, QuarantinedTask)]
    assert [(q.index, q.kind) for q in quarantined] == [(3, TASK_ERROR)]
    assert "boom on 3" in quarantined[0].error
    assert executor.last_supervision.task_retries == 1


def _explode_on_three(x: int) -> int:
    if x == 3:
        raise ValueError(f"boom on {x}")
    return x * x


# -- chaos plans ------------------------------------------------------------

def test_chaos_fault_validation():
    with pytest.raises(ValueError, match="kind"):
        ChaosFault(index=0, kind="meteor")
    with pytest.raises(ValueError):
        ChaosFault(index=-1, kind=CHAOS_CRASH)
    with pytest.raises(ValueError):
        ChaosFault(index=0, kind=CHAOS_HANG, hang_s=0.0)
    with pytest.raises(ValueError, match="duplicate"):
        ChaosPlan(faults=(ChaosFault(index=0, kind=CHAOS_CRASH),
                          ChaosFault(index=0, kind=CHAOS_HANG)))


def test_seeded_plan_is_deterministic_and_namespaced():
    plan_a = ChaosPlan.seeded("faults:web:ge:0.2", 30, fault_rate=0.4)
    plan_b = ChaosPlan.seeded("faults:web:ge:0.2", 30, fault_rate=0.4)
    other = ChaosPlan.seeded("faults:web:ge:0.4", 30, fault_rate=0.4)
    assert plan_a.faults == plan_b.faults
    assert plan_a.faults != other.faults
    assert plan_a.faults  # a 40% rate over 30 tasks hits something
    assert all(f.attempt == 0 for f in plan_a.faults)  # recoverable


# -- chaos invariance: the signature acceptance property --------------------

def _robust_run(executor, journal: Path):
    runner = RobustTrialRunner(trials=6, experiment="chaosprop",
                               max_attempts=2, journal_path=journal,
                               executor=executor)
    return runner.run(seeded_value)


def test_chaos_journal_is_byte_identical_to_serial(tmp_path):
    serial_journal = tmp_path / "serial.json"
    chaos_journal = tmp_path / "chaos.json"
    serial = _robust_run(SerialExecutor(), serial_journal)
    plan = ChaosPlan(faults=(
        ChaosFault(index=0, kind=CHAOS_CRASH),
        ChaosFault(index=2, kind=CHAOS_CORRUPT),
        ChaosFault(index=4, kind=CHAOS_HANG, hang_s=60.0),
    ))
    executor = ChaosExecutor(2, plan, task_timeout_s=0.4, **FAST)
    chaotic = _robust_run(executor, chaos_journal)
    assert executor.last_supervision.quarantined == []
    assert chaotic.quarantined == 0
    assert serial_journal.read_bytes() == chaos_journal.read_bytes()
    assert str(serial.summary()) == str(chaotic.summary())


@settings(max_examples=3, deadline=None)
@given(data=st.data(),
       trials=st.integers(min_value=3, max_value=6),
       workers=st.integers(min_value=2, max_value=3))
def test_random_recoverable_chaos_matches_serial(data, trials, workers):
    kinds = st.sampled_from([CHAOS_CRASH, CHAOS_CORRUPT, CHAOS_HANG])
    afflicted = data.draw(st.sets(
        st.integers(min_value=0, max_value=trials - 1), max_size=trials))
    plan = ChaosPlan(faults=tuple(
        ChaosFault(index=i, kind=data.draw(kinds, label=f"kind[{i}]"),
                   hang_s=60.0)
        for i in sorted(afflicted)
    ))
    with tempfile.TemporaryDirectory() as tmp:
        serial_journal = Path(tmp) / "serial.json"
        chaos_journal = Path(tmp) / "chaos.json"
        serial = _robust_run_n(SerialExecutor(), trials, serial_journal)
        # max_task_retries must exceed the worst collateral a single task
        # can absorb: its own planned fault plus being an innocent
        # casualty of every other cohort member's pool break.
        executor = ChaosExecutor(
            workers, plan, task_timeout_s=0.5,
            max_task_retries=len(plan.faults) + 1, **FAST)
        chaotic = _robust_run_n(executor, trials, chaos_journal)
        assert executor.last_supervision.quarantined == []
        assert serial_journal.read_bytes() == chaos_journal.read_bytes()
        assert str(serial.summary()) == str(chaotic.summary())


def _robust_run_n(executor, trials: int, journal: Path):
    runner = RobustTrialRunner(trials=trials, experiment="chaosprop",
                               max_attempts=2, journal_path=journal,
                               executor=executor)
    return runner.run(seeded_value)


# -- quarantine classification in the runner --------------------------------

def test_runner_classifies_quarantined_trials(tmp_path):
    journal = tmp_path / "quarantine.json"
    # Retries must outlast collateral: each of the poisoned trial's
    # crashes breaks the pool, and under load an innocent co-resident
    # trial can burn a retry per break.  With max_task_retries=3 the
    # poisoned trial still exhausts its attempts (the plan faults every
    # dispatch) while innocents survive the worst-case collateral.
    executor = ChaosExecutor(2, poison_plan(1, CHAOS_CRASH),
                             max_task_retries=3, **FAST)
    runner = RobustTrialRunner(trials=4, experiment="qclass",
                               journal_path=journal, executor=executor)
    report = runner.run(seeded_value)
    assert report.quarantined == 1
    assert report.completed == 3
    assert report.failure_counts() == {TRIAL_CRASH: 1}
    assert report.supervision is executor.last_supervision
    bad = next(r for r in report.records if not r.ok)
    assert bad.trial == 1
    assert "quarantined" in bad.error and "worker_crash" in bad.error
    # The journal row is an ordinary failure row: resume re-runs it.
    rows = json.loads(journal.read_text())["records"]
    assert [r["status"] for r in rows] == ["ok", TRIAL_CRASH, "ok", "ok"]
    resumed = RobustTrialRunner(trials=4, experiment="qclass",
                                journal_path=journal,
                                executor=SerialExecutor())
    healed = resumed.run(seeded_value, resume=True)
    assert healed.resumed == 3
    assert healed.completed == 4


def test_runner_taxonomy_mapping_for_hang_and_error(tmp_path):
    hang = ChaosExecutor(2, poison_plan(0, CHAOS_HANG),
                         task_timeout_s=0.3, max_task_retries=0, **FAST)
    report = RobustTrialRunner(trials=2, experiment="qmap",
                               executor=hang).run(seeded_value)
    assert report.failure_counts() == {TRIAL_TIMEOUT: 1}
    corrupt = ChaosExecutor(2, poison_plan(0, CHAOS_CORRUPT),
                            max_task_retries=0, **FAST)
    report = RobustTrialRunner(trials=2, experiment="qmap",
                               executor=corrupt).run(seeded_value)
    assert report.failure_counts() == {TRIAL_ERROR: 1}


# -- signal handling --------------------------------------------------------

def test_signal_handlers_are_restored_after_a_run():
    before = (signal.getsignal(signal.SIGINT),
              signal.getsignal(signal.SIGTERM))
    SupervisedExecutor(2, **FAST).map(square, list(range(4)))
    after = (signal.getsignal(signal.SIGINT),
             signal.getsignal(signal.SIGTERM))
    assert before == after


def test_drain_signals_false_leaves_handlers_untouched():
    sentinel = []

    def handler(signum, frame):  # pragma: no cover - never invoked
        sentinel.append(signum)

    previous = signal.signal(signal.SIGTERM, handler)  # simlint: disable=PAR602 -- asserting the opt-out leaves foreign handlers alone
    try:
        executor = SupervisedExecutor(2, drain_signals=False, **FAST)
        executor.map(square, list(range(4)))
        assert signal.getsignal(signal.SIGTERM) is handler
    finally:
        signal.signal(signal.SIGTERM, previous)  # simlint: disable=PAR602 -- test cleanup restoring the original handler


_SIGINT_DRIVER = """
import json, os, signal, sys, time
sys.path.insert(0, {src!r})
from repro.core.experiments import RobustTrialRunner
from repro.parallel import SupervisedExecutor

def slow_seeded(seed):
    time.sleep(0.15)
    from repro.core.background import make_rng
    return make_rng(seed).uniform(1.0, 2.0)

def main():
    journal = sys.argv[1]
    runner = RobustTrialRunner(trials=10, experiment="sigdrain",
                               journal_path=journal,
                               executor=SupervisedExecutor(
                                   2, poll_interval_s=0.02))
    # Deliver SIGINT to ourselves once the run is mid-flight.
    pid = os.fork()
    if pid == 0:
        time.sleep(0.6)
        os.kill(os.getppid(), signal.SIGINT)
        os._exit(0)
    try:
        runner.run(slow_seeded)
    except KeyboardInterrupt:
        os.waitpid(pid, 0)
        sys.exit(130)
    os.waitpid(pid, 0)
    sys.exit(0)

main()
"""


def test_sigint_drains_journal_and_resume_converges(tmp_path):
    src = str(Path(__file__).resolve().parent.parent / "src")
    journal = tmp_path / "sigdrain.json"
    proc = subprocess.run(
        [sys.executable, "-c", _SIGINT_DRIVER.format(src=src),
         str(journal)],
        timeout=120, capture_output=True, text=True,
    )
    if proc.returncode == 0:
        pytest.skip("run finished before the signal landed (slow host)")
    assert proc.returncode == 130, proc.stderr
    # The drain flushed a valid journal with partial progress.
    payload = json.loads(journal.read_text())
    done_before = len(payload["records"])
    assert 0 < done_before < 10
    # Resume completes the sweep and converges to the serial journal.
    from repro.parallel import SerialExecutor as _Serial

    resumed = RobustTrialRunner(trials=10, experiment="sigdrain",
                                journal_path=journal,
                                executor=_Serial())
    report = resumed.run(_slow_seeded, resume=True)
    assert report.resumed == done_before
    assert report.completed == 10
    reference = tmp_path / "reference.json"
    RobustTrialRunner(trials=10, experiment="sigdrain",
                      journal_path=reference,
                      executor=_Serial()).run(_slow_seeded)
    assert journal.read_bytes() == reference.read_bytes()


def _slow_seeded(seed: int) -> float:
    # Mirror of the subprocess driver's trial fn (sans sleep: resume
    # correctness only needs value equality, which depends on seed alone).
    return make_rng(seed).uniform(1.0, 2.0)
