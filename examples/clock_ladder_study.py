#!/usr/bin/env python3
"""Figs 3a/4a/5a condensed: one DVFS ladder, three applications.

Pins the Nexus4 at each operating point and measures all three apps,
showing the paper's core asymmetry in a single table: Web PLT scales
almost inversely with the clock, streaming only pays at start-up, and
telephony degrades linearly (packet processing + no prefetch).

Run:  python examples/clock_ladder_study.py
"""

from repro.analysis import render_table
from repro.core.studies import (
    RtcStudy,
    RtcStudyConfig,
    VideoStudy,
    VideoStudyConfig,
    WebStudy,
    WebStudyConfig,
)
from repro.device import NEXUS4_LADDER
from repro.rtc import CallConfig
from repro.video import VideoSpec


def main() -> None:
    ladder = NEXUS4_LADDER[::3] + (NEXUS4_LADDER[-1],)
    web = WebStudy(WebStudyConfig(n_pages=4, trials=1))
    video = VideoStudy(VideoStudyConfig(clip=VideoSpec(duration_s=45),
                                        trials=1))
    rtc = RtcStudy(RtcStudyConfig(call=CallConfig(call_duration_s=8),
                                  trials=1))

    web_points = {p.clock_mhz: p for p in web.plt_vs_clock(ladder=ladder)}
    video_points = {p.label: p for p in video.vs_clock(ladder=ladder)}
    rtc_points = {p.label: p for p in rtc.vs_clock(ladder=ladder)}

    rows = []
    for mhz in ladder:
        rows.append([
            mhz,
            f"{web_points[mhz].plt.mean:5.2f}",
            f"{web_points[mhz].network_time.mean:4.2f}",
            f"{video_points[mhz].startup.mean:4.2f}",
            f"{video_points[mhz].stall_ratio.mean:5.3f}",
            f"{rtc_points[mhz].setup_delay.mean:5.1f}",
            f"{rtc_points[mhz].frame_rate.mean:4.1f}",
        ])
    print(render_table(
        ["MHz", "PLT (s)", "CP net (s)", "Startup (s)", "Stall",
         "Setup (s)", "fps"],
        rows,
    ))
    low, high = ladder[0], ladder[-1]
    print(f"\nPLT ratio {low}->{high} MHz: "
          f"{web_points[low].plt.mean / web_points[high].plt.mean:.1f}x "
          f"(paper: ~4x)")
    print(f"Stall ratio stays ~0 across the ladder "
          f"(max {max(p.stall_ratio.mean for p in video_points.values()):.3f})")
    print(f"Call setup swing: "
          f"{rtc_points[low].setup_delay.mean - rtc_points[high].setup_delay.mean:.1f} s "
          f"(paper: ~18 s)")


if __name__ == "__main__":
    main()
