"""Text and JSON renderers for lint reports.

The JSON shape is versioned and documented in ``docs/lint-rules.md``; CI
and editor integrations parse it, so additive changes only.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintReport


def render_text(report: LintReport) -> str:
    """Human-readable ``path:line:col: RULE severity message`` lines."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.severity}] {f.message}"
        for f in report.findings
    ]
    summary = report.by_severity()
    baselined = (f", {report.baselined} baselined" if report.baselined
                 else "")
    lines.append(
        f"checked {report.files_checked} file(s): "
        f"{len(report.findings)} finding(s) "
        f"({summary['error']} error, {summary['warning']} warning, "
        f"{summary['info']} info), {report.suppressed} suppressed"
        f"{baselined}"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Stable machine-readable rendering (schema version 1)."""
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)


__all__ = ["render_json", "render_text"]
