"""Perf-trajectory store: append/history, budget checks, and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs.perfstore import (
    DEFAULT_TOLERANCE,
    PERFSTORE_VERSION,
    PerfEntry,
    PerfStore,
    default_store_path,
    main as perf_main,
)


def make_store(tmp_path, *values, name="bench.wall_s"):
    store = PerfStore(tmp_path / "BENCH_obs.json")
    for value in values:
        store.append(name, value)
    return store


# -- append / history --------------------------------------------------------

def test_append_creates_versioned_file_and_keeps_order(tmp_path):
    store = make_store(tmp_path, 2.0, 1.5, 1.8)
    payload = json.loads(store.path.read_text())
    assert payload["version"] == PERFSTORE_VERSION
    assert [e.value for e in store.history("bench.wall_s")] == [2.0, 1.5,
                                                                1.8]
    assert store.series_names() == ["bench.wall_s"]
    assert store.history("unknown.series") == []


def test_append_records_unit_and_meta(tmp_path):
    store = PerfStore(tmp_path / "b.json")
    entry = store.append("lint.files_per_s", 120.0, unit="files/s",
                         meta={"cores": 4})
    assert entry == PerfEntry(value=120.0, unit="files/s",
                              meta={"cores": 4})
    assert store.history("lint.files_per_s")[0].meta == {"cores": 4}


def test_append_rejects_negative_and_leaves_no_tmp_litter(tmp_path):
    store = make_store(tmp_path, 1.0)
    with pytest.raises(ValueError, match="cannot be negative"):
        store.append("bench.wall_s", -0.1)
    assert [p.name for p in tmp_path.iterdir()] == ["BENCH_obs.json"]


def test_file_without_series_mapping_is_rejected(tmp_path):
    path = tmp_path / "not-a-store.json"
    path.write_text('{"version": 1}')
    with pytest.raises(ValueError, match="missing 'series' mapping"):
        PerfStore(path).load()


def test_store_file_has_no_timestamps(tmp_path):
    store = make_store(tmp_path, 1.25)
    payload = json.loads(store.path.read_text())
    entry = payload["series"]["bench.wall_s"][0]
    assert set(entry) == {"value", "unit", "meta"}


# -- budget checks -----------------------------------------------------------

def test_check_passes_within_tolerance_of_best_prior(tmp_path):
    store = make_store(tmp_path, 1.0, 1.4, 1.2)  # baseline = min prior = 1.0
    check = store.check("bench.wall_s", tolerance=0.25)
    assert check.ok and check.baseline == 1.0 and check.latest == 1.2
    assert "within budget" in check.message


def test_check_fails_beyond_tolerance(tmp_path):
    store = make_store(tmp_path, 1.0, 1.3)
    check = store.check("bench.wall_s", tolerance=0.25)
    assert not check.ok
    assert "REGRESSION" in check.message


def test_check_is_vacuous_with_fewer_than_two_entries(tmp_path):
    empty = PerfStore(tmp_path / "missing.json")
    assert empty.check("bench.wall_s").ok
    single = make_store(tmp_path, 3.0)
    check = single.check("bench.wall_s")
    assert check.ok and check.baseline is None
    assert "no baseline" in check.message


def test_check_all_covers_every_series(tmp_path):
    store = make_store(tmp_path, 1.0, 1.05)
    store.append("other.s", 5.0)
    verdicts = store.check_all(tolerance=DEFAULT_TOLERANCE)
    assert [c.name for c in verdicts] == ["bench.wall_s", "other.s"]
    assert all(c.ok for c in verdicts)


def test_default_store_path_honors_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_PERFSTORE", raising=False)
    assert str(default_store_path()) == "BENCH_obs.json"
    monkeypatch.setenv("REPRO_PERFSTORE", str(tmp_path / "custom.json"))
    assert default_store_path() == tmp_path / "custom.json"


# -- CLI ---------------------------------------------------------------------

def test_perf_cli_show_and_check_ok(tmp_path, capsys):
    store = make_store(tmp_path, 2.0, 1.9)
    assert perf_main(["show", str(store.path)]) == 0
    out = capsys.readouterr().out
    assert "bench.wall_s: 2 entries" in out
    assert perf_main(["check", str(store.path)]) == 0
    assert "within the 25% tolerance" in capsys.readouterr().out


def test_perf_cli_check_exits_one_on_regression(tmp_path, capsys):
    store = make_store(tmp_path, 1.0, 2.0)
    assert perf_main(["check", str(store.path)]) == 1
    out = capsys.readouterr().out
    assert "1/1 series over budget" in out
    # A wider tolerance lets the same trajectory pass.
    assert perf_main(["check", str(store.path), "--tolerance", "1.5"]) == 0


def test_perf_cli_empty_and_error_paths(tmp_path, capsys):
    empty = PerfStore(tmp_path / "none.json")
    assert perf_main(["check", str(empty.path)]) == 0
    assert "nothing to compare" in capsys.readouterr().out
    assert perf_main(["check", str(empty.path), "--tolerance", "-1"]) == 2
    assert "cannot be negative" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert perf_main(["show", str(bad)]) == 1
    assert "error:" in capsys.readouterr().err
