"""Deterministic host-level chaos: planned worker faults for testing.

PR 2 proved the *simulation* survives faults by injecting them from
seeded plans (``repro.faults``).  This module applies the identical
philosophy one layer down, to the execution host: a :class:`ChaosPlan`
decides — deterministically, from the ``derive_seed`` chain — which task
indices get hit by which host-level fault, and :class:`ChaosExecutor`
(a :class:`~repro.parallel.supervisor.SupervisedExecutor` subclass)
injects them at submit time.

Three fault kinds mirror the supervisor's quarantine taxonomy:

* :data:`CHAOS_CRASH` — the worker calls ``os._exit`` mid-task, breaking
  the process pool (exercises pool rebuild / :data:`WORKER_CRASH`);
* :data:`CHAOS_HANG` — the worker sleeps past ``task_timeout_s``
  (exercises hung-task reclamation / :data:`TASK_HANG`);
* :data:`CHAOS_CORRUPT` — the task returns a value whose pickle raises,
  so the result cannot cross back (exercises :data:`TASK_ERROR`).

Faults are planned per ``(index, attempt)`` and default to attempt 0
only, which makes every planned fault *retry-recoverable*: the re-dispatch
runs the unmodified task function, whose result is a pure function of
the item.  That is the signature acceptance property — a chaos-afflicted
run's journal is **byte-identical** to a serial run's (see
``tests/test_parallel_supervisor.py``).

Injection happens in the parent, at submit time, by wrapping the task
callable for exactly the afflicted ``(index, attempt)`` dispatch.  The
worker never needs to know which attempt it is running, and unafflicted
dispatches ship the caller's function untouched.
"""

from __future__ import annotations

import os
import pickle
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from concurrent.futures import Future, ProcessPoolExecutor

from repro.parallel.supervisor import SupervisedExecutor

#: Chaos fault kinds (host-level, injected into workers).
CHAOS_CRASH = "crash"      #: worker process exits hard mid-task
CHAOS_HANG = "hang"        #: task sleeps past the supervisor's timeout
CHAOS_CORRUPT = "corrupt"  #: task result cannot be pickled back

CHAOS_KINDS = (CHAOS_CRASH, CHAOS_HANG, CHAOS_CORRUPT)


@dataclass(frozen=True)
class ChaosFault:
    """One planned fault: hit ``index`` on dispatch attempt ``attempt``."""

    index: int
    kind: str
    attempt: int = 0
    hang_s: float = 3600.0  #: sleep length for :data:`CHAOS_HANG` faults

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos fault kind {self.kind!r} "
                f"(expected one of {CHAOS_KINDS})"
            )
        if self.index < 0:
            raise ValueError("fault index cannot be negative")
        if self.attempt < 0:
            raise ValueError("fault attempt cannot be negative")
        if self.hang_s <= 0:
            raise ValueError("hang duration must be positive")


@dataclass
class ChaosPlan:
    """Planned faults keyed by ``(index, attempt)``.

    With the default ``attempt=0`` faults, every fault is
    retry-recoverable and a supervised run converges to the fault-free
    result.  Planning a fault at every attempt of an index (via several
    :class:`ChaosFault` entries) creates a poison task for quarantine
    tests.
    """

    faults: Tuple[ChaosFault, ...] = ()
    _by_slot: Dict[Tuple[int, int], ChaosFault] = field(
        init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.faults = tuple(self.faults)
        for fault in self.faults:
            slot = (fault.index, fault.attempt)
            if slot in self._by_slot:
                raise ValueError(
                    f"duplicate chaos fault for index {fault.index} "
                    f"attempt {fault.attempt}"
                )
            self._by_slot[slot] = fault

    def fault_at(self, index: int, attempt: int) -> Optional[ChaosFault]:
        return self._by_slot.get((index, attempt))

    @property
    def has_hangs(self) -> bool:
        return any(f.kind == CHAOS_HANG for f in self.faults)

    @classmethod
    def seeded(cls, experiment: str, tasks: int, *,
               fault_rate: float = 0.25,
               hang_s: float = 3600.0,
               kinds: Tuple[str, ...] = CHAOS_KINDS) -> "ChaosPlan":
        """Derive a plan from the experiment's seed chain.

        Each task index draws from ``derive_seed(f"{experiment}#chaos",
        index)`` — the same namespacing discipline as retry reseeds
        (``exp#retryN``) — so the plan is a pure function of
        ``(experiment, tasks)``: stable across runs, hosts, and worker
        counts, and independent per index.  At most one fault per index,
        always at attempt 0 (retry-recoverable by construction).
        """
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError("fault rate must be within [0, 1]")
        if not kinds:
            raise ValueError("need at least one fault kind")
        for kind in kinds:
            if kind not in CHAOS_KINDS:
                raise ValueError(f"unknown chaos fault kind {kind!r}")
        # Function-level import: repro.core.experiments imports
        # repro.parallel at module top, so importing it back at module
        # level here would hit a partially-initialized module.
        from repro.core.experiments import derive_seed

        faults = []
        for index in range(tasks):
            rng = random.Random(derive_seed(f"{experiment}#chaos", index))
            if rng.random() < fault_rate:
                faults.append(ChaosFault(index=index,
                                         kind=rng.choice(list(kinds)),
                                         hang_s=hang_s))
        return cls(faults=tuple(faults))


class _UnpicklableResult:
    """A value that refuses to cross the process boundary.

    Returned by :data:`CHAOS_CORRUPT` faults: the worker computes it
    fine, but pickling the result back to the parent raises, which the
    pool surfaces as the future's exception — the exact shape of a real
    corrupted-result failure.
    """

    def __reduce__(self) -> Any:
        raise pickle.PicklingError("chaos: task result corrupted in transit")


@dataclass(frozen=True)
class _AfflictedTask:
    """Picklable wrapper that detonates one planned fault in the worker."""

    fn: Callable[[Any], Any]
    kind: str
    hang_s: float

    def __call__(self, item: Any) -> Any:
        if self.kind == CHAOS_CRASH:
            # A hard exit, not an exception: simulates the OOM killer /
            # a segfault, which is what breaks a ProcessPoolExecutor.
            os._exit(17)
        if self.kind == CHAOS_HANG:
            time.sleep(self.hang_s)
        if self.kind == CHAOS_CORRUPT:
            self.fn(item)  # the work happens; only the return is lost
            return _UnpicklableResult()
        return self.fn(item)


class ChaosExecutor(SupervisedExecutor):
    """A :class:`SupervisedExecutor` that injects planned host faults.

    Test harness only — never wired into ``get_executor``.  Faults fire
    at submit time for exactly the planned ``(index, attempt)`` slots;
    every other dispatch is untouched, so with a retry-recoverable plan
    the output is identical to the fault-free run.
    """

    def __init__(self, max_workers: int, plan: ChaosPlan, **kwargs: Any):
        super().__init__(max_workers, **kwargs)
        if plan.has_hangs and self.task_timeout_s is None:
            raise ValueError(
                "a chaos plan with hang faults requires task_timeout_s — "
                "without a timeout the hung worker stalls the run forever"
            )
        self.plan = plan

    def _submit(self, pool: ProcessPoolExecutor, fn: Callable[[Any], Any],
                item: Any, index: int, attempt: int) -> Future:
        fault = self.plan.fault_at(index, attempt)
        if fault is None:
            return pool.submit(fn, item)
        return pool.submit(
            _AfflictedTask(fn=fn, kind=fault.kind, hang_s=fault.hang_s), item)


__all__ = [
    "CHAOS_CORRUPT",
    "CHAOS_CRASH",
    "CHAOS_HANG",
    "CHAOS_KINDS",
    "ChaosExecutor",
    "ChaosFault",
    "ChaosPlan",
]
