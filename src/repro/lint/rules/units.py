"""Units-hygiene rule (UNIT2xx).

The codebase carries units in identifier suffixes (``plt_s``, ``rtt_ms``,
``clock_mhz``). Adding or comparing two different units of the same
dimension without an explicit conversion is almost always a silent
factor-of-1000 bug — exactly the "imperfection" class Hoque et al. found
in real measurement pipelines.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileContext, Rule

#: unit token -> dimension family. Tokens are the final ``_``-separated
#: component of an identifier (``plt_s`` -> ``s``).
_UNIT_FAMILIES = {
    "ns": "time", "us": "time", "ms": "time", "s": "time",
    "hz": "frequency", "khz": "frequency", "mhz": "frequency",
    "ghz": "frequency",
    "kb": "data", "mb": "data", "gb": "data",
    "bps": "rate", "kbps": "rate", "mbps": "rate", "gbps": "rate",
    "mw": "power", "w": "power",
    "mj": "energy", "j": "energy",
}


def _unit_of_name(name: str) -> Optional[str]:
    if "_" not in name:
        return None
    token = name.rsplit("_", 1)[1].lower()
    return token if token in _UNIT_FAMILIES else None


def _unit_of(node: ast.AST) -> Optional[str]:
    """Unit suffix carried by an expression, if statically visible.

    Multiplication/division are treated as conversions and yield no unit;
    a +/- chain propagates its operands' unit when they agree.
    """
    if isinstance(node, ast.Name):
        return _unit_of_name(node.id)
    if isinstance(node, ast.Attribute):
        return _unit_of_name(node.attr)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub)
    ):
        left, right = _unit_of(node.left), _unit_of(node.right)
        if left is not None and left == right:
            return left
    return None


def _conflict(
    left: ast.AST, right: ast.AST
) -> Optional[Tuple[str, str]]:
    lu, ru = _unit_of(left), _unit_of(right)
    if (
        lu is not None
        and ru is not None
        and lu != ru
        and _UNIT_FAMILIES[lu] == _UNIT_FAMILIES[ru]
    ):
        return lu, ru
    return None


class MixedUnitArithmeticRule(Rule):
    """UNIT201: +/-/comparison across different units of one dimension."""

    id = "UNIT201"
    severity = Severity.WARNING
    title = "arithmetic mixes unit suffixes without conversion"
    rationale = (
        "rtt_ms + timeout_s compiles and runs, and the result is wrong by "
        "1000x; the linter demands an explicit conversion (multiplication "
        "or division) between unit families before +, - or comparison."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                pairs = [(node.left, node.right)]
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                pairs = list(zip(operands, operands[1:]))
            else:
                continue
            for left, right in pairs:
                conflict = _conflict(left, right)
                if conflict:
                    yield self.finding(
                        context, node,
                        f"mixing _{conflict[0]} and _{conflict[1]} "
                        f"({_UNIT_FAMILIES[conflict[0]]}) without an "
                        f"explicit conversion",
                    )


__all__ = ["MixedUnitArithmeticRule"]
