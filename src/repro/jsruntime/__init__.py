"""JavaScript workload model.

The paper drills into Chrome's scripting time and finds that on
script-heavy pages a significant share is regular-expression evaluation
(URL matching, list filtering).  This package models scripts at the
granularity that analysis needs:

* a :class:`~repro.jsruntime.model.Script` is a list of
  :class:`~repro.jsruntime.model.JsFunction`\\ s;
* each function carries *generic* interpreter work (reference ops) plus
  :class:`~repro.jsruntime.model.RegexCall`\\ s whose costs come from
  genuinely executing the pattern on the subject through
  :mod:`repro.regexlib` (see :class:`~repro.jsruntime.profile.RegexProfiler`);
* :class:`~repro.jsruntime.model.CpuCostModel` converts engine operations
  into reference CPU ops (interpreter loops are far more expensive per
  engine op than a warm DFA scan).

The DSP offload study re-prices the same recorded calls with the DSP cost
model — no re-execution, identical workload.
"""

from repro.jsruntime.model import (
    CpuCostModel,
    JsFunction,
    RegexCall,
    Script,
)
from repro.jsruntime.profile import RegexProfiler

__all__ = [
    "CpuCostModel",
    "JsFunction",
    "RegexCall",
    "RegexProfiler",
    "Script",
]
