"""Unified run reports: journal + metrics + runlog in one document.

``python -m repro report <path>`` takes a trial journal, a runlog, or a
journal *directory* (the ``--journal DIR`` layout: one ``<experiment>.json``
per sweep point plus ``run.jsonl``) and renders everything known about
the run as one self-contained text or HTML document:

* per-trial tables (status, attempts, value, steps, error) per journal;
* a failure-taxonomy breakdown (crash / timeout / deadlock / error);
* top-k slowest trials — by host wall time when a runlog is present,
  by kernel step count otherwise;
* the cross-trial merged metric snapshot
  (:func:`repro.obs.merge_snapshots` semantics, histograms rendered with
  bucket-derived p50/p95);
* the supervision timeline recovered from the runlog's host events
  (retries, pool rebuilds, hang reclamations, quarantines, drains).

Version tolerance: journals of every ``JOURNAL_VERSION`` (1–3) load —
missing fields default, and a file without a ``version`` key is treated
as v1.  Rows are handled as plain dicts on purpose: the report must be
able to read journals written by *older* code than itself, so it depends
on the file schema, not on :class:`repro.core.experiments.TrialRecord`.

The HTML renderer emits a single file with inline CSS and no external
references, so a CI artifact opens anywhere.
"""

from __future__ import annotations

import argparse
import html as html_escape
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.export import format_histogram
from repro.obs.metrics import merge_snapshots
from repro.obs.runlog import RUNLOG_NAME, Event, read_runlog

#: Host events worth a timeline row (dispatch/complete are summarized).
_TIMELINE_EVENTS = ("task_retry", "pool_rebuild", "hang_reclaim",
                    "quarantine", "signal_drain")


@dataclass
class JournalView:
    """One journal file, normalized across schema versions."""

    path: Path
    version: int
    experiment: str
    trials: int
    records: List[Dict[str, Any]]

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.get("status") == "ok")

    @property
    def failures(self) -> int:
        return len(self.records) - self.completed

    def taxonomy(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            status = str(record.get("status", "?"))
            if status != "ok":
                counts[status] = counts.get(status, 0) + 1
        return {k: counts[k] for k in sorted(counts)}

    def merged_metrics(self) -> Dict[str, Any]:
        snapshots = [r["metrics"] for r in self.records if r.get("metrics")]
        return merge_snapshots(snapshots)


@dataclass
class ReportData:
    """Everything the renderers need about one run."""

    journals: List[JournalView] = field(default_factory=list)
    events: List[Event] = field(default_factory=list)
    runlog_path: Optional[Path] = None

    def taxonomy(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for journal in self.journals:
            for status, n in journal.taxonomy().items():
                counts[status] = counts.get(status, 0) + n
        return {k: counts[k] for k in sorted(counts)}


def _normalize_journal(path: Path, raw: Dict[str, Any]) -> JournalView:
    records = [dict(r) for r in raw.get("records", [])]
    records.sort(key=lambda r: int(r.get("trial", 0)))
    trials = raw.get("trials")
    return JournalView(
        path=path,
        version=int(raw.get("version", 1)),
        experiment=str(raw.get("experiment", path.stem)),
        trials=int(trials) if trials is not None else len(records),
        records=records,
    )


def _load_journal(path: Path, strict: bool) -> Optional[JournalView]:
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        if strict:
            raise ValueError(f"unreadable journal {path}: {error}")
        return None
    if not isinstance(raw, dict) or "records" not in raw:
        if strict:
            raise ValueError(
                f"{path} is not a trial journal (no 'records' array)"
            )
        return None
    return _normalize_journal(path, raw)


def load_report_data(path: Union[str, Path]) -> ReportData:
    """Resolve a journal / runlog / directory path into report inputs."""
    target = Path(path)
    if not target.exists():
        raise FileNotFoundError(f"no such journal or runlog: {target}")
    data = ReportData()
    if target.is_dir():
        directory = target
        journal_paths = sorted(p for p in directory.glob("*.json"))
        strict = False
    elif target.suffix == ".jsonl":
        directory = target.parent
        journal_paths = sorted(p for p in directory.glob("*.json"))
        strict = False
        data.runlog_path = target
    else:
        directory = target.parent
        journal_paths = [target]
        strict = True
    for journal_path in journal_paths:
        journal = _load_journal(journal_path, strict=strict)
        if journal is not None:
            data.journals.append(journal)
    if data.runlog_path is None:
        candidate = directory / RUNLOG_NAME
        if candidate.exists():
            data.runlog_path = candidate
    if data.runlog_path is not None:
        data.events = read_runlog(data.runlog_path)
    if not data.journals and not data.events:
        raise ValueError(f"{target} contains no journals and no runlog")
    return data


# -- runlog digestion --------------------------------------------------------

def host_wall_by_trial(events: Sequence[Event]) -> Dict[str, Dict[int, float]]:
    """``{experiment: {trial: wall_s}}`` from ``trial_complete`` events."""
    walls: Dict[str, Dict[int, float]] = {}
    experiment = ""
    for event in events:
        kind = event.get("event")
        if kind == "run_start":
            experiment = str(event.get("experiment", ""))
        elif kind == "trial_complete":
            wall = (event.get("host") or {}).get("wall_s")
            if wall is not None:
                walls.setdefault(experiment, {})[
                    int(event.get("trial", -1))] = float(wall)
    return walls


def supervision_timeline(events: Sequence[Event]) -> List[Tuple[str, str]]:
    """``(experiment, description)`` rows for the host events that matter."""
    timeline: List[Tuple[str, str]] = []
    experiment = ""
    for event in events:
        kind = event.get("event")
        if kind == "run_start":
            experiment = str(event.get("experiment", ""))
        elif kind in _TIMELINE_EVENTS:
            detail = ", ".join(
                f"{k}={event[k]}" for k in sorted(event)
                if k not in ("event", "host")
            )
            timeline.append((experiment, f"{kind}({detail})" if detail
                             else f"{kind}"))
    return timeline


def dispatch_counts(events: Sequence[Event]) -> Dict[str, int]:
    counts = {"task_dispatch": 0, "task_complete": 0}
    for event in events:
        kind = event.get("event")
        if kind in counts:
            counts[kind] += 1
    return counts


def cache_counts(events: Sequence[Event]) -> Dict[str, int]:
    """Result-cache traffic recorded by :mod:`repro.cache` host events."""
    counts = {"cache_hit": 0, "cache_miss": 0, "cache_store": 0}
    for event in events:
        kind = event.get("event")
        if kind in counts:
            counts[kind] += 1
    return counts


def cache_line(counts: Dict[str, int]) -> Optional[str]:
    """One-line cache summary, or None when the run never consulted one."""
    lookups = counts["cache_hit"] + counts["cache_miss"]
    if not lookups:
        return None
    ratio = counts["cache_hit"] / lookups
    return (f"{counts['cache_hit']} hits, {counts['cache_miss']} misses, "
            f"{counts['cache_store']} stores ({ratio:.0%} hit ratio)")


def _slowest(journal: JournalView,
             walls: Dict[str, Dict[int, float]],
             top_k: int) -> Tuple[str, List[Tuple[int, float]]]:
    """Top-k slowest trials: (unit, [(trial, value)]) — wall or steps."""
    by_trial = walls.get(journal.experiment, {})
    if by_trial:
        ranked = sorted(by_trial.items(), key=lambda kv: (-kv[1], kv[0]))
        return "wall_s", ranked[:top_k]
    stepped = [(int(r["trial"]), float(r["steps"])) for r in journal.records
               if r.get("steps") is not None]
    stepped.sort(key=lambda kv: (-kv[1], kv[0]))
    return "steps", stepped[:top_k]


# -- text renderer -----------------------------------------------------------

def _trial_rows(journal: JournalView) -> List[List[str]]:
    rows = []
    for record in journal.records:
        value = record.get("value")
        rows.append([
            str(record.get("trial", "?")),
            str(record.get("seed", "?")),
            str(record.get("status", "?")),
            str(record.get("attempts", 1)),
            "-" if value is None else f"{float(value):.4f}",
            "-" if record.get("steps") is None else str(record["steps"]),
            str(record.get("error", ""))[:60],
        ])
    return rows


_TRIAL_HEADERS = ["trial", "seed", "status", "attempts", "value", "steps",
                  "error"]


def render_text(data: ReportData, top_k: int = 3) -> str:
    walls = host_wall_by_trial(data.events)
    lines: List[str] = ["run report", "=========="]
    runlog = str(data.runlog_path) if data.runlog_path else "(none)"
    lines.append(f"sources: {len(data.journals)} journal(s), "
                 f"runlog: {runlog}")
    for journal in data.journals:
        lines.append("")
        lines.append(f"experiment {journal.experiment} "
                     f"(journal v{journal.version}, "
                     f"{journal.trials} trials)")
        taxonomy = journal.taxonomy()
        breakdown = (" (" + ", ".join(f"{k}={v}" for k, v in taxonomy.items())
                     + ")") if taxonomy else ""
        lines.append(f"  outcomes: {journal.completed} ok, "
                     f"{journal.failures} failed{breakdown}")
        widths = [max(len(h), *(len(r[i]) for r in _trial_rows(journal)))
                  if journal.records else len(h)
                  for i, h in enumerate(_TRIAL_HEADERS)]
        lines.append("  " + "  ".join(
            h.ljust(w) for h, w in zip(_TRIAL_HEADERS, widths)))
        for row in _trial_rows(journal):
            lines.append("  " + "  ".join(
                cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
        unit, slowest = _slowest(journal, walls, top_k)
        if slowest:
            rendered = ", ".join(
                f"trial {trial} ({value:.3f} {unit})" if unit == "wall_s"
                else f"trial {trial} ({int(value)} {unit})"
                for trial, value in slowest)
            lines.append(f"  slowest: {rendered}")
        merged = journal.merged_metrics()
        if merged:
            lines.append("  merged metrics:")
            for name in sorted(merged):
                value = merged[name]
                if isinstance(value, dict):
                    lines.append(f"    {format_histogram(name, value)}")
                else:
                    lines.append(f"    {name}: {value:g}")
    taxonomy = data.taxonomy()
    lines.append("")
    if taxonomy:
        lines.append("failure taxonomy: " + ", ".join(
            f"{k}={v}" for k, v in taxonomy.items()))
    else:
        lines.append("failure taxonomy: clean (no failed trials)")
    timeline = supervision_timeline(data.events)
    counts = dispatch_counts(data.events)
    if data.events:
        lines.append(f"supervision: {counts['task_dispatch']} dispatches, "
                     f"{counts['task_complete']} completions, "
                     f"{len(timeline)} notable events")
        for experiment, description in timeline:
            prefix = f"  [{experiment}] " if experiment else "  "
            lines.append(prefix + description)
        cached = cache_line(cache_counts(data.events))
        if cached is not None:
            lines.append(f"result cache: {cached}")
    else:
        lines.append("supervision: no runlog found "
                     "(run with --journal to record one)")
    return "\n".join(lines) + "\n"


# -- HTML renderer -----------------------------------------------------------

_CSS = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto;
       max-width: 64rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 1.6rem; }
table { border-collapse: collapse; margin: .5rem 0; width: 100%; }
th, td { border: 1px solid #d0d0d0; padding: .25rem .5rem;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f2f2f2; }
.ok { color: #166534; } .bad { color: #991b1b; font-weight: 600; }
.meta { color: #666; font-size: .85rem; }
code { background: #f5f5f5; padding: 0 .2rem; }
""".strip()


def _esc(value: Any) -> str:
    return html_escape.escape(str(value))


def escape(value: Any) -> str:
    """HTML-escape any value (public alias used by other renderers)."""
    return _esc(value)


def html_page(title: str, parts: Sequence[str]) -> str:
    """Assemble a self-contained HTML document around rendered body parts.

    One inline stylesheet, no external references — the convention every
    repro HTML artifact follows so a CI artifact opens anywhere.
    """
    head = [
        "<!DOCTYPE html>",
        "<html lang=\"en\"><head><meta charset=\"utf-8\">",
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
    ]
    return "\n".join([*head, *parts, "</body></html>"]) + "\n"


def render_html(data: ReportData, top_k: int = 3) -> str:
    walls = host_wall_by_trial(data.events)
    parts: List[str] = [
        f"<p class=\"meta\">sources: {len(data.journals)} journal(s), "
        f"runlog: {_esc(data.runlog_path) if data.runlog_path else '(none)'}"
        f"</p>",
    ]
    for journal in data.journals:
        parts.append(f"<h2>{_esc(journal.experiment)} "
                     f"<span class=\"meta\">(journal v{journal.version}, "
                     f"{journal.trials} trials)</span></h2>")
        taxonomy = journal.taxonomy()
        breakdown = (" — " + ", ".join(f"{_esc(k)}={v}"
                                       for k, v in taxonomy.items())
                     ) if taxonomy else ""
        parts.append(f"<p><span class=\"ok\">{journal.completed} ok</span>, "
                     f"<span class=\"{'bad' if journal.failures else 'ok'}\">"
                     f"{journal.failures} failed</span>{breakdown}</p>")
        parts.append("<table><tr>" + "".join(
            f"<th>{h}</th>" for h in _TRIAL_HEADERS) + "</tr>")
        for row in _trial_rows(journal):
            status_class = "ok" if row[2] == "ok" else "bad"
            cells = "".join(
                f"<td class=\"{status_class}\">{_esc(cell)}</td>"
                if i == 2 else f"<td>{_esc(cell)}</td>"
                for i, cell in enumerate(row))
            parts.append(f"<tr>{cells}</tr>")
        parts.append("</table>")
        unit, slowest = _slowest(journal, walls, top_k)
        if slowest:
            rendered = ", ".join(
                f"trial {trial} ({value:.3f} {unit})" if unit == "wall_s"
                else f"trial {trial} ({int(value)} {unit})"
                for trial, value in slowest)
            parts.append(f"<p class=\"meta\">slowest: {_esc(rendered)}</p>")
        merged = journal.merged_metrics()
        if merged:
            parts.append("<table><tr><th>metric</th><th>value</th></tr>")
            for name in sorted(merged):
                value = merged[name]
                shown = (format_histogram(name, value).split(": ", 1)[1]
                         if isinstance(value, dict) else f"{value:g}")
                parts.append(f"<tr><td><code>{_esc(name)}</code></td>"
                             f"<td>{_esc(shown)}</td></tr>")
            parts.append("</table>")
    taxonomy = data.taxonomy()
    parts.append("<h2>failure taxonomy</h2>")
    if taxonomy:
        parts.append("<p>" + ", ".join(
            f"<code>{_esc(k)}</code>={v}" for k, v in taxonomy.items())
            + "</p>")
    else:
        parts.append("<p class=\"ok\">clean — no failed trials</p>")
    parts.append("<h2>supervision timeline</h2>")
    timeline = supervision_timeline(data.events)
    if data.events:
        counts = dispatch_counts(data.events)
        parts.append(f"<p class=\"meta\">{counts['task_dispatch']} "
                     f"dispatches, {counts['task_complete']} completions, "
                     f"{len(timeline)} notable events</p>")
        if timeline:
            parts.append("<table><tr><th>experiment</th><th>event</th></tr>")
            for experiment, description in timeline:
                parts.append(f"<tr><td>{_esc(experiment)}</td>"
                             f"<td><code>{_esc(description)}</code></td></tr>")
            parts.append("</table>")
        cached = cache_line(cache_counts(data.events))
        if cached is not None:
            parts.append(f"<p class=\"meta\">result cache: "
                         f"{_esc(cached)}</p>")
    else:
        parts.append("<p class=\"meta\">no runlog found — run with "
                     "<code>--journal</code> to record one</p>")
    return html_page("repro run report", parts)


# -- CLI (python -m repro report) --------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point for ``python -m repro report``."""
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Render a unified run report from a trial journal, a "
                    "runlog (run.jsonl), or a --journal directory.",
    )
    parser.add_argument("path", help="journal file, runlog file, or "
                                     "journal directory")
    parser.add_argument("--format", choices=["text", "html"], default="text",
                        help="output format (default text)")
    parser.add_argument("--out", default=None,
                        help="write the report here instead of stdout")
    parser.add_argument("--top", type=int, default=3, metavar="K",
                        help="slowest-trial count per experiment (default 3)")
    options = parser.parse_args(argv)
    if options.top < 0:
        print(f"error: --top cannot be negative (got {options.top})",
              file=sys.stderr)
        return 2
    try:
        data = load_report_data(options.path)
        renderer = render_html if options.format == "html" else render_text
        document = renderer(data, top_k=options.top)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if options.out:
        target = Path(options.out)
        if target.parent != Path("."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(document, encoding="utf-8")
        print(f"[wrote {target}]")
    else:
        print(document, end="")
    return 0


__all__ = [
    "JournalView",
    "ReportData",
    "cache_counts",
    "cache_line",
    "dispatch_counts",
    "escape",
    "host_wall_by_trial",
    "html_page",
    "load_report_data",
    "main",
    "render_html",
    "render_text",
    "supervision_timeline",
]
