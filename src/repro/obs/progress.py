"""Live sweep progress rendered from the runlog event stream.

The renderer is a :class:`~repro.obs.runlog.RunLog` listener: the runner
and supervisor emit events, the runlog fans them out, and the renderer
folds them into one status line —

    faults:web:ge:0.2  3/5 trials · 1 failed · 2 retries · 1 quarantined
    · 2 workers · eta 12s

On a TTY the line is rewritten in place (carriage return, padded to the
previous width); on a plain stream (CI logs, pipes) a full line is
printed at most once per ``interval_s`` so logs stay readable.  Output
goes to *stderr* by default: stdout carries figure tables whose bytes
are compared across worker counts, and progress is a host-side
diagnostic, not a result.

The ETA divides the remaining trial count by the observed completion
rate of this run (resumed trials are excluded from the rate).  It is a
host-side estimate and never feeds back into any result.
"""

from __future__ import annotations

import shutil
import sys
import time
from typing import Any, Callable, Dict, Optional, TextIO


def _terminal_columns() -> int:
    return shutil.get_terminal_size().columns


def _fmt_eta(seconds: float) -> str:
    if seconds < 0 or seconds != seconds:  # negative or NaN
        return "?"
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


class ProgressRenderer:
    """Folds runlog events into a single live status line.

    ``clock`` is injectable for tests; the default reads the host's
    monotonic clock — progress is a host-side display, so this is one of
    the few sanctioned wall-clock reads outside the runner's watchdogs.
    ``width`` is likewise injectable; the default asks the terminal.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 interval_s: float = 1.0,
                 clock: Optional[Callable[[], float]] = None,
                 width: Optional[Callable[[], int]] = None):
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self._clock = clock if clock is not None else time.monotonic
        self._width = width if width is not None else _terminal_columns
        self._isatty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._last_width = 0
        self._last_render = float("-inf")
        self._reset("", 0)

    def _reset(self, experiment: str, total: int) -> None:
        self.experiment = experiment
        self.total = total
        self.done = 0
        self.failed = 0
        self.retries = 0
        self.quarantined = 0
        self.rebuilds = 0
        self.cached = 0
        self.workers = 1
        self._fresh_done = 0  #: completions observed live (ETA basis)
        self._started = self._clock()

    # -- event folding -----------------------------------------------------

    def handle(self, event: Dict[str, Any]) -> None:
        """RunLog listener entry point: fold one event, maybe render."""
        kind = event.get("event")
        if kind == "run_start":
            self._reset(str(event.get("experiment", "")),
                        int(event.get("trials", 0)))
            self.done = int(event.get("resumed", 0))
            config = event.get("config") or {}
            self.workers = int(config.get("jobs", 1) or 1)
            self._render(force=not self._isatty)
        elif kind == "trial_complete":
            self.done += 1
            self._fresh_done += 1
            if event.get("status") != "ok":
                self.failed += 1
            self._render()
        elif kind == "task_retry":
            self.retries += 1
            self._render()
        elif kind == "quarantine":
            self.quarantined += 1
            self._render()
        elif kind == "pool_rebuild":
            self.rebuilds += 1
            self._render()
        elif kind == "cache_hit":
            self.cached += 1
            self._render()
        elif kind == "run_end":
            self._render(force=True)
            self.finish()

    # -- rendering ---------------------------------------------------------

    def _eta_s(self) -> Optional[float]:
        if self._fresh_done <= 0 or self.total <= 0:
            return None
        elapsed = self._clock() - self._started
        if elapsed <= 0:
            return None
        rate = self._fresh_done / elapsed
        return max(self.total - self.done, 0) / rate if rate > 0 else None

    def status_line(self) -> str:
        parts = [f"{self.experiment}  {self.done}/{self.total} trials"]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        if self.rebuilds:
            parts.append(f"{self.rebuilds} pool rebuilds")
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.workers > 1:
            parts.append(f"{self.workers} workers")
        eta = self._eta_s()
        if eta is not None and self.done < self.total:
            parts.append(f"eta {_fmt_eta(eta)}")
        return " · ".join(parts)

    def _render(self, force: bool = False) -> None:
        now = self._clock()
        if not force and not self._isatty:
            if now - self._last_render < self.interval_s:
                return
        self._last_render = now
        line = self.status_line()
        if self._isatty:
            # Clamp to the terminal: a line longer than the row wraps,
            # and the next \r then rewrites only the wrapped tail,
            # leaving corrupted fragments of the previous render behind.
            columns = max(int(self._width()), 2)
            if len(line) > columns - 1:
                line = line[: columns - 1]
            padded = line.ljust(min(self._last_width, columns - 1))
            self._last_width = len(line)
            self.stream.write("\r" + padded)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def finish(self) -> None:
        """Terminate the rewritten line so later output starts clean."""
        if self._isatty and self._last_width:
            self.stream.write("\n")
            self.stream.flush()
            self._last_width = 0


__all__ = ["ProgressRenderer"]
