"""Observability rules (OBS5xx).

Tracing is only trustworthy when spans are balanced: an exception between
a raw ``begin_span`` and its ``end_span`` leaves a half-open span that
either vanishes from the export or reports a bogus duration.  The
context-manager API (``with tracer.span(...)``) closes the span on every
exit path and annotates it with the exception type, so raw pairs are
flagged everywhere outside the tracer's own implementation.

The run-level event log has the same single-writer discipline: the
``run.jsonl`` schema (versioning, canonical serialization, the
host-field determinism contract) lives in :mod:`repro.obs.runlog`, and a
hand-rolled write would bypass all of it.  OBS502 flags write-shaped
calls targeting a ``run.jsonl`` path anywhere outside that module.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileContext, Rule, call_name

_RAW_PAIR = frozenset({"begin_span", "end_span"})


class RawSpanPairRule(Rule):
    """OBS501: raw begin_span/end_span outside the context-manager API."""

    id = "OBS501"
    severity = Severity.WARNING
    title = "raw begin_span/end_span instead of the span() context manager"
    rationale = (
        "A raw begin_span/end_span pair is not exception-safe: any raise "
        "between the two leaves a dangling open span, so the exported trace "
        "silently drops it or reports a wrong duration. `with "
        "tracer.span(name, cat):` closes the span on every exit path and "
        "records the exception type in the span args."
    )

    def applies_to(self, context: FileContext) -> bool:
        # The tracer implements the pairing; everyone else must use span().
        return "/obs/" not in context.norm_path

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            tail = name.rsplit(".", 1)[-1]
            if tail not in _RAW_PAIR:
                continue
            yield self.finding(
                context, node,
                f"raw {tail}() call; use `with tracer.span(name, cat):` so "
                f"the span is closed on every exit path",
            )


_RUNLOG_NAME = "run.jsonl"
_WRITE_METHODS = frozenset({"write_text", "write_bytes"})
_MODE_CHARS = frozenset("rwaxbt+U")
_WRITING_MODE_CHARS = frozenset("wax+")


def _mentions_runlog(node: ast.Call) -> bool:
    return any(
        isinstance(sub, ast.Constant) and isinstance(sub.value, str)
        and _RUNLOG_NAME in sub.value
        for sub in ast.walk(node)
    )


def _is_writing_mode(value: object) -> bool:
    return (isinstance(value, str) and value != ""
            and set(value) <= _MODE_CHARS
            and bool(set(value) & _WRITING_MODE_CHARS))


def _opens_for_write(node: ast.Call) -> bool:
    """Does this ``open``/``Path.open`` call use a writing mode?

    The mode is the string literal among the direct arguments that looks
    like a mode spec (``"a"``, ``"wb"``, ``"r+"``, ...); with no mode
    argument the default ``"r"`` applies and the call only reads.
    """
    candidates = list(node.args) + [
        kw.value for kw in node.keywords if kw.arg == "mode"
    ]
    return any(
        isinstance(arg, ast.Constant) and _is_writing_mode(arg.value)
        for arg in candidates
    )


class RunlogDirectWriteRule(Rule):
    """OBS502: direct run.jsonl write outside repro.obs.runlog."""

    id = "OBS502"
    severity = Severity.WARNING
    title = "direct run.jsonl write bypassing repro.obs.runlog"
    rationale = (
        "repro.obs.runlog.RunLog is the only sanctioned writer of "
        "run.jsonl: it owns the schema version, the canonical sorted-key "
        "serialization, and the host-field determinism contract. A direct "
        "write_text/write_bytes/open(..., 'w'/'a') against a run.jsonl "
        "path produces lines the report and progress consumers cannot "
        "trust. Emit through a RunLog instead."
    )

    def applies_to(self, context: FileContext) -> bool:
        # The runlog module implements the format; everyone else emits.
        return "/obs/runlog" not in context.norm_path

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            # call_name() gives up on computed receivers like
            # ``(out / "run.jsonl").write_text`` — take the attribute
            # name straight off the func node instead.
            if isinstance(node.func, ast.Attribute):
                tail = node.func.attr
            else:
                name = call_name(node)
                if name is None:
                    continue
                tail = name.rsplit(".", 1)[-1]
            is_write = tail in _WRITE_METHODS or (
                tail == "open" and _opens_for_write(node)
            )
            if not is_write or not _mentions_runlog(node):
                continue
            yield self.finding(
                context, node,
                f"direct {tail}() on a {_RUNLOG_NAME} path; emit through "
                f"repro.obs.runlog.RunLog so the schema and determinism "
                f"contract hold",
            )


__all__ = ["RawSpanPairRule", "RunlogDirectWriteRule"]
