"""Whole-project lint wall time: ``--project`` must stay cheap enough for CI.

The DF7xx dataflow pass parses every file once, builds the project model,
and iterates function summaries to a fixed point — all of which scales
with repository size.  This benchmark lints the real ``src/``, ``tests/``,
and ``benchmarks/`` trees, prints the wall-time breakdown, and enforces a
generous ceiling so a quadratic regression in the model or the engine
shows up as a failed benchmark rather than a stalled CI job.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.lint import run_project_lint, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent
TARGETS = [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]

#: Generous CI ceiling — the full pass runs in a few seconds locally.
WALL_CEILING_S = 60.0


def test_project_lint_wall_time(fig_printer, perf_track):
    start = time.perf_counter()  # simlint: disable=DET001
    file_report = run_lint(TARGETS, root=REPO_ROOT)
    file_only_s = time.perf_counter() - start  # simlint: disable=DET001

    start = time.perf_counter()  # simlint: disable=DET001
    report = run_project_lint(TARGETS, root=REPO_ROOT)
    project_s = time.perf_counter() - start  # simlint: disable=DET001

    assert report.files_checked == file_report.files_checked
    assert report.findings == [], [str(f) for f in report.findings]
    perf_track("lint.project_wall_s", project_s,
               files=report.files_checked)

    rows = [
        f"{'mode':<24}{'files':>8}{'wall s':>10}",
        f"{'file rules only':<24}{file_report.files_checked:>8}"
        f"{file_only_s:>10.2f}",
        f"{'--project (DF7xx)':<24}{report.files_checked:>8}"
        f"{project_s:>10.2f}",
        f"{'dataflow overhead':<24}{'':>8}"
        f"{project_s - file_only_s:>10.2f}",
    ]
    fig_printer("whole-project lint wall time", "\n".join(rows))

    assert project_s < WALL_CEILING_S, (
        f"--project lint took {project_s:.1f}s over "
        f"{report.files_checked} files (ceiling {WALL_CEILING_S:.0f}s)"
    )
