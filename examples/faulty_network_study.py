#!/usr/bin/env python3
"""Fault injection walkthrough: degrade the testbed, survive the damage.

Three escalating demos of ``repro.faults`` + ``RobustTrialRunner``:

1. one faulted page load, with the replayable fault trace it produced;
2. a web-PLT sweep over Gilbert–Elliott burst loss on a congested link;
3. the same sweep with injected crashes — the summary degrades
   gracefully (``[N failed]``) instead of losing the study.

Run:  python examples/faulty_network_study.py
"""

from repro.analysis import render_table
from repro.core.studies import FaultStudy, FaultStudyConfig
from repro.device import NEXUS4
from repro.faults import BurstLossSpec, FaultPlan, ThermalThrottleSpec
from repro.video import VideoSpec


def main() -> None:
    config = FaultStudyConfig(n_pages=2, trials=3,
                              clip=VideoSpec(duration_s=20.0))
    study = FaultStudy(config)

    # -- 1. one faulted load and its trace --------------------------------
    plan = FaultPlan((
        BurstLossSpec(p_bad=0.4, mean_good_s=2.0, mean_bad_s=1.0),
        ThermalThrottleSpec(schedule=((1.0, 0.5),)),
    ))
    print(f"Plan: {plan.describe()}")
    plt = study.load_page_with_faults(NEXUS4, study.corpus[0], plan,
                                      seed=1234, governor="OD")
    print(f"One faulted page load on Nexus4: PLT = {plt:.2f} s")
    print("Same seed replays bit-identically:",
          study.load_page_with_faults(NEXUS4, study.corpus[0], plan,
                                      seed=1234, governor="OD") == plt)

    # -- 2. PLT vs burst loss ---------------------------------------------
    print("\nWeb PLT vs GE burst loss (3 Mbps congested link):\n")
    points = study.plt_vs_burst_loss(p_bads=(0.0, 0.3, 0.6))
    print(render_table(
        ["condition", "PLT (s)", "std", "n", "failed"],
        [[p.label, f"{p.metric.mean:.2f}", f"{p.metric.stdev:.2f}",
          p.metric.n, p.metric.failures] for p in points],
    ))

    # -- 3. graceful degradation under injected crashes -------------------
    crashy = FaultStudy(FaultStudyConfig(
        n_pages=2, trials=6, clip=VideoSpec(duration_s=20.0),
        crash_probability=0.5, max_attempts=1,
    ))
    print("\nSame sweep point with a 50% injected crash rate per trial:\n")
    (point,) = crashy.plt_vs_burst_loss(p_bads=(0.3,))
    print(f"  {point.label}: {point.metric}")
    print(f"  failure taxonomy: {point.report.failure_counts()}")
    print("\nThe figure renders from the trials that succeeded; the "
          "losses stay visible.")


if __name__ == "__main__":
    main()
