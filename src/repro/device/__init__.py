"""Device model: CPU, DVFS governors, memory, accelerators, energy.

:class:`Device` is the runtime facade applications talk to.  It binds a
static :class:`~repro.device.catalog.DeviceSpec` to a simulation
environment and exposes the paper's four experimental knobs:

* ``pinned_mhz`` — fix the CPU clock (the paper's ADB clock pinning),
* ``memory_gb`` — override installed RAM (the paper's RAM-disk trick),
* ``online_cores`` — hot-unplug cores,
* ``governor`` — choose the frequency governor (PF/IN/US/OD/PW).
"""

from __future__ import annotations

from typing import Optional

from repro.device.accelerators import AcceleratorSet, DspSpec, HardwareCodec
from repro.device.catalog import (
    NEXUS4,
    NEXUS4_LADDER,
    PIXEL2,
    PIXEL2_BIG_LADDER,
    TABLE1_DEVICES,
    DeviceSpec,
    by_name,
)
from repro.device.cpu import CPU, ClusterSpec, CpuTask, DEFAULT_QUANTUM
from repro.device.energy import DspPowerSpec, EnergyMeter, PowerSpec
from repro.device.governors import GOVERNOR_CODES, Governor, make_governor
from repro.device.memory import MemoryModel, MemorySpec
from repro.obs import metrics_of, tracer_of
from repro.sim import Environment


def _os_reservation(os_version: str) -> float:
    """RAM the OS and its daemons keep for themselves, by Android era.

    Gingerbread-era builds ran in ~120 MB; the system share grew with
    every major release and plateaus around 300 MB for Lollipop and
    later (the Table 1 phones).
    """
    try:
        major = float(os_version.split(".")[0])
    except (ValueError, IndexError):
        major = 5.0
    if major < 4:
        return 0.12
    if major < 5:
        return 0.18
    return 0.30


class Device:
    """A phone bound to a simulation environment.

    All compute in the reproduction flows through :meth:`run` /
    :meth:`submit`; the device applies memory pressure, DVFS state and
    core contention, and meters energy.
    """

    def __init__(
        self,
        env: Environment,
        spec: DeviceSpec,
        governor: str = "OD",
        pinned_mhz: Optional[float] = None,
        memory_gb: Optional[float] = None,
        online_cores: Optional[int] = None,
        quantum: float = DEFAULT_QUANTUM,
    ):
        self.env = env
        self.spec = spec
        self.cpu = CPU(env, spec.clusters, quantum=quantum, online_cores=online_cores)
        self.memory = MemoryModel(
            MemorySpec(memory_gb or spec.memory_gb,
                       os_reserved_gb=_os_reservation(spec.os_version))
        )
        self.energy = EnergyMeter(env, self.cpu, spec.power)
        self.accelerators = spec.accelerators
        self.pinned_mhz = pinned_mhz
        if pinned_mhz is not None:
            # ADB clock pinning sets scaling_min == scaling_max == target,
            # making the governor irrelevant; model it as userspace@target.
            self.governor: Governor = make_governor(
                "US", env, self.cpu, setspeed_mhz=pinned_mhz
            )
            self.governor_code = "US"
        else:
            self.governor = make_governor(governor, env, self.cpu)
            self.governor_code = self.governor.code
        self.governor.start()
        self._working_set_gb = 0.0
        self._fault_pressure_gb = 0.0
        self._tracer = tracer_of(env)
        self._m_evictions = metrics_of(env).counter("device.mem.evictions")

    def _apply_memory_multiplier(self) -> None:
        effective = self._working_set_gb + self._fault_pressure_gb
        self.cpu.set_cycle_multiplier(self.memory.cycle_multiplier(effective))

    def set_working_set(self, working_set_gb: float) -> None:
        """Declare the running workload's memory working set.

        Converts memory pressure into a compute-cycle multiplier applied to
        every task submitted afterwards.
        """
        self._working_set_gb = working_set_gb
        self._apply_memory_multiplier()

    def set_fault_pressure(self, pressure_gb: float) -> None:
        """Overlay extra memory pressure from a fault injector.

        Models competing-app allocations and low-memory-killer evictions:
        ``pressure_gb`` is added to the workload's declared working set when
        computing the compute-cycle multiplier.  Setting 0 clears the fault.
        """
        if pressure_gb < 0:
            raise ValueError("fault pressure must be non-negative")
        self._fault_pressure_gb = pressure_gb
        self._apply_memory_multiplier()
        if pressure_gb > 0:
            self._m_evictions.inc()
        self._tracer.instant("device.mem.pressure", "device",
                             args={"pressure_gb": float(pressure_gb)})

    @property
    def fault_pressure_gb(self) -> float:
        """Extra working-set GB currently injected by memory faults."""
        return self._fault_pressure_gb

    @property
    def memory_pressure_multiplier(self) -> float:
        """Current compute-cycle inflation from memory pressure."""
        return self.memory.cycle_multiplier(
            self._working_set_gb + self._fault_pressure_gb
        )

    def submit(self, cycles: float, mem_stall: float = 0.0) -> CpuTask:
        """Schedule ``cycles`` of CPU work; returns a task handle."""
        return self.cpu.submit(cycles, mem_stall)

    def run(self, cycles: float, mem_stall: float = 0.0):
        """Generator form of :meth:`submit` for use inside processes."""
        return self.cpu.run(cycles, mem_stall)

    @property
    def current_rate_hz(self) -> float:
        """Instruction rate of the fastest online cluster right now."""
        return max(
            cluster.rate_hz
            for cluster in self.cpu.clusters
            if cluster.online_cores > 0
        )


__all__ = [
    "AcceleratorSet",
    "CPU",
    "ClusterSpec",
    "Device",
    "DeviceSpec",
    "DspPowerSpec",
    "DspSpec",
    "EnergyMeter",
    "GOVERNOR_CODES",
    "Governor",
    "HardwareCodec",
    "MemoryModel",
    "MemorySpec",
    "NEXUS4",
    "NEXUS4_LADDER",
    "PIXEL2",
    "PIXEL2_BIG_LADDER",
    "PowerSpec",
    "TABLE1_DEVICES",
    "by_name",
    "make_governor",
]
