"""Fig 6 behaviour: iperf throughput vs CPU clock."""

import pytest

from repro.device import NEXUS4, PIXEL2
from repro.netstack import LinkSpec, run_iperf


def test_high_clock_reaches_link_ceiling():
    result = run_iperf(NEXUS4, clock_mhz=1512, duration_s=5.0)
    assert result.throughput_mbps == pytest.approx(48, abs=2.0)


def test_low_clock_is_cpu_bound():
    result = run_iperf(NEXUS4, clock_mhz=384, duration_s=5.0)
    assert result.throughput_mbps == pytest.approx(32, abs=2.0)


def test_throughput_monotone_in_clock():
    values = [
        run_iperf(NEXUS4, clock_mhz=mhz, duration_s=4.0).throughput_mbps
        for mhz in (384, 486, 594, 810, 1512)
    ]
    assert all(a <= b + 0.5 for a, b in zip(values, values[1:]))


def test_fast_device_always_link_limited():
    low = run_iperf(PIXEL2, clock_mhz=300, duration_s=4.0)
    # Even the Pixel2's lowest big-core clock is ~2× a Nexus4 384 MHz.
    assert low.throughput_mbps > 35


def test_link_capacity_scales_result():
    slow_link = LinkSpec(goodput_bps=10e6)
    result = run_iperf(NEXUS4, clock_mhz=1512, duration_s=4.0,
                       link_spec=slow_link)
    assert result.throughput_mbps == pytest.approx(10, abs=1.0)


def test_result_accounting():
    result = run_iperf(NEXUS4, clock_mhz=1512, duration_s=2.0)
    assert result.duration_s == 2.0
    assert result.bytes_received > 0
    assert result.throughput_bps == pytest.approx(
        result.bytes_received * 8 / 2.0
    )
