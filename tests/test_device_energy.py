"""Unit tests for power/energy accounting."""

import pytest

from repro.device import Device, NEXUS4, PIXEL2, PowerSpec
from repro.device.energy import DspPowerSpec
from repro.sim import Environment


def test_voltage_interpolation_bounds():
    power = PowerSpec(v_min=0.6, v_max=1.1)
    assert power.voltage(384, 384, 1512) == pytest.approx(0.6)
    assert power.voltage(1512, 384, 1512) == pytest.approx(1.1)
    mid = power.voltage(948, 384, 1512)
    assert 0.6 < mid < 1.1


def test_dynamic_power_grows_superlinearly_with_clock():
    power = PowerSpec()
    low = power.dynamic_power(384, 384, 1512)
    high = power.dynamic_power(1512, 384, 1512)
    # P ∝ f·V², so quadrupling f more than quadruples power.
    assert high > 4 * low


def test_idle_device_draws_only_static_power():
    env = Environment()
    device = Device(env, NEXUS4, governor="PF")
    env.run(until=10.0)
    expected = 10.0 * 4 * NEXUS4.power.static_w
    assert device.energy.energy_j == pytest.approx(expected, rel=1e-6)


def test_busy_energy_exceeds_idle_energy():
    env = Environment()
    idle = Device(env, NEXUS4, governor="PF")
    env.run(until=1.0)
    idle_j = idle.energy.energy_j

    env2 = Environment()
    busy = Device(env2, NEXUS4, governor="PF")
    busy.submit(1e9)
    env2.run(until=1.0)
    assert busy.energy.energy_j > idle_j


def test_same_work_cheaper_at_low_voltage():
    """Energy for fixed work drops at lower clock (race-to-idle inverse)."""
    joules = {}
    for mhz in (384, 1512):
        env = Environment()
        device = Device(env, NEXUS4, pinned_mhz=mhz)
        task = device.submit(1e9)
        env.run(task.done)
        # Compare dynamic energy only (same wall-clock horizon unfair).
        busy = env.now
        static = device.cpu.online_cores * NEXUS4.power.static_w * busy
        joules[mhz] = device.energy.energy_j - static
    assert joules[384] < joules[1512]


def test_power_now_reflects_busy_cores():
    env = Environment()
    device = Device(env, NEXUS4, governor="PF")
    idle_power = device.energy.power_now
    device.submit(1e12)
    env.run(until=0.1)
    assert device.energy.power_now > idle_power


def test_pixel2_scripting_power_calibration():
    """Sustained single-core work at max clock draws ≈1–1.6 W (Fig 7b)."""
    env = Environment()
    device = Device(env, PIXEL2, governor="PF")
    task = device.submit(5e9)
    env.run(task.done)
    avg_watts = device.energy.energy_j / env.now
    assert 0.8 < avg_watts < 1.8


def test_dsp_power_spec_defaults():
    spec = DspPowerSpec()
    assert spec.active_w < 0.5
    assert spec.idle_w < spec.active_w
