"""Fig 5d: telephony QoE per governor."""

from repro.analysis import render_table
from repro.core.studies import RtcStudy, RtcStudyConfig
from repro.rtc import CallConfig


def run_fig5d():
    study = RtcStudy(RtcStudyConfig(call=CallConfig(call_duration_s=10),
                                    trials=1))
    return study.vs_governor()


def test_fig5d(benchmark, fig_printer):
    points = benchmark.pedantic(run_fig5d, rounds=1, iterations=1)
    table = render_table(
        ["Governor", "Setup delay (s)", "Frame rate (fps)"],
        [[p.label, f"{p.setup_delay.mean:.1f}", f"{p.frame_rate.mean:.1f}"]
         for p in points],
    )
    fig_printer("Fig 5d: Skype vs governor (Nexus4)", table)
    by_code = {p.label: p for p in points}
    assert by_code["PW"].setup_delay.mean > 1.25 * by_code["PF"].setup_delay.mean
    assert by_code["PW"].frame_rate.mean <= by_code["PF"].frame_rate.mean + 0.5
    for code in ("IN", "OD", "US"):
        assert by_code[code].setup_delay.mean < 1.35 * by_code["PF"].setup_delay.mean
