"""Integration tests: the paper's headline results at reduced scale.

Each test runs a study end-to-end (simulation kernel → device → network →
application → analysis) and asserts the *shape* of the corresponding
paper figure.
"""

import pytest

from repro.core.studies import (
    OffloadStudy,
    OffloadStudyConfig,
    RtcStudy,
    RtcStudyConfig,
    VideoStudy,
    VideoStudyConfig,
    WebStudy,
    WebStudyConfig,
    evolution_timeline,
    throughput_vs_clock,
)
from repro.analysis.stats import median
from repro.device import NEXUS4, by_name
from repro.rtc import CallConfig
from repro.video import VideoSpec


@pytest.fixture(scope="module")
def web_study():
    return WebStudy(WebStudyConfig(n_pages=5, trials=2))


@pytest.fixture(scope="module")
def video_study():
    return VideoStudy(VideoStudyConfig(clip=VideoSpec(duration_s=60), trials=1))


@pytest.fixture(scope="module")
def rtc_study():
    return RtcStudy(RtcStudyConfig(call=CallConfig(call_duration_s=10), trials=1))


# -- Fig 2 ---------------------------------------------------------------


def test_fig2a_device_spread(web_study):
    rows = web_study.qoe_across_devices(
        [by_name("Intex Amaze+"), by_name("Google Pixel2")]
    )
    intex, pixel = rows[0][1], rows[1][1]
    assert 3.0 < intex.mean / pixel.mean < 6.0
    assert intex.stdev > pixel.stdev  # bigger error bars on the low end


def test_fig2b_video_devices(video_study):
    points = video_study.qoe_across_devices(
        [by_name("Intex Amaze+"), by_name("Google Pixel2")]
    )
    intex, pixel = points
    assert intex.startup.mean > 2 * pixel.startup.mean
    assert intex.stall_ratio.mean < 0.03
    assert pixel.stall_ratio.mean < 0.03


def test_fig2c_rtc_devices(rtc_study):
    points = rtc_study.qoe_across_devices(
        [by_name("Intex Amaze+"), by_name("Google Pixel2")]
    )
    intex, pixel = points
    assert pixel.frame_rate.mean == pytest.approx(30, abs=2)
    assert 15 < intex.frame_rate.mean < 23


# -- Fig 3 ----------------------------------------------------------------


def test_fig3a_web_clock_sweep(web_study):
    points = web_study.plt_vs_clock(ladder=(384, 810, 1512))
    plts = {p.clock_mhz: p.plt.mean for p in points}
    assert 2.5 < plts[384] / plts[1512] < 5.0
    nets = {p.clock_mhz: p.network_time.mean for p in points}
    assert nets[384] > 1.3 * nets[1512]
    shares = [p.scripting_share for p in points]
    assert all(0.35 < s < 0.75 for s in shares)
    lp = [p.layout_paint_share for p in points]
    assert all(0.01 < s < 0.10 for s in lp)


def test_fig3b_memory(web_study):
    rows = dict(web_study.plt_vs_memory(sizes_gb=(0.5, 2.0)))
    assert 1.4 < rows[0.5].mean / rows[2.0].mean < 3.0


def test_fig3c_cores(web_study):
    rows = dict(web_study.plt_vs_cores(cores=(1, 2, 4)))
    assert rows[2].mean < 1.3 * rows[4].mean  # beyond 2 cores: no gain
    assert rows[1].mean > 1.1 * rows[4].mean


def test_fig3d_governors(web_study):
    rows = dict(web_study.plt_vs_governor())
    assert rows["PW"].mean > 1.3 * rows["PF"].mean
    assert rows["OD"].mean < 1.3 * rows["PF"].mean
    assert rows["IN"].mean < 1.3 * rows["PF"].mean


def test_sec31_categories_sensitivity(web_study):
    sensitivity = web_study.category_clock_sensitivity()
    assert sensitivity["news"] > sensitivity["business"]
    assert sensitivity["sports"] > sensitivity["health"]


# -- Fig 4 / Fig 5 -----------------------------------------------------------


def test_fig4a_video_clock(video_study):
    points = video_study.vs_clock(ladder=(384, 1512))
    low, high = points[0], points[1]
    assert low.startup.mean > 1.8 * high.startup.mean
    assert low.stall_ratio.mean < 0.03  # zero stalls at low clock


def test_fig4c_video_cores(video_study):
    points = video_study.vs_cores(cores=(1, 4))
    one, four = points
    assert one.stall_ratio.mean > 0.08
    assert four.stall_ratio.mean < 0.02
    assert one.startup.mean > four.startup.mean + 2.0


def test_fig5a_rtc_clock(rtc_study):
    points = rtc_study.vs_clock(ladder=(384, 1512))
    low, high = points
    assert high.frame_rate.mean == pytest.approx(30, abs=2)
    assert 14 < low.frame_rate.mean < 22
    assert low.setup_delay.mean - high.setup_delay.mean > 10


def test_fig5c_rtc_cores(rtc_study):
    points = rtc_study.vs_cores(cores=(1, 4))
    one, four = points
    assert one.frame_rate.mean < 0.7 * four.frame_rate.mean


# -- Fig 6 / Fig 7 / Fig 1 ---------------------------------------------------


def test_fig6_throughput():
    points = throughput_vs_clock(ladder=(384, 594, 1512), duration_s=5.0)
    by_clock = {p.clock_mhz: p.throughput_mbps for p in points}
    assert by_clock[384] == pytest.approx(32, abs=3)
    assert by_clock[1512] == pytest.approx(48, abs=3)
    assert by_clock[594] >= by_clock[384]


def test_fig7a_offload_wins():
    study = OffloadStudy(OffloadStudyConfig(n_pages=3, trials=1))
    comparison = study.compare_default_governor()
    assert 0.05 < comparison.eplt_improvement < 0.30
    assert comparison.dsp_scripting.mean < comparison.cpu_scripting.mean


def test_fig7b_power_ratio():
    study = OffloadStudy(OffloadStudyConfig(n_pages=3, trials=1))
    cpu_samples, dsp_samples = study.power_distributions()
    assert cpu_samples and dsp_samples
    ratio = median(cpu_samples) / median(dsp_samples)
    assert 2.5 < ratio < 6.0


def test_fig7c_win_grows_at_low_clock():
    study = OffloadStudy(OffloadStudyConfig(n_pages=3, trials=1))
    points = study.eplt_vs_clock(clocks_mhz=(300, 883))
    low, high = points
    assert low.improvement > high.improvement
    assert 0.15 < low.improvement < 0.40


def test_fig1_plt_grows_despite_hardware():
    points = evolution_timeline(n_pages=2)
    early = sum(p.plt_s for p in points[:2]) / 2
    late = sum(p.plt_s for p in points[-2:]) / 2
    assert late > 2.0 * early
    assert points[-1].clock_ghz > 2 * points[0].clock_ghz
    assert points[-1].cores > points[0].cores
