"""Sim-kernel API misuse rules (SIM1xx).

Process generators are the contract surface of :mod:`repro.sim`: they must
yield events, never block the host thread, and never reach into kernel
state. Violations deadlock the event loop or desynchronise simulated time.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.rules import (
    FileContext,
    Rule,
    call_name,
    iter_generator_functions,
    references_env,
    walk_function_body,
)

#: Yield values that are visibly not Event instances.
_LITERAL_YIELDS = (
    ast.Constant,
    ast.JoinedStr,
    ast.List,
    ast.Tuple,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.BinOp,
    ast.UnaryOp,
    ast.Compare,
)

#: Exact call names that block the host thread or do real I/O.
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "input",
    "open",
    "os.system",
    "os.popen",
    "socket.socket",
    "socket.create_connection",
    "urllib.request.urlopen",
})

#: Any call under these module prefixes is host I/O.
_BLOCKING_PREFIXES = ("requests.", "subprocess.", "urllib.request.")

#: Kernel-private attributes only :mod:`repro.sim` itself may write.
_KERNEL_ATTRS = frozenset({"now", "_now", "_value", "_ok", "_scheduled"})


class NonEventYieldRule(Rule):
    """SIM101: process generators yield Event subclasses, nothing else."""

    id = "SIM101"
    severity = Severity.ERROR
    title = "process generator yields a non-event"
    rationale = (
        "The scheduler resumes a process only when the yielded Event fires; "
        "yielding a literal (or bare yield) makes Process._resume throw a "
        "SimulationError mid-run — at simulation time, not at import time."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for func, yields in iter_generator_functions(context.tree):
            if not references_env(func):
                continue
            for node in yields:
                if isinstance(node, ast.YieldFrom):
                    continue
                value = node.value
                if value is None:
                    yield self.finding(
                        context, node,
                        f"bare yield in process generator "
                        f"{func.name!r}; yield an Event (e.g. "
                        f"env.timeout(...))",
                    )
                elif isinstance(value, _LITERAL_YIELDS):
                    yield self.finding(
                        context, value,
                        f"process generator {func.name!r} yields a "
                        f"non-event literal; the kernel only accepts Event "
                        f"subclasses",
                    )


class BlockingCallRule(Rule):
    """SIM102: no host-blocking calls inside process generators."""

    id = "SIM102"
    severity = Severity.ERROR
    title = "blocking call inside a process generator"
    rationale = (
        "time.sleep/socket/file I/O stalls the host thread without "
        "advancing simulated time, so every other process freezes and "
        "measured latencies become wall-clock artifacts. Model delays with "
        "env.timeout and I/O with repro.netstack."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for func, _yields in iter_generator_functions(context.tree):
            if not references_env(func):
                continue
            for node in walk_function_body(func):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name is None:
                    continue
                if name in _BLOCKING_CALLS or name.startswith(
                    _BLOCKING_PREFIXES
                ):
                    yield self.finding(
                        context, node,
                        f"{name}() blocks the host thread inside process "
                        f"generator {func.name!r}; use env.timeout / the "
                        f"simulated netstack",
                    )


class KernelStateMutationRule(Rule):
    """SIM103: kernel-private state is written only by the kernel."""

    id = "SIM103"
    severity = Severity.ERROR
    title = "direct mutation of kernel state"
    rationale = (
        "env.now and Event._value/_ok/_scheduled encode the event-list "
        "contract; writing them from application code corrupts the "
        "schedule invariant that ties in time are broken deterministically. "
        "Use Event.succeed()/fail() and timeouts."
    )

    def applies_to(self, context: FileContext) -> bool:
        # The kernel package is the single writer by design.
        return "repro/sim/" not in context.norm_path

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in _KERNEL_ATTRS
                ):
                    yield self.finding(
                        context, target,
                        f"assignment to .{target.attr} mutates kernel "
                        f"state; use the Event/Environment API "
                        f"(succeed/fail/timeout) instead",
                    )


__all__ = ["BlockingCallRule", "KernelStateMutationRule", "NonEventYieldRule"]
