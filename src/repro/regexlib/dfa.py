"""Lazy DFA execution for capture-free matching.

Subset construction performed on demand: DFA states are frozensets of NFA
program counters ("kernels" — the char-consuming instructions reachable
after closure), and transitions are built the first time a (state, char)
pair is seen, then served from cache at ~1 operation per character.

This is the execution mode the DSP model vectorizes (a table-driven scan
loop with no data-dependent branching), and also the engine's fast path
for boolean ``test``/``count`` queries.

Limitations (callers fall back to the Pike VM):

* no capture groups (SAVE instructions are skipped),
* no word-boundary assertions (``\\b``/``\\B``) — their closure would need
  per-character context in the state key,
* reports only whether/where a match *ends* (boolean semantics), not the
  full leftmost-greedy span.
"""

from __future__ import annotations

from typing import Optional

from repro.regexlib.pikevm import Counter, _in_intervals
from repro.regexlib.program import (
    ANY,
    ASSERT,
    CHAR,
    JMP,
    MATCH,
    RANGE,
    SAVE,
    SPLIT,
    Program,
)


class DfaUnsupported(Exception):
    """The program cannot run on the DFA (see module docstring)."""


class LazyDfa:
    """Lazily built DFA over a compiled program.

    One instance caches states/transitions across many subjects, mirroring
    how a JS engine caches compiled regexes across calls.
    """

    def __init__(self, program: Program):
        if program.has_word_boundary:
            raise DfaUnsupported("word boundaries need positional context")
        self.program = program
        # state id -> kernel (frozenset of pcs); 0 is reserved for the dead state
        self._kernels: list[frozenset[int]] = [frozenset()]
        self._ids: dict[frozenset[int], int] = {frozenset(): 0}
        # (state id, char, sticky_start) -> state id
        self._transitions: dict[tuple[int, str, bool], int] = {}
        # closure cache: (kernel id, at_start, at_end) -> (consumers, matched)
        self._closures: dict[tuple[int, bool, bool], tuple[tuple[int, ...], bool]] = {}

    def _intern(self, kernel: frozenset[int]) -> int:
        state_id = self._ids.get(kernel)
        if state_id is None:
            state_id = len(self._kernels)
            self._ids[kernel] = state_id
            self._kernels.append(kernel)
        return state_id

    def _closure(
        self, state_id: int, at_start: bool, at_end: bool, counter: Counter
    ) -> tuple[tuple[int, ...], bool]:
        """Consuming pcs reachable from the kernel, and whether MATCH is."""
        key = (state_id, at_start, at_end)
        cached = self._closures.get(key)
        if cached is not None:
            return cached
        insts = self.program.insts
        seen: set[int] = set()
        consumers: list[int] = []
        matched = False
        stack = sorted(self._kernels[state_id], reverse=True)
        while stack:
            pc = stack.pop()
            if pc in seen:
                continue
            seen.add(pc)
            counter.ops += 1
            inst = insts[pc]
            op = inst.op
            if op == JMP:
                stack.append(inst.x)
            elif op == SPLIT:
                stack.append(inst.x)
                stack.append(inst.y)
            elif op == SAVE:
                stack.append(pc + 1)
            elif op == ASSERT:
                if inst.x == "bol" and at_start:
                    stack.append(pc + 1)
                elif inst.x == "eol" and at_end:
                    stack.append(pc + 1)
            elif op == MATCH:
                matched = True
            else:
                consumers.append(pc)
        result = (tuple(sorted(consumers)), matched)
        self._closures[key] = result
        return result

    def _step(
        self,
        state_id: int,
        char: str,
        at_start: bool,
        sticky_start: bool,
        counter: Counter,
    ) -> int:
        """Next state after consuming ``char``."""
        # at_start only ever applies at position 0, where the transition
        # cache is cold anyway; fold it into a throwaway computation.
        if not at_start:
            key = (state_id, char, sticky_start)
            nxt = self._transitions.get(key)
            if nxt is not None:
                counter.ops += 1  # warm table lookup
                return nxt
        consumers, _ = self._closure(state_id, at_start, False, counter)
        code = ord(char)
        kernel: set[int] = set()
        insts = self.program.insts
        for pc in consumers:
            counter.ops += 1
            inst = insts[pc]
            op = inst.op
            if op == CHAR:
                if char == inst.x:
                    kernel.add(pc + 1)
            elif op == RANGE:
                if _in_intervals(inst.x, code):
                    kernel.add(pc + 1)
            elif op == ANY:
                if char != "\n":
                    kernel.add(pc + 1)
        if sticky_start:
            kernel.add(0)
        nxt = self._intern(frozenset(kernel))
        if not at_start:
            self._transitions[(state_id, char, sticky_start)] = nxt
        return nxt

    def search_end(
        self, text: str, counter: Optional[Counter] = None
    ) -> Optional[int]:
        """Position right after the earliest match end, or ``None``.

        Unanchored: an implicit start thread is injected at every position
        (the "sticky start" bit folded into each state).
        """
        if counter is None:
            counter = Counter()
        state = self._intern(frozenset([0]))
        for pos, char in enumerate(text):
            at_start = pos == 0
            _, matched = self._closure(state, at_start, False, counter)
            if matched:
                return pos
            state = self._step(state, char, at_start, True, counter)
        _, matched = self._closure(state, len(text) == 0, True, counter)
        if matched:
            return len(text)
        return None

    def matches(self, text: str, counter: Optional[Counter] = None) -> bool:
        """Boolean unanchored search (the JS ``RegExp.test`` fast path)."""
        return self.search_end(text, counter) is not None


__all__ = ["DfaUnsupported", "LazyDfa"]
