"""Market composition: device tiers, network profiles, workload mix.

The default market mirrors how the paper frames the device landscape
(§1, Table 1): a *low* tier of sub-$150 phones, a *mid* tier, a *high*
tier of flagships, and a *legacy* tier synthesized from the 2011–2014
slice of the Fig 1 spec-sheet population — phones still in circulation
but no longer sold.  Shares are configurable; the defaults lean toward
the low/mid end the way global shipment data does.

Network profiles are deliberately coarse — the paper's point is that the
*device* is the bottleneck even on good networks, so three profiles
(wifi / LTE / congested 3G) span the relevant range.  The 3G profile is
the HTTP-Archive-style cellular emulation already used by Fig 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.device.catalog import (
    DeviceSpec,
    GALAXY_S2_TAB,
    GALAXY_S6_EDGE,
    GIONEE_F103,
    INTEX_AMAZE,
    NEXUS4,
    PIXEL2,
    PIXEL_C_TAB,
)
from repro.netstack import LinkSpec
from repro.workloads.history import generate_device_population

#: Session workload kinds a fleet can mix (one simulated app each).
WORKLOADS = ("web", "video", "rtc")

#: Default session mix: browsing-heavy, like mobile traffic shares.
DEFAULT_WORKLOAD_MIX: Tuple[Tuple[str, float], ...] = (
    ("web", 0.5),
    ("video", 0.3),
    ("rtc", 0.2),
)


@dataclass(frozen=True)
class DeviceTier:
    """One market segment: a name, a market share, and its device pool.

    ``share`` is a sampling weight (weights are normalized at draw time,
    so tiers need not sum to 1).  The tier name ``"all"`` is reserved
    for the aggregator's cross-tier rollup.
    """

    name: str
    share: float
    devices: Tuple[DeviceSpec, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tier name cannot be empty")
        if self.name == "all":
            raise ValueError(
                "tier name 'all' is reserved for the cross-tier rollup")
        if self.share <= 0:
            raise ValueError(
                f"tier {self.name!r} share must be positive "
                f"(got {self.share})")
        if not self.devices:
            raise ValueError(f"tier {self.name!r} needs at least one device")


@dataclass(frozen=True)
class NetworkProfile:
    """One access-network condition with its sampling weight."""

    name: str
    share: float
    link: LinkSpec

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("network profile name cannot be empty")
        if self.share <= 0:
            raise ValueError(
                f"network {self.name!r} share must be positive "
                f"(got {self.share})")


#: Default network mix: mostly good access, a congested-cellular tail.
DEFAULT_NETWORKS: Tuple[NetworkProfile, ...] = (
    NetworkProfile("wifi", 0.45, LinkSpec(goodput_bps=48.5e6, rtt_s=0.010)),
    NetworkProfile("lte", 0.35, LinkSpec(goodput_bps=12.0e6, rtt_s=0.045)),
    NetworkProfile("cell3g", 0.20, LinkSpec(goodput_bps=1.6e6, rtt_s=0.150)),
)


def legacy_tier_devices(per_year: int = 3,
                        newest_year: int = 2014) -> Tuple[DeviceSpec, ...]:
    """Synthesized legacy handsets from the Fig 1 spec-sheet population.

    Draws ``per_year`` rows per year from the seeded
    :func:`~repro.workloads.history.generate_device_population` stream and
    keeps the rows at or before ``newest_year`` — a deterministic pool of
    still-circulating old phones.
    """
    rows = [d for d in generate_device_population(per_year=per_year)
            if d.year <= newest_year]
    return tuple(row.device_spec(serial=i) for i, row in enumerate(rows))


def default_market() -> Tuple[DeviceTier, ...]:
    """The default four-tier device market."""
    return (
        DeviceTier("low", 0.30, (INTEX_AMAZE, GIONEE_F103)),
        DeviceTier("mid", 0.30, (NEXUS4, GALAXY_S2_TAB)),
        DeviceTier("high", 0.25, (PIXEL_C_TAB, GALAXY_S6_EDGE, PIXEL2)),
        DeviceTier("legacy", 0.15, legacy_tier_devices()),
    )


__all__ = [
    "DEFAULT_NETWORKS",
    "DEFAULT_WORKLOAD_MIX",
    "DeviceTier",
    "NetworkProfile",
    "WORKLOADS",
    "default_market",
    "legacy_tier_devices",
]
