"""Executor contract: serial/multiprocess equivalence and validation."""

from __future__ import annotations

import pytest

from repro.parallel import (
    Executor,
    MultiprocessExecutor,
    ParallelExecutionError,
    SerialExecutor,
    get_executor,
)


def square(x: int) -> int:
    return x * x


def explode(x: int) -> int:
    raise ValueError(f"boom on {x}")


# -- map order and equivalence ----------------------------------------------

def test_serial_map_preserves_item_order():
    assert SerialExecutor().map(square, range(8)) == [
        0, 1, 4, 9, 16, 25, 36, 49,
    ]


def test_multiprocess_map_matches_serial():
    items = list(range(20))
    serial = SerialExecutor().map(square, items)
    assert MultiprocessExecutor(max_workers=3).map(square, items) == serial


def test_run_tasks_yields_every_index_exactly_once():
    for executor in (SerialExecutor(), MultiprocessExecutor(max_workers=2)):
        indices = sorted(i for i, _ in executor.run_tasks(square, range(9)))
        assert indices == list(range(9))


def test_empty_item_list_is_fine():
    assert SerialExecutor().map(square, []) == []
    assert MultiprocessExecutor(max_workers=4).map(square, []) == []


def test_single_item_skips_the_pool():
    # One item never justifies worker spawn; the serial fallback also means
    # lambdas survive, which would be unpicklable in the pool path.
    single = MultiprocessExecutor(max_workers=4)
    assert single.map(lambda x: x + 1, [41]) == [42]  # simlint: disable=DF703


def test_task_exceptions_propagate():
    with pytest.raises(ValueError, match="boom on"):
        SerialExecutor().map(explode, [1])
    with pytest.raises(ValueError, match="boom on"):
        MultiprocessExecutor(max_workers=2).map(explode, [1, 2, 3])


# -- validation and dispatch ------------------------------------------------

def test_unpicklable_fn_is_a_parallel_execution_error():
    captured = []

    def closure(x):          # closes over `captured`: unpicklable
        captured.append(x)
        return x

    with pytest.raises(ParallelExecutionError, match="not picklable"):
        MultiprocessExecutor(max_workers=2).map(closure, [1, 2])  # simlint: disable=DF703


def test_dropped_index_is_detected():
    class LossyExecutor(Executor):
        def run_tasks(self, fn, items):
            for index, item in enumerate(items):
                if index != 1:
                    yield index, fn(item)

    with pytest.raises(ParallelExecutionError, match=r"indices \[1\]"):
        LossyExecutor().map(square, [1, 2, 3])


def test_get_executor_dispatch():
    assert isinstance(get_executor(1), SerialExecutor)
    pooled = get_executor(4)
    assert isinstance(pooled, MultiprocessExecutor)
    assert pooled.jobs == 4


def test_invalid_worker_counts_raise():
    with pytest.raises(ValueError, match="at least 1"):
        get_executor(0)
    with pytest.raises(ValueError):
        MultiprocessExecutor(max_workers=0)
