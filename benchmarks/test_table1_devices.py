"""Table 1: the device catalog."""

from repro.analysis import render_table
from repro.device import TABLE1_DEVICES


def build_table():
    rows = [
        [spec.name, spec.soc, spec.n_cores, spec.os_version,
         f"{spec.min_clock_mhz}-{spec.max_clock_mhz}", spec.gpu,
         spec.memory_gb, spec.release, f"${spec.cost_usd}"]
        for spec in TABLE1_DEVICES
    ]
    return render_table(
        ["Device", "Processor", "Cores", "OS", "Clock (MHz)", "GPU",
         "RAM (GB)", "Release", "Cost"],
        rows,
    )


def test_table1(benchmark, fig_printer):
    table = benchmark(build_table)
    fig_printer("Table 1: devices and specifications", table)
    assert "Pixel2" in table
