"""Parallel-execution rules (PAR6xx).

All process fan-out flows through :mod:`repro.parallel`: executors key
results by item index so merges are deterministic, and only the parent
process touches journals and figure files.  A raw ``ProcessPoolExecutor``
or ``os.fork`` anywhere else reintroduces exactly the bugs the executor
layer exists to prevent — completion-order-dependent output and worker
processes racing on shared files.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileContext, Rule, call_name

#: Dotted call targets that spawn worker processes directly.
_RAW_FANOUT_CALLS = frozenset({
    "os.fork",
    "os.forkpty",
    "multiprocessing.Pool",
    "multiprocessing.Process",
})

#: Last path segment of constructors that are fan-out regardless of how
#: the module was imported (``ProcessPoolExecutor`` vs
#: ``concurrent.futures.ProcessPoolExecutor``).
_RAW_FANOUT_SUFFIXES = frozenset({"ProcessPoolExecutor"})


#: Dotted call targets that register signal handlers directly.
_RAW_SIGNAL_CALLS = frozenset({
    "signal.signal",
    "signal.sigaction",
})


class RawProcessFanoutRule(Rule):
    """PAR601: worker processes are spawned only inside ``repro.parallel``."""

    id = "PAR601"
    severity = Severity.ERROR
    title = "process fan-out outside repro.parallel"
    rationale = (
        "Executors merge worker results keyed by trial index and leave "
        "journal/figure writes to the parent process; a raw "
        "ProcessPoolExecutor or os.fork elsewhere leaks completion order "
        "into results and lets workers race on shared files."
    )

    def applies_to(self, context: FileContext) -> bool:
        # The executor layer is the one sanctioned home of fan-out.
        return "parallel/" not in context.norm_path

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            if name in _RAW_FANOUT_CALLS or (
                name.split(".")[-1] in _RAW_FANOUT_SUFFIXES
            ):
                yield self.finding(
                    context, node,
                    f"{name}() spawns worker processes directly; dispatch "
                    f"through a repro.parallel executor so results merge "
                    f"deterministically and only the parent writes files",
                )


class RawSignalHandlerRule(Rule):
    """PAR602: signal handlers are registered only in the supervisor."""

    id = "PAR602"
    severity = Severity.ERROR
    title = "signal handler registration outside repro.parallel.supervisor"
    rationale = (
        "SIGINT/SIGTERM handling is centralized in "
        "repro.parallel.supervisor, which drains in-flight results and "
        "lets the runner flush the journal before KeyboardInterrupt "
        "propagates; a second signal.signal() call elsewhere silently "
        "replaces (or is replaced by) the supervisor's handler and "
        "breaks the drain-then-resume contract."
    )

    def applies_to(self, context: FileContext) -> bool:
        # The supervisor is the one sanctioned home of signal handling.
        return "parallel/supervisor" not in context.norm_path

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in _RAW_SIGNAL_CALLS:
                yield self.finding(
                    context, node,
                    f"{name}() registers a signal handler directly; "
                    f"signal handling is centralized in "
                    f"repro.parallel.supervisor (drain in-flight results, "
                    f"flush the journal, then raise KeyboardInterrupt)",
                )


__all__ = ["RawProcessFanoutRule", "RawSignalHandlerRule"]
