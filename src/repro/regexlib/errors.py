"""Exception types for the regex engine."""

from __future__ import annotations


class RegexError(Exception):
    """Base class for regex engine errors."""


class RegexSyntaxError(RegexError):
    """The pattern could not be parsed.

    Carries the pattern and the offset at which parsing failed so error
    messages can point at the offending character.
    """

    def __init__(self, message: str, pattern: str, position: int):
        super().__init__(f"{message} (pattern {pattern!r}, position {position})")
        self.pattern = pattern
        self.position = position


__all__ = ["RegexError", "RegexSyntaxError"]
