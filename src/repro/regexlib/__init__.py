"""A regular-expression engine built from scratch.

The paper offloads JavaScript regular-expression evaluation to a DSP; to
study that faithfully we need an engine whose work is *observable* — every
VM step and DFA transition is counted, so the same pattern/subject pair can
be costed on the CPU model and on the DSP model.

Pipeline: pattern string → :mod:`parse` (AST) → :mod:`program` (Thompson
NFA bytecode) → execution by either

* the **Pike VM** (:mod:`pikevm`) — full semantics including capture
  groups, leftmost-greedy priority, word boundaries; or
* the **lazy DFA** (:mod:`dfa`) — capture-free subset construction built
  on demand, ~1 operation per input character once warm.  This is the
  loop shape that vectorizes on a Hexagon-class DSP.

Public entry point: :class:`Regex` (see :mod:`engine`), with an interface
close to :mod:`re`: ``search``, ``match``, ``fullmatch``, ``findall``,
``finditer``, plus a cost ledger.

Supported syntax: literals, ``.``, escapes (``\\d \\D \\w \\W \\s \\S
\\n \\t \\r \\f \\v \\xHH \\uHHHH``), character classes with ranges and
negation, alternation, capturing and ``(?:...)`` groups, quantifiers
``* + ? {m} {m,} {m,n}`` with lazy variants, anchors ``^ $ \\b \\B``.
"""

from repro.regexlib.engine import CostLedger, Match, Regex, compile
from repro.regexlib.errors import RegexError, RegexSyntaxError

__all__ = [
    "CostLedger",
    "Match",
    "Regex",
    "RegexError",
    "RegexSyntaxError",
    "compile",
]
