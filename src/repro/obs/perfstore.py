"""Perf-trajectory store: append benchmark wall times, fail on regressions.

Benchmarks (``benchmarks/test_parallel_speedup.py``,
``test_supervisor_overhead.py``, ``test_lint_perf.py``,
``test_runlog_overhead.py``) append one entry per run into a trajectory
file — ``BENCH_obs.json`` by convention — so the performance history of
the execution layer is a queryable artifact instead of a number that
scrolls by in a CI log.  ``python -m repro perf check`` then compares
each series' newest entry against its best prior entry and exits
nonzero when the regression exceeds a tolerance — the CI budget gate.

Every series is *lower-is-better* (seconds, overhead fractions).  The
store keeps no timestamps of its own: entries carry only the measured
value, a unit, and caller-supplied ``meta`` (host cores, trial counts),
so writing an entry never reads a clock and the file diffs cleanly.

File schema (``PERFSTORE_VERSION`` 1)::

    {"version": 1,
     "series": {"parallel.speedup.serial_s": [
         {"value": 2.41, "unit": "s", "meta": {"cores": 8}}, ...]}}
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

#: Trajectory file schema version.
PERFSTORE_VERSION = 1

#: Default regression tolerance: latest may exceed the best prior entry
#: by this fraction before the budget check fails.
DEFAULT_TOLERANCE = 0.25


@dataclass(frozen=True)
class PerfEntry:
    """One recorded measurement of one series."""

    value: float
    unit: str = "s"
    meta: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"value": self.value, "unit": self.unit, "meta": self.meta}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "PerfEntry":
        return cls(value=float(raw["value"]), unit=str(raw.get("unit", "s")),
                   meta=dict(raw.get("meta", {})))


@dataclass(frozen=True)
class BudgetCheck:
    """Verdict of one series' latest entry against its history."""

    name: str
    ok: bool
    latest: float
    baseline: Optional[float]  #: best prior value (None: nothing to compare)
    tolerance: float
    message: str


class PerfStore:
    """Append/compare API over one trajectory file.

    Writes are atomic full rewrites (write-temp-then-replace), the same
    pattern the trial journal uses, so a killed benchmark never leaves a
    half-written trajectory behind.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def load(self) -> Dict[str, Any]:
        if not self.path.exists():
            return {"version": PERFSTORE_VERSION, "series": {}}
        raw = json.loads(self.path.read_text(encoding="utf-8"))
        if not isinstance(raw.get("series"), dict):
            raise ValueError(
                f"{self.path} is not a perf trajectory file "
                f"(missing 'series' mapping)"
            )
        return raw

    def series_names(self) -> List[str]:
        return sorted(self.load()["series"])

    def history(self, name: str) -> List[PerfEntry]:
        """All entries of one series, oldest first."""
        rows = self.load()["series"].get(name, [])
        return [PerfEntry.from_dict(r) for r in rows]

    def append(self, name: str, value: float, unit: str = "s",
               meta: Optional[Dict[str, Any]] = None) -> PerfEntry:
        """Record one measurement at the end of a series."""
        if value < 0:
            raise ValueError(f"perf series {name!r} value cannot be "
                             f"negative (got {value})")
        payload = self.load()
        payload["version"] = PERFSTORE_VERSION
        entry = PerfEntry(value=float(value), unit=unit, meta=dict(meta or {}))
        payload["series"].setdefault(name, []).append(entry.as_dict())
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, self.path)
        return entry

    # -- budget checking ---------------------------------------------------

    def check(self, name: str,
              tolerance: float = DEFAULT_TOLERANCE) -> BudgetCheck:
        """Compare a series' newest entry against its best prior entry."""
        history = self.history(name)
        if not history:
            return BudgetCheck(name=name, ok=True, latest=float("nan"),
                               baseline=None, tolerance=tolerance,
                               message="no entries")
        latest = history[-1].value
        prior = [e.value for e in history[:-1]]
        if not prior:
            return BudgetCheck(name=name, ok=True, latest=latest,
                               baseline=None, tolerance=tolerance,
                               message="first entry; no baseline yet")
        baseline = min(prior)
        budget = baseline * (1.0 + tolerance)
        ok = latest <= budget
        ratio = latest / baseline if baseline > 0 else float("inf")
        verdict = "within budget" if ok else "REGRESSION"
        return BudgetCheck(
            name=name, ok=ok, latest=latest, baseline=baseline,
            tolerance=tolerance,
            message=(f"{verdict}: latest {latest:.4g} vs best {baseline:.4g} "
                     f"({ratio:.2f}x, budget {1.0 + tolerance:.2f}x)"),
        )

    def check_all(self,
                  tolerance: float = DEFAULT_TOLERANCE) -> List[BudgetCheck]:
        return [self.check(name, tolerance) for name in self.series_names()]


def default_store_path() -> Path:
    """``REPRO_PERFSTORE`` when set, else ``BENCH_obs.json`` in the cwd.

    Benchmarks resolve their trajectory file through this hook so CI can
    redirect writes to a workspace artifact without touching the tree.
    """
    return Path(os.environ.get("REPRO_PERFSTORE", "BENCH_obs.json"))


# -- CLI (python -m repro perf) ---------------------------------------------

def _cmd_show(store: PerfStore) -> int:
    names = store.series_names()
    if not names:
        print("(empty trajectory)")
        return 0
    for name in names:
        history = store.history(name)
        latest = history[-1]
        best = min(e.value for e in history)
        print(f"{name}: {len(history)} entries, "
              f"latest {latest.value:.4g} {latest.unit}, best {best:.4g}")
    return 0


def _cmd_check(store: PerfStore, tolerance: float) -> int:
    checks = store.check_all(tolerance)
    if not checks:
        print("perf check: no series recorded; nothing to compare")
        return 0
    failed = 0
    for check in checks:
        print(f"{check.name}: {check.message}")
        if not check.ok:
            failed += 1
    if failed:
        print(f"perf check: {failed}/{len(checks)} series over budget")
        return 1
    print(f"perf check: {len(checks)} series within the "
          f"{tolerance:.0%} tolerance")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point for ``python -m repro perf``."""
    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="Inspect or budget-check a benchmark perf trajectory "
                    "file (BENCH_obs.json).",
    )
    parser.add_argument("action", choices=["show", "check"],
                        help="'show' lists series; 'check' fails on "
                             "regressions beyond --tolerance")
    parser.add_argument("path", help="trajectory file path")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed regression over the best prior entry "
                             "(fraction; default 0.25)")
    options = parser.parse_args(argv)
    if options.tolerance < 0:
        print(f"error: --tolerance cannot be negative "
              f"(got {options.tolerance})", file=sys.stderr)
        return 2
    store = PerfStore(options.path)
    try:
        if options.action == "show":
            return _cmd_show(store)
        return _cmd_check(store, options.tolerance)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


__all__ = [
    "BudgetCheck",
    "DEFAULT_TOLERANCE",
    "PERFSTORE_VERSION",
    "PerfEntry",
    "PerfStore",
    "default_store_path",
    "main",
]
