"""The paper's contribution layer: QoE studies and the offload evaluation.

Everything below maps one-to-one onto the paper's evaluation:

* :mod:`repro.core.studies.web` — Figs 2a, 3a–3d, §3.1 categories
* :mod:`repro.core.studies.video` — Figs 2b, 4a–4d
* :mod:`repro.core.studies.rtc` — Figs 2c, 5a–5d
* :mod:`repro.core.studies.network` — Fig 6 (iperf vs clock)
* :mod:`repro.core.studies.offload` — Figs 7a–7c (DSP regex offload)
* :mod:`repro.core.studies.history` — Fig 1 (2011–2018 evolution)

:mod:`repro.core.experiments` provides the trial runners (seeded repeats →
mean/std, the paper's 20-repetition methodology; `RobustTrialRunner` adds
budgets, retries, and journal/resume for fault-injected studies) and
:mod:`repro.core.background` the background-load jitter that gives
low-end devices their larger error bars.
"""

from repro.core.experiments import (
    RobustRunReport,
    RobustTrialRunner,
    TrialError,
    TrialRecord,
    TrialRunner,
    TrialTimeout,
    derive_retry_seed,
    derive_seed,
    trial_summary,
)
from repro.core.background import BackgroundLoad

__all__ = [
    "BackgroundLoad",
    "RobustRunReport",
    "RobustTrialRunner",
    "TrialError",
    "TrialRecord",
    "TrialRunner",
    "TrialTimeout",
    "derive_retry_seed",
    "derive_seed",
    "trial_summary",
]
