"""Trial running: the paper's repeat-20-times-report-mean/std methodology.

A *trial function* builds a fresh simulation environment from a seed and
returns one scalar or record.  :class:`TrialRunner` runs it across seeded
trials and summarizes.  Determinism: trial ``i`` of experiment ``name``
always uses the same derived seed, so every figure regenerates
bit-identically.

:class:`RobustTrialRunner` is the production-shaped execution layer: it
survives individual trial failures (crash, deadlock, budget exhaustion)
instead of losing a whole figure to one exception, retries with a derived
reseed, journals completed trials to JSON for ``--resume``, and reports
failure counts through :class:`~repro.analysis.stats.Summary` so figures
render from the trials that succeeded.

Both runners dispatch trials through a :class:`repro.parallel.Executor`
(serial by default, a fault-tolerant
:class:`~repro.parallel.SupervisedExecutor` for ``--jobs N``).  Because
every trial is a pure function of ``(experiment, trial)``, fan-out is
invisible in the output: records are keyed by trial index and merged in
trial order, workers return :class:`TrialRecord` values, and only the
parent process touches the journal file — so summaries, journals, and
figure rows are byte-identical for any worker count.

Error taxonomy:

* :class:`TrialError` — base; one trial failed after all attempts.
* :class:`TrialTimeout` — a step/wall budget was exhausted.
* :class:`repro.sim.SimDeadlock` — the kernel detected a drained event
  list with live processes (classified as ``"deadlock"`` in records).

Seed-collision note: ``derive_seed`` hashes ``f"{experiment}:{trial}"``
with CRC-32, keeping seeds 31-bit and stable.  CRC-32 over short distinct
strings collides with probability ≈ ``n²/2³³`` (birthday bound) — about
2×10⁻⁵ for the ~400 experiment-name × 100-trial pairs the benchmarks use.
``tests/test_core_experiments.py`` asserts the current benchmark namespace
is collision-free; if a collision ever appears, mix the trial index into
the CRC input (e.g. hash ``f"{experiment}:{trial}:{trial * 0x9E3779B9}"``)
— at the cost of regenerating every figure baseline.
"""

from __future__ import annotations

import inspect
import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, TypeVar, Union

from repro.analysis.stats import Summary, summarize
from repro.cache import KIND_RECORD, TrialCache, TrialKeyer, cached_map, resolve_cache
from repro.obs import MetricsRegistry, merge_snapshots
from repro.obs.runlog import (
    AnyRunLog,
    NULL_RUNLOG,
    RUNLOG_VERSION,
    RunLog,
    snapshot_digest,
)
from repro.parallel import (
    Executor,
    ParallelExecutionError,
    QuarantinedTask,
    SerialExecutor,
    SupervisionReport,
    TASK_HANG,
    WORKER_CRASH,
)
from repro.sim import Interrupt, SimDeadlock, StepBudgetExceeded

T = TypeVar("T")


def derive_seed(experiment: str, trial: int) -> int:
    """Stable 32-bit seed for (experiment, trial)."""
    return zlib.crc32(f"{experiment}:{trial}".encode()) & 0x7FFFFFFF


def derive_retry_seed(experiment: str, trial: int, attempt: int) -> int:
    """Reseed for retry ``attempt`` of a failed trial.

    Attempt 0 is the canonical :func:`derive_seed` stream (so healthy runs
    are unchanged); retries hash a distinct namespace so a stochastically
    crashed trial gets fresh fault draws instead of replaying the crash.
    """
    if attempt == 0:
        return derive_seed(experiment, trial)
    return derive_seed(f"{experiment}#retry{attempt}", trial)


class TrialError(Exception):
    """One trial failed after exhausting its attempts."""

    def __init__(self, experiment: str, trial: int, seed: int, message: str,
                 cause: Optional[BaseException] = None):
        super().__init__(
            f"trial {trial} of {experiment!r} (seed {seed}) failed: {message}"
        )
        self.experiment = experiment
        self.trial = trial
        self.seed = seed
        self.cause = cause


class TrialTimeout(TrialError):
    """A trial exhausted its step or wall-clock budget."""


class TrialRunner:
    """Runs seeded repetitions of a trial function.

    The paper repeats each workload 20 times; simulation trials converge
    much faster, so the default is smaller — pass ``trials=20`` for
    full-fidelity runs.
    """

    def __init__(self, trials: int = 5, experiment: str = "exp",
                 executor: Optional[Executor] = None,
                 runlog: Optional[RunLog] = None,
                 cache: Optional[TrialCache] = None):
        if trials < 1:
            raise ValueError("need at least one trial")
        self.trials = trials
        self.experiment = experiment
        self.executor = executor or SerialExecutor()
        self.runlog = runlog
        self.cache = cache

    def run(self, trial_fn: Callable[[int], T]) -> list[T]:
        """Execute all trials; returns their results in trial order."""
        seeds = [derive_seed(self.experiment, index)
                 for index in range(self.trials)]
        runlog = _resolve_runlog(self)
        cache = resolve_cache(self.cache, self.executor)
        if not runlog.enabled:
            # cached_map keeps Executor.map's contract (item-order
            # results, ParallelExecutionError on dropped indices).
            return cached_map(self.executor, trial_fn, seeds,
                              experiment=self.experiment, cache=cache,
                              runlog=runlog)
        # Same merge as Executor.map, with one runlog line per finished
        # trial so `--progress` has a live done/total signal.  Cache hits
        # emit the same deterministic line an executed trial would.
        runlog.emit("run_start", experiment=self.experiment,
                    trials=self.trials, pending=self.trials, resumed=0,
                    runlog_version=RUNLOG_VERSION,
                    config={"jobs": getattr(self.executor, "jobs", 1)})

        def note(index: int, result: Any, was_cached: bool) -> None:
            runlog.emit("trial_complete", trial=index, status=TRIAL_OK)

        try:
            results = cached_map(self.executor, trial_fn, seeds,
                                 experiment=self.experiment, cache=cache,
                                 runlog=runlog, on_result=note)
        except ParallelExecutionError as error:
            raise TrialError(self.experiment, -1, 0, str(error)) from error
        runlog.emit("run_end", completed=self.trials, failures=0,
                    quarantined=0)
        return results

    def summary(self, trial_fn: Callable[[int], float]) -> Summary:
        """Run trials returning scalars and summarize them."""
        return summarize(self.run(trial_fn))


def _resolve_runlog(runner: Any) -> AnyRunLog:
    """The runner's runlog, else one attached to its executor, else null.

    The CLI attaches a :class:`~repro.obs.runlog.RunLog` to the executor
    (one shared stream for a whole multi-sweep command), so every study
    gets run-level logging without threading a parameter through each
    study config.
    """
    if runner.runlog is not None:
        return runner.runlog
    attached = getattr(runner.executor, "runlog", None)
    return NULL_RUNLOG if attached is None else attached


# -- robust execution ---------------------------------------------------------

#: Record statuses a trial can end in.
TRIAL_OK = "ok"
TRIAL_CRASH = "crash"
TRIAL_TIMEOUT = "timeout"
TRIAL_DEADLOCK = "deadlock"
TRIAL_ERROR = "error"

#: Journal schema version.  v2 added ``duration_wall_s``/``steps``/``metrics``;
#: v3 dropped ``duration_wall_s`` from the *file* (host timing made journal
#: bytes run-dependent; records still carry it in memory).  Older journals
#: still load (missing fields default).
JOURNAL_VERSION = 3


@dataclass
class TrialRecord:
    """Outcome of one trial (one row of the journal)."""

    trial: int
    seed: int
    status: str
    value: Optional[float] = None
    error: str = ""
    attempts: int = 1
    duration_wall_s: float = 0.0
    steps: Optional[int] = None
    metrics: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.status == TRIAL_OK

    def as_dict(self) -> dict:
        return {
            "trial": self.trial, "seed": self.seed, "status": self.status,
            "value": self.value, "error": self.error, "attempts": self.attempts,
            "duration_wall_s": self.duration_wall_s, "steps": self.steps,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "TrialRecord":
        steps = raw.get("steps")
        return cls(
            trial=int(raw["trial"]), seed=int(raw["seed"]),
            status=str(raw["status"]), value=raw.get("value"),
            error=str(raw.get("error", "")),
            attempts=int(raw.get("attempts", 1)),
            duration_wall_s=float(raw.get("duration_wall_s", 0.0)),
            steps=None if steps is None else int(steps),
            metrics=raw.get("metrics"),
        )


@dataclass
class RobustRunReport:
    """All trial records of one robust run, successful or not."""

    experiment: str
    trials: int
    records: list[TrialRecord] = field(default_factory=list)
    resumed: int = 0  #: trials satisfied from the journal, not re-executed
    quarantined: int = 0  #: trials the executor's supervisor gave up on
    #: Host-level supervision stats of the run (pool rebuilds, task
    #: retries), when the executor is supervised.  Deliberately absent
    #: from journals: how often the pool broke is a fact about the host,
    #: not the experiment — the same policy that keeps
    #: ``duration_wall_s`` out of the v3 journal schema.
    supervision: Optional[SupervisionReport] = None

    @property
    def values(self) -> list[float]:
        """Values of the successful trials, in trial order."""
        return [r.value for r in sorted(self.records, key=lambda r: r.trial)
                if r.ok and r.value is not None]

    @property
    def failures(self) -> int:
        """Number of trials that failed after all attempts."""
        return sum(1 for r in self.records if not r.ok)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.ok)

    def failure_counts(self) -> dict[str, int]:
        """Failures broken down by taxonomy status."""
        counts: dict[str, int] = {}
        for record in self.records:
            if not record.ok:
                counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    def summary(self) -> Summary:
        """Mean ± std of the successful trials, failures counted alongside."""
        return summarize(self.values, failures=self.failures)

    def merged_metrics(self) -> dict:
        """Cross-trial merge of the per-trial registry snapshots.

        Records are visited in trial order, so the merged snapshot is
        identical for any executor / worker count (see
        :func:`repro.obs.merge_snapshots` for the aggregation rules).
        """
        return merge_snapshots([
            record.metrics
            for record in sorted(self.records, key=lambda r: r.trial)
            if record.metrics
        ])


class RobustTrialRunner:
    """Fault-tolerant :class:`TrialRunner`: budgets, retries, journaling.

    ``trial_fn`` receives the derived seed; if it accepts a second
    parameter it also receives ``step_budget`` to pass into
    ``Environment.run(..., max_steps=...)``.  If it declares a parameter
    named ``metrics`` it receives a fresh
    :class:`~repro.obs.MetricsRegistry` per attempt (pass it to
    ``repro.obs.install(env, metrics=...)``); the registry's snapshot is
    attached to the trial's journal record.  Each trial is attempted up to
    ``max_attempts`` times — the first attempt on the canonical seed, each
    retry on a derived reseed (see :func:`derive_retry_seed`).  Failures
    are classified (crash / timeout / deadlock / error) and recorded, never
    raised, so a study always completes with whatever trials succeeded.

    ``journal_path`` enables crash-safe progress journaling: a JSON file
    atomically rewritten by the parent process after every finished trial
    (workers return records; they never touch the file).  With
    ``resume=True`` on :meth:`run`, trials already journaled as ``ok`` are
    loaded instead of re-executed — only missing or previously failed
    trials run — and the final journal is always rewritten, even when
    every trial was satisfied from it.

    ``executor`` selects the dispatch layer (default
    :class:`~repro.parallel.SerialExecutor`).  With a multiprocess
    executor, ``trial_fn`` must be picklable (a module-level function or
    class instance).  A :class:`~repro.parallel.SupervisedExecutor` may
    additionally quarantine a trial after repeated *host-level* faults
    (worker crash, hang, unpicklable result); quarantined trials are
    classified into the same crash/timeout/error taxonomy and journaled
    as ordinary failures, so ``--resume`` re-runs them.
    """

    def __init__(
        self,
        trials: int = 5,
        experiment: str = "exp",
        max_attempts: int = 2,
        step_budget: Optional[int] = None,
        wall_budget_s: Optional[float] = None,
        journal_path: Optional[Union[str, Path]] = None,
        executor: Optional[Executor] = None,
        runlog: Optional[RunLog] = None,
        cache: Optional[TrialCache] = None,
    ):
        if trials < 1:
            raise ValueError("need at least one trial")
        if max_attempts < 1:
            raise ValueError("need at least one attempt per trial")
        if step_budget is not None and step_budget < 1:
            raise ValueError("step budget must be at least 1")
        if wall_budget_s is not None and wall_budget_s <= 0:
            raise ValueError("wall budget must be positive")
        self.trials = trials
        self.experiment = experiment
        self.max_attempts = max_attempts
        self.step_budget = step_budget
        self.wall_budget_s = wall_budget_s
        self.journal_path = Path(journal_path) if journal_path else None
        self.executor = executor or SerialExecutor()
        self.runlog = runlog
        self.cache = cache

    # -- journal ----------------------------------------------------------

    def load_journal(self) -> dict[int, TrialRecord]:
        """Records from the journal file, keyed by trial index."""
        if self.journal_path is None or not self.journal_path.exists():
            return {}
        try:
            raw = json.loads(self.journal_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise TrialError(self.experiment, -1, 0,
                             f"unreadable journal {self.journal_path}: {error}")
        if raw.get("experiment") != self.experiment:
            raise TrialError(
                self.experiment, -1, 0,
                f"journal {self.journal_path} belongs to experiment "
                f"{raw.get('experiment')!r}, not {self.experiment!r}",
            )
        stored_trials = raw.get("trials")
        if stored_trials is not None and int(stored_trials) != self.trials:
            raise TrialError(
                self.experiment, -1, 0,
                f"journal {self.journal_path} was written for "
                f"{stored_trials} trials, not {self.trials}; resuming "
                f"would silently mix run shapes — delete the journal or "
                f"rerun with trials={stored_trials}",
            )
        return {
            record.trial: record
            for record in (TrialRecord.from_dict(r) for r in raw.get("records", []))
        }

    @staticmethod
    def _journal_row(record: TrialRecord) -> dict:
        row = record.as_dict()
        # Host timing varies run to run; keeping it out of the file is what
        # makes journals byte-identical across runs and worker counts.
        row.pop("duration_wall_s", None)
        return row

    def _write_journal(self, records: dict[int, TrialRecord]) -> None:
        if self.journal_path is None:
            return
        payload = {
            "version": JOURNAL_VERSION,
            "experiment": self.experiment,
            "trials": self.trials,
            "records": [self._journal_row(records[k]) for k in sorted(records)],
        }
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.journal_path.with_suffix(self.journal_path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, self.journal_path)

    # -- execution --------------------------------------------------------

    @staticmethod
    def _wants_step_budget(trial_fn: Callable) -> bool:
        try:
            parameters = inspect.signature(trial_fn).parameters
        except (TypeError, ValueError):
            return False
        positional = [
            p for p in parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
            and p.name != "metrics"  # reserved for the registry protocol
        ]
        return len(positional) >= 2 or any(
            p.kind == p.VAR_POSITIONAL for p in parameters.values()
        )

    @staticmethod
    def _wants_metrics(trial_fn: Callable) -> bool:
        try:
            parameters = inspect.signature(trial_fn).parameters
        except (TypeError, ValueError):
            return False
        parameter = parameters.get("metrics")
        return parameter is not None and parameter.kind in (
            parameter.POSITIONAL_OR_KEYWORD, parameter.KEYWORD_ONLY,
        )

    def _attempt(self, trial_fn: Callable, seed: int, pass_budget: bool,
                 metrics: Optional[MetricsRegistry] = None) -> float:
        kwargs = {} if metrics is None else {"metrics": metrics}
        if pass_budget:
            return trial_fn(seed, self.step_budget, **kwargs)
        return trial_fn(seed, **kwargs)

    def run(self, trial_fn: Callable, resume: bool = False) -> RobustRunReport:
        """Execute (or resume) all trials; never raises for a failed trial."""
        report = RobustRunReport(experiment=self.experiment, trials=self.trials)
        records: dict[int, TrialRecord] = {}
        if resume:
            records = {
                trial: record
                for trial, record in self.load_journal().items()
                if record.ok and trial < self.trials
            }
            report.resumed = len(records)
        pass_budget = self._wants_step_budget(trial_fn)
        pass_metrics = self._wants_metrics(trial_fn)
        pending = [trial for trial in range(self.trials)
                   if trial not in records]
        runlog = _resolve_runlog(self)
        runlog.emit(
            "run_start", experiment=self.experiment, trials=self.trials,
            pending=len(pending), resumed=report.resumed,
            runlog_version=RUNLOG_VERSION,
            config={
                "jobs": getattr(self.executor, "jobs", 1),
                "max_attempts": self.max_attempts,
                "step_budget": self.step_budget,
                "wall_budget_s": self.wall_budget_s,
            },
        )
        task = _TrialTask(runner=self, trial_fn=trial_fn,
                          pass_budget=pass_budget, pass_metrics=pass_metrics)
        # Cache partition: trials whose exact (params, seed, code) result
        # is already stored replay their journal row without dispatching;
        # everything else runs.  Only the parent consults or writes the
        # cache, same single-writer discipline as the journal itself.
        keyer = TrialKeyer.create(
            resolve_cache(self.cache, self.executor), trial_fn,
            experiment=self.experiment,
            extra={"max_attempts": self.max_attempts,
                   "step_budget": self.step_budget},
            code_extra=(type(self),),
        )
        to_run: list[int] = []
        for trial in pending:
            record = self._cached_record(keyer, trial, runlog)
            if record is None:
                to_run.append(trial)
                continue
            records[record.trial] = record
            self._write_journal(records)
            self._emit_trial_complete(runlog, record, wall_s=0.0)
        # Workers hand records back; only this (parent) process merges them
        # and touches the journal file.  The merge is keyed by trial index,
        # so completion order never reaches the output.  A supervised
        # executor may yield a QuarantinedTask placeholder instead of a
        # record — a trial the supervisor retired after repeated
        # host-level faults — which classifies into the ordinary failure
        # taxonomy below.  The journal is flushed after every record, so
        # a KeyboardInterrupt out of the executor's signal drain leaves a
        # resumable journal behind.
        for index, result in self.executor.run_tasks(task, to_run):
            if isinstance(result, QuarantinedTask):
                record = self._quarantined_record(to_run[index], result)
                report.quarantined += 1
            else:
                record = result
            records[record.trial] = record
            self._write_journal(records)
            self._emit_trial_complete(
                runlog, record, wall_s=round(record.duration_wall_s, 6))
            if not isinstance(result, QuarantinedTask):
                self._store_record(keyer, record, runlog)
        report.supervision = getattr(self.executor, "last_supervision", None)
        if not pending:
            # Every trial was satisfied from the journal: rewrite it anyway
            # so the header (version, trials) never goes stale.
            self._write_journal(records)
        report.records = [records[k] for k in sorted(records)]
        runlog.emit("run_end", completed=report.completed,
                    failures=report.failures, quarantined=report.quarantined)
        return report

    # -- result cache ------------------------------------------------------

    def _emit_trial_complete(self, runlog: AnyRunLog, record: TrialRecord,
                             wall_s: float) -> None:
        # Everything but the wall timing is seed-determined, so the
        # runlog's deterministic view replays byte-identically; the
        # host timing rides along under the `host` key.  Cache hits pass
        # wall_s=0.0 — the replay cost, not the original compute cost.
        runlog.emit(
            "trial_complete", trial=record.trial, status=record.status,
            attempts=record.attempts, value=record.value,
            steps=record.steps, error=record.error[:200],
            metrics_digest=snapshot_digest(record.metrics),
            host={"wall_s": wall_s},
        )

    def _cached_record(self, keyer: Optional[TrialKeyer], trial: int,
                       runlog: AnyRunLog) -> Optional[TrialRecord]:
        """The stored record for one pending trial, or ``None`` to run it.

        Only ``ok`` rows are ever trusted from the store (failures re-run
        deterministically, so replay and re-execution agree anyway); a
        torn or mismatched entry is re-booked as a miss.
        """
        if keyer is None:
            return None
        key = keyer.key(trial, derive_seed(self.experiment, trial))
        if key is None:
            return None
        entry = keyer.cache.get(key)
        if entry is None:
            runlog.emit("cache_miss", experiment=self.experiment,
                        trial=trial, key=key)
            return None
        record: Optional[TrialRecord]
        try:
            record = (TrialRecord.from_dict(entry["payload"])
                      if entry.get("kind") == KIND_RECORD else None)
        except (KeyError, TypeError, ValueError):
            record = None
        if record is None or record.trial != trial or not record.ok:
            keyer.cache.stats.hits -= 1
            keyer.cache.stats.misses += 1
            runlog.emit("cache_miss", experiment=self.experiment,
                        trial=trial, key=key)
            return None
        runlog.emit("cache_hit", experiment=self.experiment, trial=trial,
                    key=key)
        return record

    def _store_record(self, keyer: Optional[TrialKeyer],
                      record: TrialRecord, runlog: AnyRunLog) -> None:
        if keyer is None or not record.ok:
            return
        key = keyer.key(record.trial,
                        derive_seed(self.experiment, record.trial))
        if key is None:
            return
        keyer.cache.put(key, experiment=self.experiment,
                        trial=record.trial, kind=KIND_RECORD,
                        payload=self._journal_row(record),
                        fingerprint=keyer.fingerprint)
        runlog.emit("cache_store", experiment=self.experiment,
                    trial=record.trial, key=key)

    def _quarantined_record(self, trial: int,
                            quarantined: QuarantinedTask) -> TrialRecord:
        """Classify a supervisor-quarantined trial into the record taxonomy.

        A worker crash is a crash, a hung task is a timeout, and a task
        error is an error — the host-level taxonomy folds into the same
        statuses sim-level failures use, so tables, ``failure_counts``
        and resume (failed rows re-run) behave identically.  The error
        text is deterministic (attempt counts come from the fault plan,
        never from host timing), which keeps journals byte-identical
        across runs whenever the faults themselves are deterministic.
        """
        status = {
            WORKER_CRASH: TRIAL_CRASH,
            TASK_HANG: TRIAL_TIMEOUT,
        }.get(quarantined.kind, TRIAL_ERROR)
        return TrialRecord(
            trial=trial,
            seed=derive_seed(self.experiment, trial),
            status=status,
            error=(f"quarantined after {quarantined.attempts} faulted "
                   f"dispatches ({quarantined.kind}): {quarantined.error}"),
            attempts=quarantined.attempts,
        )

    def _run_trial(self, trial_fn: Callable, trial: int,
                   pass_budget: bool, pass_metrics: bool = False) -> TrialRecord:
        record = TrialRecord(trial=trial, seed=derive_seed(self.experiment, trial),
                             status=TRIAL_ERROR)
        for attempt in range(self.max_attempts):
            seed = derive_retry_seed(self.experiment, trial, attempt)
            record.seed = seed
            record.attempts = attempt + 1
            registry = MetricsRegistry() if pass_metrics else None
            # Host-level watchdog, not sim time: the wall budget guards the
            # *machine* against runaway trials, so it must read a real clock.
            started = time.monotonic()  # simlint: disable=DET001
            try:
                value = self._attempt(trial_fn, seed, pass_budget,
                                      metrics=registry)
            except Interrupt as fault:
                record.status = TRIAL_CRASH
                record.error = f"interrupted: {fault.cause!r}"
            except SimDeadlock as deadlock:
                record.status = TRIAL_DEADLOCK
                record.error = str(deadlock)
            except StepBudgetExceeded as budget:
                record.status = TRIAL_TIMEOUT
                record.error = str(budget)
                record.steps = budget.steps
            except Exception as error:  # noqa: BLE001 - taxonomy boundary
                record.status = TRIAL_ERROR
                record.error = f"{type(error).__name__}: {error}"
            else:
                elapsed = time.monotonic() - started  # simlint: disable=DET001
                if (self.wall_budget_s is not None
                        and elapsed > self.wall_budget_s):
                    record.status = TRIAL_TIMEOUT
                    # The measured elapsed time is host-dependent and must
                    # stay out of the journaled message (journals are
                    # byte-identical across hosts); it remains available
                    # in-memory via record.duration_wall_s.
                    record.error = (
                        f"wall budget {self.wall_budget_s:.1f}s exceeded"
                    )
                    # Retrying a too-slow trial would double the damage.
                    return record
                try:
                    numeric = float(value)
                except (TypeError, ValueError) as error:
                    # Part of the never-raises contract: a trial function
                    # returning a non-numeric record is a failed trial, not
                    # a study-killing exception.
                    record.status = TRIAL_ERROR
                    record.error = (
                        f"non-numeric trial result of type "
                        f"{type(value).__name__}: {error}"
                    )
                    continue
                record.status = TRIAL_OK
                record.value = numeric
                record.error = ""
                if registry is not None:
                    snapshot = registry.snapshot()
                    record.metrics = snapshot
                    # obs.install wires sim.steps to the kernel's step loop.
                    steps = snapshot.get("sim.steps")
                    if steps is not None:
                        record.steps = int(steps)
                return record
            finally:
                # Wall duration of the last attempt, success or failure.
                record.duration_wall_s = (
                    time.monotonic() - started  # simlint: disable=DET001
                )
        return record

    def summary(self, trial_fn: Callable, resume: bool = False) -> Summary:
        """Run (or resume) and summarize, failure counts included."""
        return self.run(trial_fn, resume=resume).summary()


@dataclass
class _TrialTask:
    """Picklable unit of work an executor ships to a worker.

    Pickling the runner carries only its configuration (ints, paths); the
    worker re-derives everything else from the trial index, and the
    returned :class:`TrialRecord` is the only thing that crosses back.
    """

    runner: RobustTrialRunner
    trial_fn: Callable
    pass_budget: bool
    pass_metrics: bool

    def __call__(self, trial: int) -> TrialRecord:
        return self.runner._run_trial(self.trial_fn, trial,
                                      self.pass_budget, self.pass_metrics)


def trial_summary(values: Sequence[float]) -> Summary:
    """Convenience re-export of :func:`repro.analysis.stats.summarize`."""
    return summarize(values)


__all__ = [
    "RobustRunReport",
    "RobustTrialRunner",
    "TrialError",
    "TrialRecord",
    "TrialRunner",
    "TrialTimeout",
    "TRIAL_CRASH",
    "TRIAL_DEADLOCK",
    "TRIAL_ERROR",
    "TRIAL_OK",
    "TRIAL_TIMEOUT",
    "derive_retry_seed",
    "derive_seed",
    "trial_summary",
]
