"""Network substrate: link, host packet processing, TCP, HTTP, iperf.

The paper's testbed is a quiet LAN (Aruba AP, 72 Mbps link, 10 ms RTT, 0 %
loss) deliberately chosen so that *device* effects dominate.  The model
mirrors that: a fixed-capacity link shared FIFO-style between connections,
a Reno-style TCP with IW10 slow start, and — the paper's §4.1 insight — a
per-packet receive-processing cost charged to the device CPU, so network
throughput degrades when the clock slows (Fig 6) and network transfers
contend with application compute (the second-order effect on Web and
telephony).
"""

from repro.netstack.link import Link, LinkSpec
from repro.netstack.hoststack import HostStack, PacketCostModel
from repro.netstack.tcp import TcpConnection
from repro.netstack.http import HttpClient, HttpResponse, Origin
from repro.netstack.iperf import IperfResult, run_iperf

__all__ = [
    "HostStack",
    "HttpClient",
    "HttpResponse",
    "IperfResult",
    "Link",
    "LinkSpec",
    "Origin",
    "PacketCostModel",
    "TcpConnection",
    "run_iperf",
]
