"""Deterministic trial fan-out (see :mod:`repro.parallel.executors`)."""

from repro.parallel.executors import (
    Executor,
    MultiprocessExecutor,
    ParallelExecutionError,
    SerialExecutor,
    get_executor,
)

__all__ = [
    "Executor",
    "MultiprocessExecutor",
    "ParallelExecutionError",
    "SerialExecutor",
    "get_executor",
]
