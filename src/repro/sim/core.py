"""Event loop, events, and processes for the simulation kernel.

The design follows the classic event-list pattern: a heap of
``(time, priority, sequence, event)`` entries, popped in order.  Processes are
Python generators; each ``yield`` hands the scheduler an :class:`Event` to wait
on, and the scheduler resumes the generator (with ``send`` or ``throw``) when
that event fires.

Determinism: ties in time are broken first by an explicit priority, then by a
monotonically increasing sequence number, so two runs of the same program
produce identical schedules.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

#: Default priority for ordinary events.
PRIORITY_NORMAL = 1
#: Priority used for urgent bookkeeping events (process resumption).
PRIORITY_URGENT = 0


class SimulationError(Exception):
    """Raised for illegal kernel operations (e.g. triggering twice)."""


class SimDeadlock(SimulationError):
    """The event list drained while processes were still waiting.

    Nothing can ever fire again, so whatever the caller was waiting for is
    unreachable.  Carries the simulated time of detection (``now``), the
    names of up to five still-alive process generators (``live``), and a
    parallel ``waiting`` tuple describing each stuck process's current
    target event, so trial harnesses can journal *where* — and on *what*
    — a run got stuck.
    """

    def __init__(self, message: str, *, now: float = 0.0,
                 live: tuple = (), waiting: tuple = ()):
        super().__init__(message)
        self.now = now
        self.live = tuple(live)
        self.waiting = tuple(waiting)


class StepBudgetExceeded(SimulationError):
    """``Environment.run`` hit its ``max_steps`` guard.

    A step budget turns a runaway (or livelocked) simulation into a
    structured failure: ``now`` is the simulated time reached and
    ``steps`` the number of events processed before the guard fired.
    """

    def __init__(self, message: str, *, now: float = 0.0, steps: int = 0):
        super().__init__(message)
        self.now = now
        self.steps = steps


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening that processes can wait for.

    An event moves through three states: *pending* (created, not scheduled),
    *triggered* (scheduled on the event list with a value), and *processed*
    (callbacks have run).  Waiting on an already-processed event resumes the
    waiter immediately (at the current simulated time).
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """True once all callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (not with :meth:`fail`)."""
        if self._ok is None:
            raise SimulationError("event has not yet been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with (or the exception, if it failed)."""
        if self._ok is None:
            raise SimulationError("event has not yet been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._scheduled:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, propagated to waiters."""
        if self._scheduled:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        if self.env.metrics is not None:
            self.env.metrics.counter("sim.event_failures").inc()
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (fired) event — for chaining."""
        if self._scheduled:
            return
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after ``delay`` units of simulated time."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event that starts a new process on the next step."""

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        env.schedule(self, priority=PRIORITY_URGENT)


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The generator yields :class:`Event` instances.  When a yielded event
    fires successfully, its value is sent back into the generator; when it
    fails, the exception is thrown into the generator (and is considered
    handled from the kernel's perspective).
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self._started_at = env.now
        self._pid = env._register_process(self)
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._ok is None

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process raises :class:`SimulationError`;
        interrupting a process that is waiting detaches it from its target
        event first (the target may still fire, but the process will not be
        resumed by it).
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a terminated process")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
        if self.env.tracer is not None:
            self.env.tracer.instant(
                "sim.interrupt", "sim",
                args={"pid": self._pid, "process": self._name()},
            )
        failure = Event(self.env)
        failure._ok = False
        failure._value = Interrupt(cause)
        failure.callbacks.append(self._resume)
        self.env.schedule(failure, priority=PRIORITY_URGENT)

    def _name(self) -> str:
        """Address-free display name (the generator function's name)."""
        return getattr(self._generator, "__name__", "process")

    def _trace_exit(self, ok: bool) -> None:
        tracer = self.env.tracer
        name = self._name()
        tracer.complete(f"process:{name}", "sim", self._started_at,
                        args={"pid": self._pid, "ok": ok})
        if not ok:
            tracer.instant(
                "sim.process.crash", "sim",
                args={"pid": self._pid, "process": name,
                      "error": type(self._value).__name__},
            )

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._target = None
                self._ok = True
                self._value = stop.value
                self.env._unregister_process(self)
                self.env.schedule(self)
                if self.env.tracer is not None:
                    self._trace_exit(ok=True)
                break
            except BaseException as error:
                self._target = None
                self._ok = False
                self._value = error
                self.env._unregister_process(self)
                self.env.schedule(self)
                if self.env.tracer is not None:
                    self._trace_exit(ok=False)
                if not self.callbacks:
                    # Nobody is waiting on this process: surface the crash.
                    self.env._crashed.append((self, error))
                break

            if not isinstance(next_event, Event):
                self._generator.throw(
                    SimulationError(f"process yielded non-event {next_event!r}")
                )
                continue
            if next_event.env is not self.env:
                self._generator.throw(
                    SimulationError("yielded event belongs to another environment")
                )
                continue
            if next_event.callbacks is None:
                # Already processed: resume immediately with its outcome.
                event = next_event
                continue
            next_event.callbacks.append(self._resume)
            self._target = next_event
            break
        self.env._active_process = None


class ConditionEvent(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composition events."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._fired_count = 0
        for event in self.events:
            if event.env is not env:
                raise SimulationError("all composed events must share the env")
            if event.callbacks is None:
                self._observe(event)
            else:
                event.callbacks.append(self._observe)
        self._check_initial()

    def _check_initial(self) -> None:
        if not self.events and not self._scheduled:
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, Any]:
        return {
            event: event._value
            for event in self.events
            if event._ok is not None and event._ok
        }

    def _observe(self, event: Event) -> None:
        if self._scheduled:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._fired_count += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Fires when every composed event has fired."""

    def _satisfied(self) -> bool:
        return self._fired_count == len(self.events)


class AnyOf(ConditionEvent):
    """Fires as soon as any composed event fires."""

    def _check_initial(self) -> None:
        if not self.events and not self._scheduled:
            self.succeed({})

    def _satisfied(self) -> bool:
        return self._fired_count >= 1


class Environment:
    """The simulation clock and event loop.

    Usage::

        env = Environment()
        env.process(some_generator(env))
        env.run(until=100.0)
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self._crashed: list[tuple[Process, BaseException]] = []
        self._live: dict[int, Process] = {}
        self._next_pid = 0
        self._steps_total = 0
        # Observability attachment points.  ``repro.obs.install`` sets
        # these; the kernel never imports repro.obs — a ``None`` tracer
        # means tracing is off and costs one attribute check per hook.
        self.tracer: Optional[Any] = None
        self.metrics: Optional[Any] = None
        self._steps_counter: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def steps_processed(self) -> int:
        """Total events processed by :meth:`step` since creation."""
        return self._steps_total

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    @property
    def live_process_count(self) -> int:
        """Number of processes whose generators have not terminated."""
        return len(self._live)

    def _register_process(self, process: Process) -> int:
        pid = self._next_pid
        self._next_pid += 1
        self._live[pid] = process
        return pid

    def _unregister_process(self, process: Process) -> None:
        self._live.pop(process._pid, None)

    def _live_process_names(self, limit: int = 5) -> tuple:
        names = []
        for pid in sorted(self._live):
            generator = self._live[pid]._generator
            names.append(getattr(generator, "__name__", repr(generator)))
            if len(names) >= limit:
                break
        return tuple(names)

    @staticmethod
    def _describe_target(event: Optional[Event]) -> str:
        """Address-free description of a process's wait target."""
        if event is None:
            return "nothing (ready to run)"
        if isinstance(event, Timeout):
            return repr(event)
        if isinstance(event, Process):
            return f"<Process {event._name()}>"
        return f"<{type(event).__name__}>"

    def _live_process_waits(self, limit: int = 5) -> tuple:
        """``"name waiting on <target>"`` for up to ``limit`` live processes."""
        waits = []
        for pid in sorted(self._live):
            process = self._live[pid]
            waits.append(f"{process._name()} waiting on "
                         f"{self._describe_target(process.target)}")
            if len(waits) >= limit:
                break
        return tuple(waits)

    def _deadlock(self, waiting_for: str) -> SimDeadlock:
        live = self._live_process_names()
        waiting = self._live_process_waits()
        detail = f"; live processes: {'; '.join(waiting)}" if waiting else ""
        return SimDeadlock(
            f"deadlock at t={self._now:.6f}: event list drained while "
            f"{len(self._live)} process(es) were still alive and "
            f"{waiting_for} had not fired{detail}",
            now=self._now, live=live, waiting=waiting,
        )

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        """Place ``event`` on the event list ``delay`` time units from now."""
        event._scheduled = True
        heapq.heappush(
            self._queue, (self._now + delay, priority, self._sequence, event)
        )
        self._sequence += 1

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no more events")
        self._now, _, _, event = heapq.heappop(self._queue)
        self._steps_total += 1
        if self._steps_counter is not None:
            self._steps_counter.inc()
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if self._crashed:
            process, error = self._crashed.pop()
            raise error

    def run(self, until: Optional[float | Event] = None,
            max_steps: Optional[int] = None) -> Any:
        """Run until time ``until``, event ``until``, or event-list exhaustion.

        Returns the value of ``until`` when it is an event.

        ``max_steps`` bounds the number of events processed by this call;
        exceeding it raises :class:`StepBudgetExceeded`.  If the event list
        drains while processes are still alive (so the awaited event — or
        any further progress — is unreachable), :class:`SimDeadlock` is
        raised with the simulated time and the stuck process names.
        """
        if max_steps is not None and max_steps < 1:
            raise ValueError("max_steps must be at least 1")
        steps = 0
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise self._deadlock("the awaited event")
                if max_steps is not None and steps >= max_steps:
                    raise StepBudgetExceeded(
                        f"step budget of {max_steps} events exhausted at "
                        f"t={self._now:.6f} before the awaited event fired",
                        now=self._now, steps=steps,
                    )
                self.step()
                steps += 1
            if stop._ok:
                return stop._value
            raise stop._value
        horizon = float("inf") if until is None else float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            if max_steps is not None and steps >= max_steps:
                raise StepBudgetExceeded(
                    f"step budget of {max_steps} events exhausted at "
                    f"t={self._now:.6f} (horizon {horizon})",
                    now=self._now, steps=steps,
                )
            self.step()
            steps += 1
        if horizon == float("inf") and self._live:
            raise self._deadlock("further progress")
        if horizon != float("inf"):
            self._now = horizon
        return None
