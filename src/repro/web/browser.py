"""The browser engine: dependency-graph page loads on the device model.

Thread architecture mirrors what the paper observes ("only two of the
cores are utilized"):

* **main thread** — HTML parsing, script execution, style, layout, paint,
  strictly serialized (a capacity-1 resource);
* **IO thread** — request issuance and response handling (small per-request
  CPU charges, no serialization with main);
* **raster pool** — image decoding on up to two worker threads;
* the kernel's **softirq** context (via :class:`~repro.netstack.HostStack`)
  processes packets.

Adding cores beyond two therefore barely moves PLT, while everything on
the main thread scales with single-core speed — the paper's central Web
finding.

Scheduling follows Chrome's behaviour at WProf granularity: the preload
scanner starts every statically visible fetch as soon as the HTML arrives;
synchronous scripts block parsing at their document position (including
document.write-injected chains the scanner cannot see); async scripts run
on the main thread when their fetch completes; script-discovered resources
fetch after their parent executes; images start when the parser reaches
them (or after first paint, for lazy ones); style/layout/paint wait on
parsing and every stylesheet.

Every activity is recorded with dependency edges, producing the WProf-style
DAG that :mod:`repro.analysis.critpath` decomposes and that the ePLT
offload replay re-prices.

The DOMLoad/onload event — PLT, as the paper measures it — fires when all
fetches, executions, decodes, and the paint have completed.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.critpath import extract_critical_path
from repro.device import Device
from repro.jsruntime import CpuCostModel, Script
from repro.netstack import HostStack, HttpClient, Link, Origin
from repro.obs import tracer_of
from repro.sim import Environment, Event, Resource
from repro.web.costmodel import BrowserCostModel
from repro.web.metrics import ActivityRecord, PageLoadResult
from repro.workloads.pages import PageSpec, WebObject


class CpuScriptExecutor:
    """Default script execution: everything on the device CPU."""

    def __init__(self, js_cost: Optional[CpuCostModel] = None):
        self.js_cost = js_cost or CpuCostModel()

    def execute(self, browser: "BrowserEngine", script: Script):
        """Process: run ``script`` (caller holds the main thread)."""
        env = browser.env
        cost = browser.cost
        yield from browser.device.run(
            script.compile_ops, cost.script_stall(script.compile_ops)
        )
        for function in script.functions:
            ops = self.js_cost.function_ops(function)
            started = env.now
            yield from browser.device.run(ops, cost.script_stall(ops))
            if function.has_regex:
                browser.result.script_regex_fn_time += env.now - started
                browser.result.regex_fn_intervals.append((started, env.now))


class BrowserEngine:
    """Loads :class:`~repro.workloads.pages.PageSpec` pages on a device."""

    def __init__(
        self,
        env: Environment,
        device: Device,
        link: Link,
        stack: Optional[HostStack] = None,
        http: Optional[HttpClient] = None,
        cost: Optional[BrowserCostModel] = None,
        executor: Optional[CpuScriptExecutor] = None,
        raster_threads: int = 2,
    ):
        self.env = env
        self.device = device
        self.link = link
        self.stack = stack or HostStack(env, device)
        self.http = http or HttpClient(env, link, self.stack)
        self.cost = cost or BrowserCostModel()
        self.executor = executor or CpuScriptExecutor()
        self._main = Resource(env, capacity=1)
        self._raster = Resource(env, capacity=max(1, raster_threads))
        self._tracer = tracer_of(env)
        self._paint_done: Event = env.event()
        self._next_id = 0
        self.result: PageLoadResult = PageLoadResult(url="", category="")

    # -- activity bookkeeping ---------------------------------------------

    def _activity(self, kind: str, label: str, start: float,
                  deps: Iterable[int]) -> int:
        """Record a finished activity; returns its id."""
        act_id = self._next_id
        self._next_id += 1
        record = ActivityRecord(
            id=act_id, kind=kind, label=label, start=start,
            end=self.env.now, deps=tuple(deps),
        )
        self.result.activities.append(record)
        if self._tracer.enabled:
            # Mirror the full activity record into the trace so the
            # critical-path analyzer can rebuild the DAG from spans alone.
            self._tracer.complete(
                f"web.{kind}", "web", start,
                args={"id": act_id, "kind": kind, "label": label,
                      "deps": list(record.deps)},
            )
        return act_id

    def _account_main(self, kind: str, start: float) -> None:
        duration = self.env.now - start
        result = self.result
        result.main_busy_time += duration
        attr = f"{kind}_time"
        if hasattr(result, attr):
            setattr(result, attr, getattr(result, attr) + duration)

    def _on_main(self, kind: str, label: str, ops: float, stall: float,
                 deps: Iterable[int]):
        """Process: run a compute activity on the main thread; returns id."""
        with self._main.request() as grant:
            yield grant
            started = self.env.now
            yield from self.device.run(ops, stall)
            self._account_main(kind, started)
            return self._activity(kind, label, started, deps)

    def _execute_script_on_main(self, script: Script, deps: Iterable[int]):
        """Process: execute a script on the main thread; returns id."""
        with self._main.request() as grant:
            yield grant
            started = self.env.now
            yield from self.executor.execute(self, script)
            self._account_main("script", started)
            return self._activity("script", script.url, started, deps)

    # -- fetch pipeline -----------------------------------------------------

    def _fetch(self, obj: WebObject, deps: Iterable[int]):
        """Process: issue and complete one fetch; returns activity id."""
        started = self.env.now
        # Request issuance (cookie lookup, cache check, connection mgmt).
        yield from self.device.run(self.cost.issue_request_ops)
        origin = Origin(obj.origin_host)
        yield from self.http.fetch(origin, obj.url, obj.size_bytes)
        # Response handling on the IO thread.
        yield from self.device.run(self.cost.receive_ops)
        self.result.bytes_fetched += obj.size_bytes
        self.result.n_requests += 1
        return self._activity("fetch", obj.url, started, deps)

    def _decode_image(self, obj: WebObject, deps: Iterable[int]):
        """Process: decode a fetched image on the raster pool; returns id."""
        with self._raster.request() as grant:
            yield grant
            started = self.env.now
            yield from self.device.run(self.cost.decode_work(obj.size_bytes))
            self.result.decode_time += self.env.now - started
            return self._activity("decode", obj.url, started, deps)

    def _object_lifecycle(
        self,
        page: PageSpec,
        obj: WebObject,
        fetched: dict[int, Event],
        executed: dict[int, Event],
        discovered: dict[int, Event],
    ):
        """Process: trigger → fetch → (execute / decode) for one object."""
        if obj.parent is None:
            raise ValueError("root object has no lifecycle process")
        parent = page.objects[obj.parent]
        if parent.kind != "html":
            # Script-discovered: wait for the parent script to execute.
            trigger = yield executed[parent.index]
        elif obj.kind == "img":
            # Images are found by the parser (or, below the fold, by the
            # lazy loader after first paint) — not the preload scanner.
            trigger = yield (self._paint_done if obj.lazy
                             else discovered[obj.index])
        elif not obj.scanner_visible:
            # document.write-inserted scripts: invisible to the preload
            # scanner, fetched only when the parser reaches them.
            trigger = yield discovered[obj.index]
        else:
            # Scripts/styles/fonts: the preload scanner fires right after
            # the document arrives.
            trigger = yield fetched[parent.index]
        fetch_id = yield from self._fetch(obj, (trigger,))
        fetched[obj.index].succeed(fetch_id)
        if obj.kind == "img":
            return (yield from self._decode_image(obj, (fetch_id,)))
        if obj.kind == "js" and obj.script is not None:
            if obj.blocking:
                # The parser executes blocking scripts at their document
                # position; wait so onload includes the execution.
                return (yield executed[obj.index])
            exec_id = yield from self._execute_script_on_main(
                obj.script, (fetch_id,)
            )
            executed[obj.index].succeed(exec_id)
            return exec_id
        return fetch_id

    # -- parsing with sync-script blocking -----------------------------------

    def _parse_document(
        self,
        page: PageSpec,
        fetched: dict[int, Event],
        executed: dict[int, Event],
        discovered: dict[int, Event],
        html_fetch_id: int,
    ):
        """Process: chunked HTML parse, stalling at synchronous scripts.

        Returns the id of the last parse/script activity.  As the parse
        position advances past an image's document position, its
        ``discovered`` event fires and the image fetch starts.
        """
        total_ops, total_stall = self.cost.parse_work(page.root.size_bytes)

        def chain_of(obj: WebObject) -> list[WebObject]:
            out = [obj]
            for child in page.objects:
                if (child.parent == obj.index and child.blocking
                        and child.kind == "js"):
                    out.extend(chain_of(child))
            return out

        roots = sorted(
            (o for o in page.objects
             if o.blocking and o.kind == "js" and o.parent == 0),
            key=lambda o: o.discovery_frac,
        )
        blockers = [obj for root in roots for obj in chain_of(root)]
        pending_imgs = sorted(
            ((o.discovery_frac, o.index) for o in page.objects
             if o.kind == "img" and o.parent == 0 and not o.lazy),
            reverse=True,
        )

        def advance_to(position: float, cause: int) -> None:
            while pending_imgs and pending_imgs[-1][0] <= position:
                _, index = pending_imgs.pop()
                discovered[index].succeed(cause)

        prev_id = html_fetch_id
        position = 0.0
        for blocker in blockers:
            frac = blocker.discovery_frac - position
            if frac > 0:
                prev_id = yield from self._on_main(
                    "parse", page.root.url, total_ops * frac,
                    total_stall * frac, (prev_id,),
                )
                position = blocker.discovery_frac
                advance_to(position, prev_id)
            if not blocker.scanner_visible and blocker.parent == 0:
                # The parser just reached the inline script that inserts
                # this one — only now does its fetch start.
                discovered[blocker.index].succeed(prev_id)
            fetch_id = yield fetched[blocker.index]
            assert blocker.script is not None
            prev_id = yield from self._execute_script_on_main(
                blocker.script, (fetch_id, prev_id)
            )
            executed[blocker.index].succeed(prev_id)
        remaining = 1.0 - position
        if remaining > 0:
            prev_id = yield from self._on_main(
                "parse", page.root.url, total_ops * remaining,
                total_stall * remaining, (prev_id,),
            )
        advance_to(1.0, prev_id)
        return prev_id

    # -- top level ------------------------------------------------------------

    def load(self, page: PageSpec):
        """Process: load ``page``; returns a :class:`PageLoadResult`."""
        env = self.env
        self.device.set_working_set(page.working_set_gb)
        self.result = PageLoadResult(url=page.url, category=page.category)
        # Spans recorded from here on belong to this load (the engine can
        # load several pages in one environment).
        span_mark = len(self._tracer.spans) if self._tracer.enabled else 0
        self._paint_done = env.event()
        fetched: dict[int, Event] = {o.index: env.event() for o in page.objects}
        executed: dict[int, Event] = {
            o.index: env.event()
            for o in page.objects
            if o.kind == "js" and o.script is not None
        }
        discovered: dict[int, Event] = {
            o.index: env.event()
            for o in page.objects
            if (o.parent == 0 and not o.lazy
                and (o.kind == "img" or not o.scanner_visible))
        }

        # Navigate: fetch the document itself.
        html_fetch_id = yield from self._fetch(page.root, ())
        fetched[0].succeed(html_fetch_id)

        lifecycles = [
            env.process(
                self._object_lifecycle(page, obj, fetched, executed, discovered)
            )
            for obj in page.objects[1:]
        ]
        parse_end_id = yield from self._parse_document(
            page, fetched, executed, discovered, html_fetch_id
        )

        # Style/layout/paint: wait for every stylesheet (and font).
        css_bytes = sum(o.size_bytes for o in page.objects if o.kind == "css")
        render_blockers = [
            fetched[o.index] for o in page.objects if o.kind in ("css", "font")
        ]
        blocker_ids = yield env.all_of(render_blockers)
        style_deps = [parse_end_id] + list(blocker_ids.values())
        style_ops, style_stall = self.cost.style_work(css_bytes)
        style_id = yield from self._on_main(
            "style", "stylesheets", style_ops, style_stall, style_deps
        )
        layout_id = yield from self._on_main(
            "layout", "layout", page.layout_ops,
            self.cost.layout_stall(page.layout_ops), (style_id,),
        )
        paint_id = yield from self._on_main(
            "paint", "paint", page.paint_ops,
            self.cost.layout_stall(page.paint_ops), (layout_id,),
        )
        self._paint_done.succeed(paint_id)

        # onload: all subresource lifecycles complete.
        yield env.all_of(lifecycles)
        result = self.result
        result.plt = env.now
        result.energy_j = self.device.energy.energy_j
        trace = (self._tracer.spans[span_mark:]
                 if self._tracer.enabled else None)
        path = extract_critical_path(result.activities, result.plt,
                                     trace=trace)
        result.compute_time = path.compute_time
        result.network_time = path.network_time
        result.cp_kind_breakdown = path.kind_breakdown
        return result


__all__ = ["BrowserEngine", "CpuScriptExecutor"]
