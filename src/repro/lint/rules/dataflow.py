"""Project-wide dataflow rules (DF7xx).

These rules need the whole program: a symbol table, import resolution,
and per-function taint summaries iterated to a fixed point over the call
graph (:mod:`repro.lint.project`, :mod:`repro.lint.dataflow`).  They run
only in ``--project`` mode; in single-file mode they are inert.

Every label carries the source location that introduced it
(``wallclock@path:line``), so a finding at a sink names the origin even
when the flow crossed modules — the message is the audit trail.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.dataflow import (
    EMPTY,
    DataflowAnalysis,
    DataflowEngine,
    Labels,
    concrete,
)
from repro.lint.findings import Finding, Severity
from repro.lint.project import FunctionInfo, ProjectModel
from repro.lint.rules import FileContext, Rule
from repro.lint.rules.determinism import _WALL_CLOCK_CALLS


class ProjectRule(Rule):
    """A rule that analyses the whole :class:`ProjectModel` at once."""

    def applies_to(self, context: FileContext) -> bool:
        return False  # never runs in single-file mode

    def check(self, context: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(self, path: str, node: ast.AST,
                        message: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            severity=self.severity,
            message=message,
        )


def _tag(kind: str, path: str, node: ast.AST) -> str:
    """A label that remembers where it was introduced."""
    return f"{kind}@{path}:{getattr(node, 'lineno', 1)}"


def _origins(labels: Labels, kind: str) -> List[str]:
    """Sorted origin locations of every label of ``kind``."""
    prefix = f"{kind}@"
    return sorted(l[len(prefix):] for l in labels if l.startswith(prefix))


def _has(labels: Labels, kind: str) -> bool:
    return any(l.startswith(f"{kind}@") or l == kind for l in labels)


def _suffix(resolved: Optional[str]) -> str:
    return "" if resolved is None else resolved.rsplit(".", 1)[-1]


def _is_literal_expr(node: ast.AST) -> bool:
    """True when the expression is built purely from constants."""
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Constant, ast.Tuple, ast.List,
                            ast.BinOp, ast.UnaryOp, ast.operator,
                            ast.unaryop, ast.Load)):
            continue
        return False
    return True


class _EngineRule(ProjectRule):
    """Shared scaffolding: run one analysis, collect findings."""

    analysis_class: type = DataflowAnalysis

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        analysis = self.analysis_class()
        engine = DataflowEngine(project, analysis)
        engine.compute()
        findings: List[Finding] = []

        def report(func: FunctionInfo, node: ast.AST, message: str) -> None:
            path = project.function_module(func).path
            findings.append(self.project_finding(path, node, message))

        engine.run_reports(report)
        # One flow can be observed at the same sink through several
        # expressions; report each (path, line, message) once.
        seen: Set[Tuple[str, int, str]] = set()
        for finding in sorted(findings):
            key = (finding.path, finding.line, finding.message)
            if key not in seen:
                seen.add(key)
                yield finding


# -- DF701: RNG provenance ----------------------------------------------------

#: Constructors that produce an RNG object.
_RNG_CONSTRUCTORS = frozenset({
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
})

#: The audited producers every study RNG must trace back to.
_AUDITED_RNG_FACTORIES = frozenset({"make_rng", "spawn_rng"})
_SEED_DERIVERS = frozenset({"derive_seed", "derive_retry_seed"})

#: Modules whose ``rng``-taking functions are provenance-audited sinks:
#: the study/fault layer, where every stream must be factory-made so the
#: seed plumbing stays greppable end to end.
_RNG_SINK_MODULE_PREFIXES = (
    "repro.core.studies",
    "repro.core.tracing",
    "repro.faults",
    "repro.sim",
)


class _RngProvenance(DataflowAnalysis):
    propagate_through_unknown_calls = False

    def call_labels(self, resolved, node, arg_labels, engine):
        tail = _suffix(resolved)
        if tail in _AUDITED_RNG_FACTORIES:
            return frozenset({"rng.audited"})
        if tail in _SEED_DERIVERS:
            return frozenset({"seed.derived"})
        if resolved in _RNG_CONSTRUCTORS:
            path = engine.current_path()
            if not node.args and not node.keywords:
                # Seedless construction (DET002's domain, but the flow
                # still matters interprocedurally).
                return frozenset({_tag("rng.unaudited", path, node)})
            seed_labels = arg_labels[0] if arg_labels else EMPTY
            if _has(seed_labels, "seed.derived"):
                return frozenset({"rng.audited"})
            if _has(seed_labels, "rng.audited"):
                return frozenset({"rng.audited"})
            if node.args and _is_literal_expr(node.args[0]):
                return frozenset({_tag("rng.unaudited", path, node)})
            # Seeded from something we cannot classify: benefit of doubt.
            return EMPTY
        return None

    def visit_call(self, func, node, resolved, evaluate, engine):
        if resolved is None:
            return
        params = _rng_param_binding(engine.project, resolved)
        if params is None:
            return
        callee_module, rng_index, shift = params
        if not any(callee_module.startswith(prefix)
                   for prefix in _RNG_SINK_MODULE_PREFIXES):
            return
        value: Optional[ast.expr] = None
        for keyword in node.keywords:
            if keyword.arg == "rng":
                value = keyword.value
        if value is None and rng_index is not None:
            position = rng_index - shift
            if 0 <= position < len(node.args):
                value = node.args[position]
        if value is None:
            return
        labels = concrete(evaluate(value))
        origins = _origins(labels, "rng.unaudited")
        if origins:
            engine.report(
                node,
                f"RNG reaching rng= of {resolved} was constructed at "
                f"{origins[0]} without make_rng/derive_seed provenance; "
                f"route it through repro.core.background.make_rng",
            )


def _rng_param_binding(
    project: ProjectModel, resolved: str,
) -> Optional[Tuple[str, Optional[int], int]]:
    """(module, index of ``rng`` param, positional shift) for a callee."""
    func = project.functions.get(resolved)
    if func is not None:
        params = func.params
        index = params.index("rng") if "rng" in params else None
        if index is None and "rng" not in func.keyword_only_params:
            return None
        shift = 1 if func.class_name is not None else 0
        return func.module, index, shift
    class_info = project.class_of(resolved)
    if class_info is not None:
        params = class_info.init_params()
        index = params.index("rng") if "rng" in params else None
        ctor = class_info.init
        kwonly = ctor.keyword_only_params if ctor is not None else []
        if index is None and "rng" not in kwonly:
            return None
        return class_info.module, index, 0
    return None


class RngProvenanceRule(_EngineRule):
    """DF701: study/fault RNGs must trace back to the audited factory."""

    id = "DF701"
    severity = Severity.ERROR
    title = "RNG without make_rng/derive_seed provenance reaches a study"
    rationale = (
        "The repeat-N methodology regenerates bit-identically only if "
        "every stream feeding a study or fault injector derives from the "
        "audited seed chain (make_rng/derive_seed).  An RNG constructed "
        "inline — even with a constant seed — hides part of the seed "
        "plumbing from the audit, across however many modules it travels."
    )
    analysis_class = _RngProvenance


# -- DF702: wall-clock taint --------------------------------------------------

#: Journal/trace sink methods: metric instruments and tracer events.
_METRIC_FACTORY_METHODS = frozenset({"counter", "gauge", "histogram"})
_METRIC_WRITE_METHODS = frozenset({"inc", "set", "observe"})
_TRACER_EVENT_METHODS = frozenset({
    "instant", "complete", "begin_span", "end_span", "span",
})

#: The one TrialRecord field that is *supposed* to carry host timing
#: (kept out of the journal file by RobustTrialRunner._journal_row).
_WALL_EXEMPT_FIELDS = frozenset({"duration_wall_s"})


class _WallClockTaint(DataflowAnalysis):
    propagate_through_unknown_calls = True

    def call_labels(self, resolved, node, arg_labels, engine):
        if resolved in _WALL_CLOCK_CALLS:
            return frozenset({_tag("wallclock", engine.current_path(), node)})
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_FACTORY_METHODS):
            union: Set[str] = {"type.metric-instrument"}
            for labels in arg_labels:
                union |= concrete(labels)
            return frozenset(union)
        if _suffix(resolved) == "TrialRecord":
            union = {"type.trialrecord"}
            for labels in arg_labels:
                union |= concrete(labels)
            return frozenset(union)
        return None

    # -- sinks ------------------------------------------------------------

    def visit_call(self, func, node, resolved, evaluate, engine):
        if _suffix(resolved) == "TrialRecord":
            for position, arg in enumerate(node.args):
                self._flag(engine, node, evaluate(arg),
                           f"TrialRecord argument {position}")
            for keyword in node.keywords:
                if keyword.arg in _WALL_EXEMPT_FIELDS:
                    continue
                self._flag(engine, node, evaluate(keyword.value),
                           f"TrialRecord field {keyword.arg or '**kwargs'}")
            return
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        if method in _METRIC_WRITE_METHODS:
            receiver = evaluate(node.func.value)
            if _has(receiver, "type.metric-instrument"):
                for arg in node.args:
                    self._flag(engine, node, evaluate(arg),
                               f"metric {method}()")
            return
        if method in _TRACER_EVENT_METHODS:
            for arg in node.args:
                self._flag(engine, node, evaluate(arg),
                           f"trace event {method}()")
            for keyword in node.keywords:
                self._flag(engine, node, evaluate(keyword.value),
                           f"trace event {method}()")

    def visit_attr_store(self, func, node, target_labels, value_labels,
                         engine):
        if node.attr in _WALL_EXEMPT_FIELDS:
            return
        if _has(target_labels, "type.trialrecord"):
            self._flag(engine, node, value_labels,
                       f"TrialRecord field {node.attr}")

    def _flag(self, engine: DataflowEngine, node: ast.AST, labels: Labels,
              sink: str) -> None:
        origins = _origins(concrete(labels), "wallclock")
        if origins:
            engine.report(
                node,
                f"host wall-clock value read at {origins[0]} flows into "
                f"{sink}; journals, metrics, and traces must be derived "
                f"from sim time (env.now) to keep replay byte-identical",
            )


class WallClockTaintRule(_EngineRule):
    """DF702: wall-clock values never reach journaled/exported state."""

    id = "DF702"
    severity = Severity.ERROR
    title = "wall-clock value flows into a journal, metric, or trace"
    rationale = (
        "Journals, metric snapshots, and trace events replay "
        "byte-identically only if every recorded value is a function of "
        "the seed and sim time.  A time.time()/perf_counter() value that "
        "reaches a TrialRecord, instrument, or trace event — even "
        "laundered through helpers or f-strings — couples the artifact "
        "to the machine that produced it.  Host timing belongs only in "
        "TrialRecord.duration_wall_s, which never enters the journal "
        "file."
    )
    analysis_class = _WallClockTaint


# -- DF703: pickle-safety -----------------------------------------------------

_MULTI_EXECUTOR_PRODUCERS = frozenset({
    "MultiprocessExecutor", "get_executor",
})
_SERIAL_EXECUTOR_PRODUCERS = frozenset({"SerialExecutor"})
_EXECUTOR_DISPATCH_METHODS = frozenset({"map", "run_tasks"})

#: (label kind, human description) for each pickle hazard.
_PICKLE_HAZARDS = (
    ("pickle.lambda", "a lambda"),
    ("pickle.localdef", "a function defined inside another function"),
    ("pickle.localclass", "an instance of a locally defined class"),
    ("pickle.handle", "an open file handle"),
    ("pickle.env", "an object carrying a simulation Environment"),
)


class _PickleSafety(DataflowAnalysis):
    propagate_through_unknown_calls = True

    def param_labels(self, func, name, index):
        if name == "env":
            return frozenset({_tag("pickle.env", func.module, func.node)})
        return EMPTY

    def call_labels(self, resolved, node, arg_labels, engine):
        path = engine.current_path()
        if resolved == "<lambda>":
            return frozenset({_tag("pickle.lambda", path, node)})
        if resolved == "<local-def>":
            return frozenset({_tag("pickle.localdef", path, node)})
        if resolved == "<local-class>":
            return frozenset({_tag("pickle.localclass", path, node)})
        tail = _suffix(resolved)
        if tail == "open" and resolved in ("open", "io.open", "os.fdopen"):
            return frozenset({_tag("pickle.handle", path, node)})
        if tail == "Environment":
            union = {_tag("pickle.env", path, node)}
            for labels in arg_labels:
                union |= concrete(labels)
            return frozenset(union)
        if tail in _MULTI_EXECUTOR_PRODUCERS:
            return frozenset({"executor.multi"})
        if tail in _SERIAL_EXECUTOR_PRODUCERS:
            return frozenset({"executor.serial"})
        return None

    def visit_call(self, func, node, resolved, evaluate, engine):
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in _EXECUTOR_DISPATCH_METHODS:
            return
        receiver = concrete(evaluate(node.func.value))
        if "executor.multi" not in receiver:
            return
        roles = ("task callable", "work items")
        for position, arg in enumerate(node.args[:2]):
            labels = concrete(evaluate(arg))
            for kind, description in _PICKLE_HAZARDS:
                origins = _origins(labels, kind)
                if origins:
                    engine.report(
                        node,
                        f"{roles[position]} submitted to a multiprocess "
                        f"executor carries {description} (from "
                        f"{origins[0]}) and cannot cross the process "
                        f"boundary; use a module-level function or a "
                        f"picklable task dataclass",
                    )
                    break


class PickleSafetyRule(_EngineRule):
    """DF703: everything shipped through repro.parallel must pickle."""

    id = "DF703"
    severity = Severity.ERROR
    title = "unpicklable object submitted to a multiprocess executor"
    rationale = (
        "MultiprocessExecutor ships tasks and results across process "
        "boundaries by pickling.  Lambdas, nested functions, locally "
        "defined classes, open handles, and objects holding a live "
        "simulation Environment all fail (or worse, serialize kernel "
        "state) — and the failure surfaces only at fan-out time, on the "
        "largest runs.  Build module-level task dataclasses instead."
    )
    analysis_class = _PickleSafety


#: Project-rule registry, in rule-id order (mirrors ``ALL_RULES``).
ALL_PROJECT_RULES: Tuple[ProjectRule, ...] = (
    RngProvenanceRule(),
    WallClockTaintRule(),
    PickleSafetyRule(),
)


__all__ = [
    "ALL_PROJECT_RULES",
    "PickleSafetyRule",
    "ProjectRule",
    "RngProvenanceRule",
    "WallClockTaintRule",
]
