"""Property-based tests: the engine vs Python's ``re`` on generated inputs."""

import re as pyre
import string

from hypothesis import given, settings, strategies as st

from repro.regexlib import Regex
from repro.regexlib.parse import parse

# -- pattern generator: a safe subset shared with `re` ----------------------

_LITERALS = st.sampled_from(list(string.ascii_lowercase + string.digits))


def _char_class() -> st.SearchStrategy[str]:
    ranges = st.sampled_from(["a-f", "0-9", "m-p", "x-z"])
    return st.lists(ranges, min_size=1, max_size=2).map(
        lambda rs: "[" + "".join(rs) + "]"
    )


def _atom() -> st.SearchStrategy[str]:
    return st.one_of(
        _LITERALS,
        st.just("."),
        st.just(r"\d"),
        st.just(r"\w"),
        _char_class(),
    )


def _quantified(atom: str, quant: str) -> str:
    return atom + quant


_QUANTS = st.sampled_from(["", "", "*", "+", "?", "{1,3}", "*?", "+?"])


@st.composite
def patterns(draw) -> str:
    n = draw(st.integers(1, 5))
    parts = []
    for _ in range(n):
        atom = draw(_atom())
        if draw(st.booleans()):
            # A quantified group whose body can match empty (e.g. `(a*)*`)
            # has backtracking-specific capture semantics that NFA engines
            # (this one, RE2) intentionally do not reproduce — only
            # quantify groups with non-empty bodies.
            inner = draw(_QUANTS)
            outer = draw(_QUANTS) if inner == "" else ""
            parts.append("(" + atom + inner + ")" + outer)
        else:
            parts.append(_quantified(atom, draw(_QUANTS)))
    pattern = "".join(parts)
    if draw(st.booleans()):
        alt = draw(_atom())
        pattern = f"(?:{pattern}|{alt})"
    return pattern


_SUBJECTS = st.text(
    alphabet=string.ascii_lowercase + string.digits + " .-", max_size=40
)


@settings(max_examples=150, deadline=None)
@given(pattern=patterns(), subject=_SUBJECTS)
def test_search_agrees_with_re(pattern, subject):
    ours = Regex(pattern).search(subject)
    ref = pyre.search(pattern, subject)
    assert (ours is None) == (ref is None)
    if ref is not None:
        assert ours.span() == ref.span()
        assert ours.groups() == ref.groups()


@settings(max_examples=100, deadline=None)
@given(pattern=patterns(), subject=_SUBJECTS)
def test_dfa_presence_agrees_with_pikevm(pattern, subject):
    regex = Regex(pattern)
    via_pike = regex.search(subject) is not None
    assert regex.test(subject) == via_pike


@settings(max_examples=100, deadline=None)
@given(pattern=patterns())
def test_parse_is_deterministic(pattern):
    first = parse(pattern)
    second = parse(pattern)
    assert first == second


@settings(max_examples=100, deadline=None)
@given(pattern=patterns(), subject=_SUBJECTS)
def test_cost_is_positive_and_bounded(pattern, subject):
    """No backtracking blowup: ops bounded by O(program × subject)."""
    regex = Regex(pattern)
    regex.search(subject)
    ops = regex.ledger.total_ops
    assert ops > 0
    bound = 16 * (len(regex.program) + 4) * (len(subject) + 4)
    assert ops < bound


@settings(max_examples=60, deadline=None)
@given(subject=_SUBJECTS)
def test_findall_roundtrip_literal(subject):
    """findall on a literal equals str.count-style enumeration."""
    hits = Regex("ab").findall(subject)
    assert len(hits) == subject.count("ab")
    assert all(h == "ab" for h in hits)
