"""Fig 7a: scripting time and ePLT, CPU vs DSP, default governor."""

from repro.analysis import render_table
from repro.core.studies import OffloadStudy, OffloadStudyConfig


def run_fig7a():
    study = OffloadStudy(OffloadStudyConfig(n_pages=5, trials=1))
    return study, study.compare_default_governor()


def test_fig7a(benchmark, fig_printer):
    study, cmp = benchmark.pedantic(run_fig7a, rounds=1, iterations=1)
    table = render_table(
        ["Executor", "Scripting time (s)", "ePLT (s)"],
        [["CPU", f"{cmp.cpu_scripting.mean:.2f}", f"{cmp.cpu_eplt.mean:.2f}"],
         ["DSP", f"{cmp.dsp_scripting.mean:.2f}", f"{cmp.dsp_eplt.mean:.2f}"]],
    )
    table += (f"\nePLT improvement: {cmp.eplt_improvement:.1%}"
              f" (paper: 18 %)")
    table += (f"\nregex share of scripting work: "
              f"{study.regex_share_of_scripting():.1%}")
    fig_printer("Fig 7a: JS execution and ePLT with DSP offloading", table)

    # Offloading reduces both scripting time and ePLT at the default
    # governor; the paper reports 18 %, we land in the same band.
    assert cmp.dsp_scripting.mean < cmp.cpu_scripting.mean
    assert 0.05 < cmp.eplt_improvement < 0.30
