"""Unit tests for the link model."""

import pytest

from repro.netstack import Link, LinkSpec
from repro.sim import Environment


def test_spec_defaults_match_testbed():
    spec = LinkSpec()
    assert spec.rtt_s == pytest.approx(0.010)
    assert spec.loss == 0.0
    assert 40e6 < spec.goodput_bps < 55e6


def test_spec_validation():
    with pytest.raises(ValueError):
        LinkSpec(goodput_bps=0)
    with pytest.raises(ValueError):
        LinkSpec(rtt_s=-1)
    with pytest.raises(ValueError):
        LinkSpec(loss=1.0)


def test_spec_rejects_non_finite_values():
    with pytest.raises(ValueError):
        LinkSpec(goodput_bps=float("inf"))
    with pytest.raises(ValueError):
        LinkSpec(goodput_bps=float("nan"))
    with pytest.raises(ValueError):
        LinkSpec(goodput_bps=-5.0)
    with pytest.raises(ValueError):
        LinkSpec(rtt_s=float("inf"))


def test_bdp():
    spec = LinkSpec(goodput_bps=48e6, rtt_s=0.010)
    assert spec.bdp_bytes == pytest.approx(48e6 / 8 * 0.010)


def test_serialization_time():
    env = Environment()
    link = Link(env, LinkSpec(goodput_bps=8e6))  # 1 MB/s
    assert link.serialization_time(1_000_000) == pytest.approx(1.0)


def test_transmit_occupies_line():
    env = Environment()
    link = Link(env, LinkSpec(goodput_bps=8e6))
    done = []

    def sender(name, nbytes):
        yield from link.transmit(nbytes)
        done.append((name, env.now))

    env.process(sender("a", 500_000))
    env.process(sender("b", 500_000))
    env.run()
    assert done == [("a", pytest.approx(0.5)), ("b", pytest.approx(1.0))]
    assert link.bytes_carried == 1_000_000


def test_transmit_rejects_negative():
    env = Environment()
    link = Link(env)

    def bad():
        yield from link.transmit(-1)

    env.process(bad())
    with pytest.raises(ValueError):
        env.run()


@pytest.mark.parametrize("nbytes", [0, -0.5, float("nan"), float("inf"),
                                    "1000"])
def test_transmit_rejects_degenerate_sizes(nbytes):
    env = Environment()
    link = Link(env)

    def bad():
        yield from link.transmit(nbytes)

    env.process(bad())
    with pytest.raises((ValueError, TypeError), match="transmit"):
        env.run()


def test_set_loss_and_rate_factor_validation():
    env = Environment()
    link = Link(env)
    with pytest.raises(ValueError):
        link.set_loss(1.0)
    with pytest.raises(ValueError):
        link.set_loss(-0.1)
    with pytest.raises(ValueError):
        link.set_rate_factor(0.0)
    with pytest.raises(ValueError):
        link.set_rate_factor(1.5)
    with pytest.raises(ValueError):
        link.set_extra_delay(-1.0)


def test_loss_inflates_serialization_time():
    env = Environment()
    link = Link(env, LinkSpec(goodput_bps=8e6))  # 1 MB/s
    link.set_loss(0.5)
    # Retransmission inflation: nbytes / (1 - loss).
    assert link.effective_serialization_time(1_000_000) == pytest.approx(2.0)
    link.set_loss(0.0)
    assert link.effective_serialization_time(1_000_000) == pytest.approx(1.0)


def test_rate_factor_slows_transfer():
    env = Environment()
    link = Link(env, LinkSpec(goodput_bps=8e6))
    link.set_rate_factor(0.5)
    done = []

    def sender():
        yield from link.transmit(1_000_000)
        done.append(env.now)

    env.process(sender())
    env.run(until=10.0)
    assert done == [pytest.approx(2.0)]


def test_bring_up_without_outage_is_a_no_op():
    env = Environment()
    link = Link(env)
    assert not link.is_down
    link.bring_up()
    assert not link.is_down
