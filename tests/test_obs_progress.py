"""Progress renderer: event folding, TTY vs plain rendering, ETA."""

from __future__ import annotations

import io

from repro.obs.progress import ProgressRenderer, _fmt_eta
from repro.obs.runlog import RunLog


class FakeClock:
    def __init__(self):
        self.wall = 100.0

    def __call__(self) -> float:
        return self.wall


class TtyStream(io.StringIO):
    def isatty(self) -> bool:
        return True


def make_renderer(tty: bool = False, columns: int = 120):
    clock = FakeClock()
    stream = TtyStream() if tty else io.StringIO()
    renderer = ProgressRenderer(stream=stream, interval_s=1.0, clock=clock,
                                width=lambda: columns)
    return renderer, stream, clock


def start(renderer, trials=4, jobs=2, resumed=0, experiment="exp"):
    renderer.handle({"event": "run_start", "experiment": experiment,
                     "trials": trials, "resumed": resumed,
                     "config": {"jobs": jobs}})


def test_status_line_folds_the_event_stream():
    renderer, _, clock = make_renderer()
    start(renderer, trials=5, jobs=2)
    renderer.handle({"event": "trial_complete", "trial": 0, "status": "ok"})
    renderer.handle({"event": "trial_complete", "trial": 1,
                     "status": "crash"})
    renderer.handle({"event": "task_retry", "index": 2,
                     "kind": "worker_crash"})
    renderer.handle({"event": "pool_rebuild", "workers": 2})
    renderer.handle({"event": "quarantine", "index": 2,
                     "kind": "worker_crash"})
    clock.wall += 10.0
    line = renderer.status_line()
    assert line.startswith("exp  2/5 trials")
    for fragment in ("1 failed", "1 retries", "1 quarantined",
                     "1 pool rebuilds", "2 workers", "eta"):
        assert fragment in line


def test_clean_serial_line_omits_empty_sections():
    renderer, _, _ = make_renderer()
    start(renderer, trials=3, jobs=1)
    assert renderer.status_line() == "exp  0/3 trials"


def test_run_start_resets_counts_and_seeds_done_with_resumed():
    renderer, _, _ = make_renderer()
    start(renderer, trials=4)
    renderer.handle({"event": "trial_complete", "trial": 0, "status": "ok"})
    renderer.handle({"event": "task_retry", "index": 1, "kind": "x"})
    start(renderer, trials=10, resumed=7, experiment="next")
    assert (renderer.done, renderer.retries, renderer.total) == (7, 0, 10)
    assert renderer.status_line().startswith("next  7/10 trials")


def test_eta_uses_live_completions_not_resumed_ones():
    renderer, _, clock = make_renderer()
    start(renderer, trials=10, resumed=4)
    assert renderer._eta_s() is None  # nothing observed live yet
    clock.wall += 2.0
    renderer.handle({"event": "trial_complete", "trial": 4, "status": "ok"})
    # 1 live completion in 2s -> 0.5/s; 5 remaining -> 10s.
    assert renderer._eta_s() == 10.0


def test_plain_stream_rate_limits_and_appends_lines():
    renderer, stream, clock = make_renderer(tty=False)
    # run_start forces a line on plain streams.
    start(renderer, trials=4, jobs=1)
    renderer.handle({"event": "trial_complete", "trial": 0, "status": "ok"})
    clock.wall += 2.0  # past interval_s
    renderer.handle({"event": "trial_complete", "trial": 1, "status": "ok"})
    lines = stream.getvalue().splitlines()
    assert lines[0] == "exp  0/4 trials"
    assert lines[1].startswith("exp  2/4 trials")  # 1/4 was rate-limited
    assert "\r" not in stream.getvalue()


def test_tty_stream_rewrites_in_place_and_finishes_with_newline():
    renderer, stream, _ = make_renderer(tty=True)
    start(renderer, trials=2)
    renderer.handle({"event": "trial_complete", "trial": 0, "status": "ok"})
    renderer.handle({"event": "trial_complete", "trial": 1, "status": "ok"})
    renderer.handle({"event": "run_end", "completed": 2})
    output = stream.getvalue()
    assert output.count("\r") >= 2
    assert output.endswith("\n")
    # Shorter lines are padded to cover the previous render.
    renderer.finish()  # idempotent once finished
    assert stream.getvalue() == output


def test_tty_line_is_clamped_to_the_terminal_width():
    # Regression: an over-width status line used to be written verbatim;
    # it wrapped onto a second terminal row, and the next \r rewrite only
    # covered the wrapped tail, leaving fragments of the old render.
    renderer, stream, _ = make_renderer(tty=True, columns=30)
    start(renderer, trials=500, jobs=8,
          experiment="faults:web:ge:0.2-long-name")
    renderer.handle({"event": "trial_complete", "trial": 0, "status": "ok"})
    assert len(renderer.status_line()) > 30  # the bug needs an over-width line
    for segment in stream.getvalue().split("\r")[1:]:
        assert len(segment) <= 29  # columns - 1: no wrap, cursor stays on row


def test_tty_padding_never_exceeds_the_terminal_width():
    renderer, stream, _ = make_renderer(tty=True, columns=30)
    start(renderer, trials=500, jobs=8,
          experiment="faults:web:ge:0.2-long-name")
    # A reset to a short line must not pad back out past the clamp.
    start(renderer, trials=2, jobs=1, experiment="s")
    last = stream.getvalue().split("\r")[-1]
    assert len(last) <= 29


def test_plain_stream_never_truncates():
    renderer, stream, _ = make_renderer(tty=False, columns=10)
    start(renderer, trials=500, experiment="faults:web:ge:0.2-long-name")
    assert stream.getvalue().splitlines()[0] == renderer.status_line()


def test_cache_hits_fold_into_a_cached_counter():
    renderer, _, _ = make_renderer()
    start(renderer, trials=4, jobs=1)
    renderer.handle({"event": "cache_hit", "experiment": "exp", "trial": 0})
    renderer.handle({"event": "cache_hit", "experiment": "exp", "trial": 1})
    renderer.handle({"event": "cache_miss", "experiment": "exp", "trial": 2})
    assert renderer.cached == 2
    assert "2 cached" in renderer.status_line()
    start(renderer, trials=3)  # run_start resets the counter
    assert "cached" not in renderer.status_line()


def test_renderer_works_as_a_runlog_listener(tmp_path):
    renderer, stream, _ = make_renderer()
    with RunLog(tmp_path / "run.jsonl", listeners=[renderer.handle]) as log:
        log.emit("run_start", experiment="wired", trials=1, resumed=0,
                 config={"jobs": 1})
        log.emit("trial_complete", trial=0, status="ok",
                 host={"wall_s": 0.1})
        log.emit("run_end", completed=1)
    assert "wired  1/1 trials" in stream.getvalue()


def test_fmt_eta_ranges():
    assert _fmt_eta(12.4) == "12s"
    assert _fmt_eta(75) == "1m15s"
    assert _fmt_eta(3 * 3600 + 125) == "3h02m"
    assert _fmt_eta(-1) == "?"
    assert _fmt_eta(float("nan")) == "?"
