"""Table-1 catalog schema rule (CAT3xx).

``repro.device.catalog`` is data masquerading as code: each
``DeviceSpec(...)`` literal is one row of the paper's Table 1, and every
figure is keyed off those rows. A missing field or an implausible value
(3000 GB of RAM, a $2 flagship) corrupts every downstream sweep, so the
schema is enforced statically.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileContext, Rule, call_name

#: DeviceSpec fields in positional order (mirrors the dataclass).
_FIELD_ORDER = (
    "name", "soc", "clusters", "memory_gb", "os_version",
    "gpu", "release", "cost_usd",
)

#: Every Table 1 row must carry these.
_REQUIRED = frozenset(_FIELD_ORDER)

#: Sanity ranges for literal numeric fields (inclusive).
_RANGES = {
    "memory_gb": (0.25, 32.0),
    "cost_usd": (10.0, 5000.0),
    "display_height": (240.0, 4320.0),
}


def _literal_number(node: ast.AST) -> Optional[float]:
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool):
        return float(node.value)
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
    ):
        return -float(node.operand.value)
    return None


class CatalogSchemaRule(Rule):
    """CAT301: DeviceSpec rows carry all Table 1 fields with sane values."""

    id = "CAT301"
    severity = Severity.ERROR
    title = "incomplete or implausible device catalog entry"
    rationale = (
        "Fig 2-7 benchmarks index devices by these spec fields; a row "
        "missing os_version or carrying an out-of-range memory_gb shifts "
        "every cross-device comparison without any runtime error."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or name.split(".")[-1] != "DeviceSpec":
                continue
            yield from self._check_entry(context, node)

    def _check_entry(
        self, context: FileContext, node: ast.Call
    ) -> Iterator[Finding]:
        provided: Dict[str, ast.AST] = {}
        has_star_kwargs = False
        for index, arg in enumerate(node.args):
            if index < len(_FIELD_ORDER):
                provided[_FIELD_ORDER[index]] = arg
        for keyword in node.keywords:
            if keyword.arg is None:
                has_star_kwargs = True
            else:
                provided[keyword.arg] = keyword.value

        if not has_star_kwargs:
            missing = sorted(_REQUIRED - provided.keys())
            if missing:
                yield self.finding(
                    context, node,
                    f"DeviceSpec entry missing required Table 1 field(s): "
                    f"{', '.join(missing)}",
                )

        for field, (low, high) in sorted(_RANGES.items()):
            value_node = provided.get(field)
            if value_node is None:
                continue
            value = _literal_number(value_node)
            if value is not None and not low <= value <= high:
                yield self.finding(
                    context, value_node,
                    f"DeviceSpec.{field}={value:g} outside plausible range "
                    f"[{low:g}, {high:g}]",
                )

        name_node = provided.get("name")
        if isinstance(name_node, ast.Constant) and not (
            isinstance(name_node.value, str) and name_node.value.strip()
        ):
            yield self.finding(
                context, name_node,
                "DeviceSpec.name must be a non-empty string",
            )


__all__ = ["CatalogSchemaRule"]
