#!/usr/bin/env python3
"""The §4.2 prototype end-to-end: regex offloading to the DSP.

Walks through the paper's pipeline at every level:

1. run a real URL-filter regex through the from-scratch engine and show
   the measured Pike-VM / DFA operation counts;
2. price that call on the Pixel2's CPU and on its Hexagon DSP;
3. load the top sports pages with and without the offloading executor
   and compare ePLT, scripting time, and energy.

Run:  python examples/dsp_offload_demo.py
"""

import random

from repro.device import Device, PIXEL2
from repro.dsp import DspCostModel, DspScriptExecutor, FastRpcChannel
from repro.jsruntime import CpuCostModel, RegexProfiler
from repro.netstack import Link
from repro.sim import Environment
from repro.web import BrowserEngine
from repro.workloads import generate_corpus
from repro.workloads.regexcorpus import RegexWorkloadFactory, synth_url_list


def step1_measure_regex() -> None:
    print("== 1. measure a URL-filter regex through the engine ==")
    pattern = r"(?:doubleclick|adservice|analytics|tracker|pixel)\."
    subject = synth_url_list(random.Random(4), 30)
    call = RegexProfiler().profile(pattern, subject, "test", repeats=80)
    print(f"pattern  {pattern}")
    print(f"subject  {call.subject_chars} chars of URL list, x{call.repeats}")
    print(f"measured {call.pike_ops} Pike-VM ops, {call.dfa_ops} DFA ops/call")

    cpu = CpuCostModel()
    dsp = DspCostModel()
    cpu_ns = cpu.call_ops(call) / (2457e6 * 2.2) * 1e6
    dsp_ns = dsp.call_cycles(call) / 787e6 * 1e6
    print(f"CPU (Kryo280 @2.46GHz): {cpu_ns:8.1f} us")
    print(f"DSP (Hexagon @787MHz):  {dsp_ns:8.1f} us "
          f"({cpu_ns / dsp_ns:.1f}x faster)\n")


def step2_page_loads() -> None:
    print("== 2. sports-page loads, CPU vs DSP executor ==")
    pages = generate_corpus(4, categories=("sports",),
                            factory=RegexWorkloadFactory())

    def load(page, offload):
        env = Environment()
        device = Device(env, PIXEL2, governor="OD")
        link = Link(env)
        channel = None
        if offload:
            channel = FastRpcChannel(env, device)
            browser = BrowserEngine(env, device, link,
                                    executor=DspScriptExecutor(channel))
        else:
            browser = BrowserEngine(env, device, link)
        result = env.run(env.process(browser.load(page)))
        energy = result.energy_j + (channel.energy_j if channel else 0.0)
        return result, energy

    for offload in (False, True):
        plts, scripts, energies = [], [], []
        for page in pages:
            result, energy = load(page, offload)
            plts.append(result.plt)
            scripts.append(result.script_time)
            energies.append(energy)
        n = len(pages)
        label = "DSP offload" if offload else "CPU only   "
        print(f"{label}: ePLT {sum(plts) / n:5.2f} s | "
              f"scripting {sum(scripts) / n:5.2f} s | "
              f"energy {sum(energies) / n:5.1f} J")
    print("\nThe offloaded run finishes pages faster and cheaper — the "
          "paper's 18%-PLT / 4x-energy headline, reproduced in shape.")


if __name__ == "__main__":
    step1_measure_regex()
    step2_page_loads()
