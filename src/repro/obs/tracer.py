"""Sim-time tracing: typed spans and instant events keyed to ``env.now``.

The tracer is the qualitative half of :mod:`repro.obs`: it records *what
happened when* in simulated time.  Because every timestamp comes from the
simulation clock — never the host clock — a trace is part of the replay
contract: the same seed produces a byte-identical exported trace.

Two event shapes:

* :class:`Span` — a named interval ``[start, end]`` with a category and
  optional structured args (Chrome ``trace_event`` "complete" events);
* :class:`Instant` — a named point in time (governor frequency steps,
  fault injections, ABR decisions).

Disabled tracing is the common case, so it must cost nothing: call sites
hold :data:`NULL_TRACER` (or check ``tracer.enabled``), whose methods are
allocation-free no-ops sharing one reusable context manager.  The
preferred recording API is the ``with tracer.span(...)`` context manager
— it closes the span on *any* exit path, including exceptions and process
interrupts, and annotates the span with the exception type when one
escapes.  The raw :meth:`Tracer.begin_span`/:meth:`Tracer.end_span` pair
exists for the context manager's own plumbing and is flagged outside this
package by simlint rule OBS501.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Protocol

Args = Optional[Dict[str, Any]]


class SimClock(Protocol):
    """Anything with a ``now`` — structurally, a simulation environment.

    The tracer only ever *reads* the clock, so :mod:`repro.obs` needs no
    import of (and creates no cycle with) :mod:`repro.sim`.
    """

    @property
    def now(self) -> float: ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class Span:
    """One closed interval of simulated time."""

    name: str
    cat: str
    start: float
    end: float
    args: Args = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """One point event at a simulated instant."""

    name: str
    cat: str
    t: float
    args: Args = None


@dataclass
class SpanHandle:
    """An open span returned by ``begin_span``; closed by ``end_span``."""

    name: str
    cat: str
    start: float
    args: Args = None


class _SpanContext:
    """Context manager that closes a span on every exit path."""

    __slots__ = ("_tracer", "_handle")

    def __init__(self, tracer: "Tracer", handle: SpanHandle):
        self._tracer = tracer
        self._handle = handle

    def __enter__(self) -> SpanHandle:
        return self._handle

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None:
            args = dict(self._handle.args or {})
            args["error"] = exc_type.__name__
            self._handle.args = args
        self._tracer.end_span(self._handle)
        return False


class _NullSpanContext:
    """Shared, stateless no-op context manager (zero per-call allocation)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()
_NULL_HANDLE = SpanHandle(name="", cat="", start=0.0)


class Tracer:
    """Records spans and instants stamped with simulated time."""

    enabled: bool = True

    def __init__(self, clock: SimClock):
        self._clock = clock
        self.spans: list[Span] = []
        self.instants: list[Instant] = []

    @property
    def now(self) -> float:
        return self._clock.now

    # -- recording --------------------------------------------------------

    def span(self, name: str, cat: str = "app",
             args: Args = None) -> _SpanContext:
        """Open a span closed automatically at ``with``-block exit."""
        return _SpanContext(
            self, SpanHandle(name=name, cat=cat, start=self._clock.now,
                             args=args),
        )

    def begin_span(self, name: str, cat: str = "app",
                   args: Args = None) -> SpanHandle:
        """Open a span by hand.  Prefer :meth:`span` (simlint OBS501)."""
        return SpanHandle(name=name, cat=cat, start=self._clock.now, args=args)

    def end_span(self, handle: SpanHandle) -> Span:
        """Close a handle opened by :meth:`begin_span` at the current time."""
        span = Span(name=handle.name, cat=handle.cat, start=handle.start,
                    end=self._clock.now, args=handle.args)
        self.spans.append(span)
        return span

    def complete(self, name: str, cat: str, start: float,
                 end: Optional[float] = None, args: Args = None) -> Span:
        """Record a span retroactively (both endpoints already known)."""
        span = Span(name=name, cat=cat, start=start,
                    end=self._clock.now if end is None else end, args=args)
        self.spans.append(span)
        return span

    def instant(self, name: str, cat: str = "app",
                args: Args = None) -> Instant:
        """Record a point event at the current simulated time."""
        event = Instant(name=name, cat=cat, t=self._clock.now, args=args)
        self.instants.append(event)
        return event

    # -- introspection ----------------------------------------------------

    def categories(self) -> tuple[str, ...]:
        """Every category seen so far, sorted."""
        return tuple(sorted({s.cat for s in self.spans}
                            | {i.cat for i in self.instants}))

    def counts_by_category(self) -> dict[str, int]:
        """Event counts (spans + instants) per category, sorted by name."""
        counts: dict[str, int] = {}
        for span in self.spans:
            counts[span.cat] = counts.get(span.cat, 0) + 1
        for inst in self.instants:
            counts[inst.cat] = counts.get(inst.cat, 0) + 1
        return {cat: counts[cat] for cat in sorted(counts)}

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)


class NullTracer:
    """Disabled tracer: every method is an allocation-free no-op.

    The single instance :data:`NULL_TRACER` is what
    :func:`repro.obs.tracer_of` hands to call sites in environments where
    :func:`repro.obs.install` never ran — the hot-path cost of disabled
    tracing is one attribute load and one no-op call.
    """

    __slots__ = ()
    enabled: bool = False

    def span(self, name: str, cat: str = "app",
             args: Args = None) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def begin_span(self, name: str, cat: str = "app",
                   args: Args = None) -> SpanHandle:
        return _NULL_HANDLE

    def end_span(self, handle: SpanHandle) -> None:
        return None

    def complete(self, name: str, cat: str, start: float,
                 end: Optional[float] = None, args: Args = None) -> None:
        return None

    def instant(self, name: str, cat: str = "app",
                args: Args = None) -> None:
        return None


NULL_TRACER = NullTracer()

__all__ = [
    "Instant",
    "NULL_TRACER",
    "NullTracer",
    "SimClock",
    "Span",
    "SpanHandle",
    "Tracer",
]
