#!/usr/bin/env python3
"""Observability walkthrough: trace one page load, inspect it, export it.

Three short demos of ``repro.obs``:

1. an instrumented page load — spans per subsystem, metrics snapshot;
2. the replay contract — same seed exports byte-identical trace JSON;
3. the critical path rebuilt from the trace alone, cross-checked
   against the in-memory activity records.

Run:  python examples/trace_web_study.py
Then open trace_web_study.json in https://ui.perfetto.dev
"""

from repro.analysis.critpath import extract_critical_path
from repro.core.tracing import run_traced_trial
from repro.device import NEXUS4, Device
from repro.netstack import Link, LinkSpec
from repro.obs import chrome_trace_json, install, text_summary, write_chrome_trace
from repro.sim import Environment
from repro.web import BrowserEngine
from repro.workloads import generate_corpus

OUT = "trace_web_study.json"


def traced_load(seed: int):
    """One instrumented Nexus 4 page load; returns (tracer, metrics, result)."""
    env = Environment()
    tracer, metrics = install(env)  # before building anything else
    device = Device(env, NEXUS4, governor="OD")
    browser = BrowserEngine(env, device, Link(env, LinkSpec()))
    page = generate_corpus(1, seed=seed)[0]
    result = env.run(env.process(browser.load(page)))
    return tracer, metrics, result


def main() -> None:
    # -- 1. one traced load, summarized -----------------------------------
    tracer, metrics, result = traced_load(seed=7)
    print(text_summary(tracer, metrics))
    print(f"\nPLT = {result.plt:.2f} s; spans+instants per subsystem:")
    for category, count in tracer.counts_by_category().items():
        print(f"  {category:>8}: {count}")
    write_chrome_trace(tracer, OUT)
    print(f"[wrote {OUT} — open it in https://ui.perfetto.dev]")

    # -- 2. traces are part of the replay contract ------------------------
    again, _, _ = traced_load(seed=7)
    print("\nSame seed exports byte-identical trace JSON:",
          chrome_trace_json(tracer) == chrome_trace_json(again))

    # -- 3. the critical path, rebuilt from the trace alone ---------------
    traced = run_traced_trial("fig2a", seed=7)
    from_records = extract_critical_path([], plt=traced.value,
                                         trace=traced.tracer.spans)
    print(f"\nCritical path from trace spans only: "
          f"{len(from_records.activities)} activities, "
          f"compute {from_records.compute_time:.2f} s / "
          f"network {from_records.network_time:.2f} s")
    print("Kind breakdown:")
    for kind, seconds in sorted(from_records.kind_breakdown.items()):
        print(f"  {kind:>14}: {seconds:.3f} s")


if __name__ == "__main__":
    main()
