"""Fig 7c: ePLT with/without DSP offloading at low pinned clocks."""

from repro.analysis import render_table
from repro.core.studies import OffloadStudy, OffloadStudyConfig


def run_fig7c():
    study = OffloadStudy(OffloadStudyConfig(n_pages=4, trials=1))
    return study.eplt_vs_clock(clocks_mhz=(300, 441, 595, 748, 883))


def test_fig7c(benchmark, fig_printer):
    points = benchmark.pedantic(run_fig7c, rounds=1, iterations=1)
    table = render_table(
        ["Clock (MHz)", "CPU ePLT (s)", "DSP ePLT (s)", "Improvement"],
        [[p.clock_mhz, f"{p.cpu_eplt.mean:.2f}", f"{p.dsp_eplt.mean:.2f}",
          f"{p.improvement:.1%}"] for p in points],
    )
    fig_printer("Fig 7c: ePLT vs clock with and without offloading", table)

    # Paper: offloading helps most at slow clocks (up to ~25 %).
    assert points[0].improvement > points[-1].improvement
    assert 0.15 < points[0].improvement < 0.40
    for p in points:
        assert p.dsp_eplt.mean < p.cpu_eplt.mean
