"""Population fleet simulation: sampler, aggregator, and runner contracts.

The load-bearing guarantees, in test order:

* config validation rejects every malformed knob with a clear message;
* the session sampler is a pure function of ``(config, index)``;
* ``StreamingStat`` matches :func:`repro.analysis.stats.summarize` on
  any ordering of any value stream (hypothesis), and Chan-merging
  chunked accumulators matches one streaming pass;
* aggregator histograms use the exact :mod:`repro.obs.metrics` snapshot
  shape, so :func:`merge_snapshots` merges them unchanged;
* the fleet runner's aggregate JSON is byte-identical across worker
  counts, under injected chaos, and across cold/warm cache runs, while
  its in-memory state stays O(tiers × metrics × buckets).
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import cdf_points, summarize
from repro.cache import TrialCache
from repro.obs.metrics import merge_snapshots
from repro.obs.runlog import RunLog
from repro.parallel import get_executor
from repro.parallel.chaos import (
    CHAOS_CRASH,
    ChaosExecutor,
    ChaosFault,
    ChaosPlan,
)
from repro.population import (
    ALL_TIER,
    DEFAULT_WORKLOAD_MIX,
    FleetAggregator,
    FleetRunner,
    METRIC_BUCKETS,
    PopulationConfig,
    SessionSampler,
    StreamingStat,
    WORKLOAD_METRICS,
    WORKLOADS,
    default_market,
)

finite = st.floats(min_value=0.0, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
streams = st.lists(finite, min_size=1, max_size=60)

#: Small-but-real fleet shape shared by the runner tests.
SMALL = dict(sessions=10, n_pages=2, video_s=8.0, call_s=5.0)


def small_config(seed: int = 3) -> PopulationConfig:
    return PopulationConfig(seed=seed, **SMALL)


# -- config validation -------------------------------------------------------


@pytest.mark.parametrize("kwargs", (
    dict(sessions=0),
    dict(seed=-1),
    dict(n_pages=0),
    dict(video_s=0.0),
    dict(call_s=-1.0),
    dict(tiers=()),
    dict(workload_mix=()),
    dict(workload_mix=(("web", 0.5), ("carrier-pigeon", 0.5))),
    dict(workload_mix=(("web", 0.0),)),
    dict(networks=()),
))
def test_config_rejects_malformed_knobs(kwargs):
    with pytest.raises(ValueError):
        PopulationConfig(**kwargs)


def test_config_rejects_duplicate_tier_names():
    tier = default_market()[0]
    with pytest.raises(ValueError):
        PopulationConfig(tiers=(tier, tier))


def test_experiment_name_binds_the_seed():
    assert PopulationConfig(seed=7).experiment == "population@7"


def test_default_market_shape():
    tiers = default_market()
    assert [t.name for t in tiers] == ["low", "mid", "high", "legacy"]
    assert all(t.share > 0 and t.devices for t in tiers)
    assert ALL_TIER not in {t.name for t in tiers}


# -- sampler ------------------------------------------------------------------


def test_sampler_is_deterministic():
    config = small_config()
    first = [SessionSampler(config).sample(i) for i in range(config.sessions)]
    second = [SessionSampler(config).sample(i) for i in range(config.sessions)]
    assert first == second


def test_sampler_draws_from_the_configured_market():
    config = small_config()
    tiers = {t.name: t for t in config.tiers}
    networks = {n.name for n in config.networks}
    for index in range(config.sessions):
        spec = SessionSampler(config).sample(index)
        assert spec.index == index
        assert spec.workload in WORKLOADS
        assert spec.network in networks
        assert spec.device in tiers[spec.tier].devices
        assert 0 <= spec.page_index < config.n_pages


def test_sampler_seed_namespaces_are_per_workload():
    config = small_config()
    specs = [SessionSampler(config).sample(i) for i in range(config.sessions)]
    # Sim seeds must be unique per session — shared seeds would correlate
    # sessions that the model treats as independent users.
    assert len({s.seed for s in specs}) == len(specs)


def test_sampler_rejects_out_of_range_index():
    sampler = SessionSampler(small_config())
    with pytest.raises(ValueError):
        sampler.sample(SMALL["sessions"])
    with pytest.raises(ValueError):
        sampler.sample(-1)


def test_sampler_seed_changes_the_mix():
    a = [SessionSampler(small_config(seed=1)).sample(i) for i in range(10)]
    b = [SessionSampler(small_config(seed=2)).sample(i) for i in range(10)]
    assert a != b


# -- StreamingStat equivalence (hypothesis) -----------------------------------


@given(streams, st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_streaming_stat_matches_batch_summarize(values, rng):
    shuffled = list(values)
    rng.shuffle(shuffled)
    stat = StreamingStat()
    for value in shuffled:
        stat.add(value)
    batch = summarize(values)
    assert stat.count == batch.n
    assert stat.minimum == batch.minimum
    assert stat.maximum == batch.maximum
    assert math.isclose(stat.mean, batch.mean, rel_tol=1e-9, abs_tol=1e-9)
    assert math.isclose(stat.stdev, batch.stdev, rel_tol=1e-6, abs_tol=1e-9)


@given(streams, st.integers(min_value=1, max_value=59))
@settings(max_examples=100, deadline=None)
def test_streaming_stat_chan_merge_matches_one_pass(values, split):
    split = min(split, len(values))
    left, right = StreamingStat(), StreamingStat()
    for value in values[:split]:
        left.add(value)
    for value in values[split:]:
        right.add(value)
    left.merge(right)
    batch = summarize(values)
    assert left.count == batch.n
    assert math.isclose(left.mean, batch.mean, rel_tol=1e-9, abs_tol=1e-9)
    assert math.isclose(left.stdev, batch.stdev, rel_tol=1e-6, abs_tol=1e-9)


def test_streaming_stat_empty_stream_renders_zeros():
    assert StreamingStat().as_dict() == {
        "n": 0, "mean": 0.0, "stdev": 0.0, "min": 0.0, "max": 0.0}


# -- aggregator ----------------------------------------------------------------


def observe_values(aggregator: FleetAggregator, values, *, tier="mid",
                   workload="web", metric="plt_s"):
    for value in values:
        aggregator.observe(tier=tier, workload=workload, network="wifi",
                           status="ok", metrics={metric: value})


@given(streams, st.randoms(use_true_random=False))
@settings(max_examples=50, deadline=None)
def test_aggregator_series_matches_batch_summarize(values, rng):
    shuffled = list(values)
    rng.shuffle(shuffled)
    aggregator = FleetAggregator()
    observe_values(aggregator, shuffled)
    entry = aggregator.snapshot()["series"]["web"]["plt_s"][ALL_TIER]
    batch = summarize(values)
    assert entry["n"] == batch.n
    assert entry["min"] == batch.minimum
    assert entry["max"] == batch.maximum
    assert math.isclose(entry["mean"], batch.mean, rel_tol=1e-9, abs_tol=1e-9)
    assert entry["hist"]["count"] == len(values)


@given(streams, st.integers(min_value=1, max_value=59))
@settings(max_examples=50, deadline=None)
def test_aggregator_merge_matches_single_stream(values, split):
    split = min(split, len(values))
    whole, left, right = (FleetAggregator() for _ in range(3))
    observe_values(whole, values)
    observe_values(left, values[:split])
    observe_values(right, values[split:])
    left.merge(right)
    whole_snap, merged_snap = whole.snapshot(), left.snapshot()
    assert merged_snap["sessions"] == whole_snap["sessions"]
    whole_entry = whole_snap["series"]["web"]["plt_s"][ALL_TIER]
    merged_entry = merged_snap["series"]["web"]["plt_s"][ALL_TIER]
    # Bucket populations are integer counts: chunked merging is exact.
    # The histogram's running sum is a float accumulation, so chunk
    # order can move it by an ulp — same tolerance as the mean.
    assert merged_entry["hist"]["buckets"] == whole_entry["hist"]["buckets"]
    assert merged_entry["hist"]["count"] == whole_entry["hist"]["count"]
    assert math.isclose(merged_entry["hist"]["sum"],
                        whole_entry["hist"]["sum"],
                        rel_tol=1e-9, abs_tol=1e-9)
    assert math.isclose(merged_entry["mean"], whole_entry["mean"],
                        rel_tol=1e-9, abs_tol=1e-9)


@given(streams, st.integers(min_value=1, max_value=59))
@settings(max_examples=50, deadline=None)
def test_aggregator_histograms_merge_via_merge_snapshots(values, split):
    split = min(split, len(values))
    whole, left, right = (FleetAggregator() for _ in range(3))
    observe_values(whole, values)
    observe_values(left, values[:split])
    observe_values(right, values[split:])

    def hist_snapshot(aggregator):
        entry = aggregator.snapshot()["series"].get("web", {}).get(
            "plt_s", {}).get(ALL_TIER)
        return {} if entry is None else {"population.web.plt_s":
                                         entry["hist"]}

    merged = merge_snapshots([hist_snapshot(left), hist_snapshot(right)])
    expected = hist_snapshot(whole)
    assert set(merged) == set(expected)
    for name, hist in expected.items():
        assert merged[name]["buckets"] == hist["buckets"]
        assert merged[name]["count"] == hist["count"]
        assert math.isclose(merged[name]["sum"], hist["sum"],
                            rel_tol=1e-9, abs_tol=1e-9)


def test_aggregator_counts_failures_without_metrics():
    aggregator = FleetAggregator()
    aggregator.observe(tier="low", workload="web", network="lte",
                       status="crash", metrics={})
    aggregator.observe(tier="low", workload="web", network="lte",
                       status="ok", metrics={"plt_s": 1.0})
    snap = aggregator.snapshot()
    assert snap["sessions"] == 2
    assert snap["completed"] == 1
    assert snap["failures"] == {"crash": 1}
    assert snap["mix"]["tiers"] == {"low": 2}
    assert snap["series"]["web"]["plt_s"][ALL_TIER]["n"] == 1


def test_aggregator_rejects_unknown_metric():
    with pytest.raises(ValueError):
        FleetAggregator().observe(tier="low", workload="web", network="lte",
                                  status="ok", metrics={"qoe_magic": 1.0})


def test_workload_metric_tables_are_consistent():
    assert set(WORKLOAD_METRICS) == set(WORKLOADS)
    assert set(WORKLOADS) == {name for name, _ in DEFAULT_WORKLOAD_MIX}
    for metrics in WORKLOAD_METRICS.values():
        for metric in metrics:
            bounds = METRIC_BUCKETS[metric]
            assert list(bounds) == sorted(bounds)


# -- fleet runner --------------------------------------------------------------


def test_fleet_runner_small_run_accounts_for_every_session():
    report = FleetRunner(small_config()).run()
    assert report.sessions == SMALL["sessions"]
    assert report.completed + sum(report.failures.values()) == report.sessions
    mix = report.aggregate["mix"]
    assert sum(mix["tiers"].values()) == report.sessions
    assert sum(mix["workloads"].values()) == report.sessions
    assert sum(mix["networks"].values()) == report.sessions


def test_fleet_runner_emits_runlog_lifecycle(tmp_path):
    path = tmp_path / "run.jsonl"
    runlog = RunLog(path)
    FleetRunner(small_config(), runlog=runlog).run()
    runlog.close()
    events = [json.loads(line) for line in
              path.read_text().strip().splitlines()]
    assert events[0]["event"] == "run_start"
    assert events[0]["experiment"] == "population@3"
    assert events[0]["trials"] == SMALL["sessions"]
    assert events[-1]["event"] == "run_end"
    completions = [e for e in events if e["event"] == "trial_complete"]
    assert sorted(e["trial"] for e in completions) == \
        list(range(SMALL["sessions"]))


def test_fleet_runner_jobs2_aggregate_is_byte_identical():
    serial = FleetRunner(small_config()).run().to_json()
    parallel = FleetRunner(small_config(),
                           executor=get_executor(2)).run().to_json()
    assert parallel == serial


def test_fleet_runner_chaos_crash_retry_is_byte_identical():
    # Attempt-0 faults are retry-recoverable: the re-dispatched session
    # recomputes the same pure function of its index.
    serial = FleetRunner(small_config()).run().to_json()
    plan = ChaosPlan(faults=(ChaosFault(index=1, kind=CHAOS_CRASH),))
    executor = ChaosExecutor(2, plan, poll_interval_s=0.02)
    chaotic = FleetRunner(small_config(), executor=executor).run()
    assert chaotic.quarantined == 0
    assert chaotic.to_json() == serial


def test_fleet_runner_quarantine_keeps_accounting_complete():
    # Faulting one session on every dispatch attempt exhausts its
    # retries; the fleet absorbs it as a failure, never an exception.
    # (Each crash also breaks the pool, so a co-resident session can
    # burn retries as collateral — the count is >= 1, not == 1.)
    plan = ChaosPlan(faults=tuple(
        ChaosFault(index=2, kind=CHAOS_CRASH, attempt=a) for a in range(10)))
    executor = ChaosExecutor(2, plan, poll_interval_s=0.02)
    report = FleetRunner(small_config(), executor=executor).run()
    assert report.quarantined >= 1
    assert any(q.index == 2 for q in report.supervision.quarantined)
    assert report.sessions == SMALL["sessions"]
    assert report.completed + sum(report.failures.values()) == report.sessions
    assert sum(report.aggregate["mix"]["tiers"].values()) == report.sessions


def test_fleet_runner_warm_cache_replays_byte_identically(tmp_path):
    cache = TrialCache(tmp_path / "cache")
    cold = FleetRunner(small_config(), cache=cache).run().to_json()
    warm_cache = TrialCache(tmp_path / "cache")
    warm = FleetRunner(small_config(), cache=warm_cache).run().to_json()
    assert warm == cold
    assert warm_cache.stats.hits == SMALL["sessions"]
    assert warm_cache.stats.misses == 0


def test_aggregate_state_is_independent_of_session_count():
    shapes = []
    for sessions in (8, 16):
        config = PopulationConfig(seed=3, sessions=sessions, n_pages=2,
                                  video_s=8.0, call_s=5.0)
        runner = FleetRunner(config)
        aggregator = FleetAggregator()
        sampler = SessionSampler(config)
        from repro.population.fleet import run_session
        for index in range(sessions):
            result = run_session(config, runner.corpus,
                                 sampler.sample(index))
            aggregator.observe(tier=result.tier, workload=result.workload,
                               network=result.network, status=result.status,
                               metrics=result.metrics)
        shapes.append(len(aggregator._series))
    # Doubling the fleet grows counts, never the number of live series.
    assert shapes[0] >= 1
    assert shapes[1] <= len(WORKLOADS) * 2 * (len(default_market()) + 1)
    assert abs(shapes[1] - shapes[0]) <= 4


def test_report_quantiles_and_cdf_read_the_histograms():
    report = FleetRunner(small_config()).run()
    for workload, metrics in WORKLOAD_METRICS.items():
        for metric in metrics:
            entry = report.series(workload, metric).get(ALL_TIER)
            if entry is None:
                continue
            points = report.cdf(workload, metric)
            probs = [p for _, p in points]
            assert probs == sorted(probs)
            assert all(0.0 <= p <= 1.0 for p in probs)
            p50 = report.quantile(workload, metric, 0.5)
            p99 = report.quantile(workload, metric, 0.99)
            assert p50 <= p99


def test_histogram_cdf_matches_empirical_cdf_at_bucket_bounds():
    values = [0.3, 0.7, 1.2, 1.2, 2.5, 9.0]
    aggregator = FleetAggregator()
    observe_values(aggregator, values)
    entry = aggregator.snapshot()["series"]["web"]["plt_s"][ALL_TIER]
    finite = sorted(float(label)
                    for label in entry["hist"]["buckets"]
                    if label != "+Inf")
    empirical = cdf_points(values)

    def empirical_at(bound: float) -> float:
        best = 0.0
        for value, prob in empirical:
            if value <= bound:
                best = prob
        return best

    cumulative = 0
    for bound in finite:
        cumulative += entry["hist"]["buckets"][f"{bound:g}"]
        assert cumulative / len(values) == pytest.approx(empirical_at(bound))
