"""Regex patterns and subjects found in real page scripts.

The paper traces the slowest (news/sports) pages and finds ~20 % of
scripting time in regular-expression evaluation, dominated by URL matching
and list operations (ad/tracker filtering).  The factory below builds
exactly those call shapes: each pattern is drawn from a fixed library of
realistic pattern strings, and subjects are synthesized from the page's own
URLs, user-agent strings, cookies, and text snippets.

All costs are *measured* by running the calls through
:mod:`repro.regexlib` (via :class:`~repro.jsruntime.profile.RegexProfiler`),
not assumed.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.jsruntime import RegexCall, RegexProfiler

#: Pattern library: (name, pattern, mode).  Modes mirror how the pattern is
#: used in page scripts: 'test' for filters (DFA-able), 'search'/'findall'
#: when the script needs the span or all matches (Pike VM).
PATTERN_LIBRARY: tuple[tuple[str, str, str], ...] = (
    ("url-parse", r"https?://([\w.-]+)(/[\w./%-]*)?", "search"),
    ("url-filter", r"(?:doubleclick|adservice|analytics|tracker|pixel)\.", "test"),
    ("static-asset", r"\.(?:png|jpg|jpeg|gif|webp|svg)$", "test"),
    ("article-path", r"^/(?:articles|video|story|news)/\d{4}/", "test"),
    ("query-params", r"[?&]([^=&]+)=([^&]*)", "findall"),
    ("email", r"[\w.+-]+@[\w-]+\.[a-zA-Z]{2,6}", "search"),
    ("iso-date", r"\d{4}-\d{2}-\d{2}", "search"),
    ("ua-mobile", r"(?:Android|iPhone|iPad|Mobile|Tablet)", "test"),
    ("ua-version", r"(?:Chrome|Firefox|Safari)/(\d+)\.(\d+)", "search"),
    ("cookie-get", r"(?:^|; )sessionid=([^;]*)", "search"),
    ("token-scan", r"[A-Za-z]+\d{2,}", "findall"),
    ("whitespace-trim", r"^\s+|\s+$", "search"),
    ("hex-color", r"#[0-9a-fA-F]{6}\b", "search"),
    ("semver", r"(\d+)\.(\d+)\.(\d+)", "search"),
    ("html-tag", r"<(\w+)[^>]*>", "findall"),
)

_USER_AGENTS = (
    "Mozilla/5.0 (Linux; Android 8.0.0; Pixel 2 Build/OPD1) AppleWebKit/537.36 "
    "(KHTML, like Gecko) Chrome/63.0.3239.111 Mobile Safari/537.36",
    "Mozilla/5.0 (Linux; Android 6.0; Intex Amaze Plus) AppleWebKit/537.36 "
    "(KHTML, like Gecko) Chrome/63.0.3239.111 Mobile Safari/537.36",
)

_COOKIE = (
    "sessionid=7f3a9c2e11d84b6f; _ga=GA1.2.1042.15305; consent=yes; "
    "region=us-east; theme=dark; visits=17; ab_bucket=treatment-7"
)

_HOSTS = (
    "cdn.example-news.com", "static.sportsfeed.tv", "img.shopnow.io",
    "api.healthhub.org", "edge.bizwire.net", "ads.trackerhub.com",
    "analytics.metricsrv.com", "fonts.webtype.cdn",
)

_PATH_WORDS = (
    "articles", "video", "story", "news", "scores", "live", "assets",
    "static", "img", "js", "css", "api", "v2", "widgets", "embed",
)

_EXTENSIONS = (".js", ".css", ".png", ".jpg", ".webp", ".svg", ".html", "")


def synth_url(rng: random.Random) -> str:
    """One plausible URL."""
    host = rng.choice(_HOSTS)
    depth = rng.randint(1, 4)
    parts = [rng.choice(_PATH_WORDS) for _ in range(depth)]
    if rng.random() < 0.4:
        parts.append(str(rng.randint(2015, 2018)))
    name = f"res{rng.randint(1, 9999)}{rng.choice(_EXTENSIONS)}"
    url = f"https://{host}/{'/'.join(parts)}/{name}"
    if rng.random() < 0.3:
        url += f"?id={rng.randint(1, 10_000)}&ref={rng.choice(_PATH_WORDS)}"
    return url


def synth_url_list(rng: random.Random, count: int) -> str:
    """A newline-joined URL list (the subject of filter scans)."""
    return "\n".join(synth_url(rng) for _ in range(count))


def synth_text(rng: random.Random, words: int) -> str:
    """Prose-like text with embedded dates/emails/colors."""
    vocab = (
        "the match report covers", "score", "update", "live", "team",
        "breaking", "story", "contact us at press@example-news.com",
        "published 2018-03-14", "style #1a2b3c", "version 63.0.3239",
    )
    return " ".join(rng.choice(vocab) for _ in range(words))


class RegexWorkloadFactory:
    """Builds measured :class:`RegexCall` lists for page scripts.

    One factory (and its profiler cache) is shared across a whole corpus;
    subjects are drawn from a bounded pool so distinct (pattern, subject)
    pairs stay few enough to execute genuinely at generation time.
    """

    #: Subject pool sizes (per kind) — bounds real engine executions.
    _POOL = 6

    def __init__(self, seed: int = 2018):
        self.profiler = RegexProfiler()
        rng = random.Random(seed)
        self._url_lists = [synth_url_list(rng, 30) for _ in range(self._POOL)]
        self._urls = [synth_url(rng) for _ in range(self._POOL * 2)]
        self._texts = [synth_text(rng, 60) for _ in range(self._POOL)]

    def _subject_for(self, name: str, rng: random.Random) -> str:
        if name in ("url-filter", "static-asset", "article-path", "token-scan"):
            return rng.choice(self._url_lists)
        if name in ("url-parse", "query-params"):
            return rng.choice(self._urls)
        if name in ("ua-mobile", "ua-version"):
            return _USER_AGENTS[rng.randrange(len(_USER_AGENTS))]
        if name == "cookie-get":
            return _COOKIE
        return rng.choice(self._texts)

    def make_calls(self, rng: random.Random, n_calls: int,
                   list_heavy: bool) -> tuple[RegexCall, ...]:
        """``n_calls`` measured calls; ``list_heavy`` biases toward the
        repeated list-filtering shape that dominates news/sports scripts."""
        calls = []
        for _ in range(n_calls):
            if list_heavy and rng.random() < 0.6:
                name, pattern, mode = PATTERN_LIBRARY[1]  # url-filter
                repeats = rng.randint(20, 120)
            else:
                name, pattern, mode = PATTERN_LIBRARY[
                    rng.randrange(len(PATTERN_LIBRARY))
                ]
                repeats = rng.randint(1, 12)
            subject = self._subject_for(name, rng)
            calls.append(self.profiler.profile(pattern, subject, mode, repeats))
        return tuple(calls)


__all__ = [
    "PATTERN_LIBRARY",
    "RegexWorkloadFactory",
    "synth_text",
    "synth_url",
    "synth_url_list",
]
