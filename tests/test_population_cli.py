"""``python -m repro population``: validation, artifacts, determinism.

Follows the conventions the other CLI tests pin: every bad flag is a
one-line ``error: ...`` on stderr with exit 2, stdout is byte-identical
across ``--jobs`` values, and artifacts/status lines go where the CI
smoke steps expect them (files + stderr, never stdout).
"""

from __future__ import annotations

import json

import pytest

from repro.population.cli import main

SMALL = ["--sessions", "6", "--pages", "2", "--video-s", "8", "--call-s", "5"]


def run(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# -- validation ---------------------------------------------------------------


@pytest.mark.parametrize("argv,fragment", (
    (["--sessions", "0"], "--sessions"),
    (["--sessions", "-3"], "--sessions"),
    (["--seed", "-1"], "--seed"),
    (["--jobs", "0"], "--jobs"),
    (["--pages", "0"], "--pages"),
    (["--video-s", "0"], "--video-s"),
    (["--call-s", "-2"], "--call-s"),
    (["--jobs", "2", "--task-timeout", "0"], "--task-timeout"),
    (["--jobs", "2", "--max-task-retries", "-1"], "--max-task-retries"),
    (["--task-timeout", "5"], "--jobs"),
    (["--max-task-retries", "2"], "--jobs"),
))
def test_bad_flags_exit_two_with_one_line_error(argv, fragment, capsys):
    code, out, err = run(argv, capsys)
    assert code == 2
    assert out == ""
    assert err.startswith("error: ")
    assert fragment in err
    assert len(err.strip().splitlines()) == 1


def test_help_exits_zero(capsys):
    with pytest.raises(SystemExit) as stop:
        main(["--help"])
    assert stop.value.code == 0
    assert "--sessions" in capsys.readouterr().out


# -- report output ------------------------------------------------------------


def test_smoke_run_prints_report_and_writes_json(tmp_path, capsys):
    out_json = tmp_path / "fleet.json"
    code, out, err = run([*SMALL, "--seed", "5", "--json", str(out_json)],
                         capsys)
    assert code == 0
    assert "population fleet report" in out
    assert "population@5" in out
    assert f"[wrote {out_json}]" in err
    document = json.loads(out_json.read_text())
    assert document["experiment"] == "population@5"
    assert document["sessions"] == 6
    assert document["aggregate"]["sessions"] == 6


def test_html_artifact_is_self_contained(tmp_path, capsys):
    out_html = tmp_path / "fleet.html"
    code, out, err = run([*SMALL, "--html", str(out_html)], capsys)
    assert code == 0
    html = out_html.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "population fleet report" in html


def test_stdout_is_byte_identical_across_jobs(tmp_path, capsys):
    argv = [*SMALL, "--seed", "4"]
    code, serial_out, _ = run([*argv, "--json", str(tmp_path / "s.json")],
                              capsys)
    assert code == 0
    code, jobs_out, _ = run([*argv, "--jobs", "2",
                             "--json", str(tmp_path / "p.json")], capsys)
    assert code == 0
    assert jobs_out == serial_out
    assert (tmp_path / "p.json").read_bytes() == \
        (tmp_path / "s.json").read_bytes()


def test_progress_renders_on_stderr_only(capsys):
    code, out, err = run([*SMALL, "--progress"], capsys)
    assert code == 0
    assert "population@0" in err
    assert "trials" in err
    assert "population fleet report" in out


def test_runlog_records_the_fleet_lifecycle(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    code, _, _ = run([*SMALL, "--runlog", str(path)], capsys)
    assert code == 0
    events = [json.loads(line) for line in
              path.read_text().strip().splitlines()]
    assert events[0]["event"] == "run_start"
    assert events[-1]["event"] == "run_end"
    assert sum(e["event"] == "trial_complete" for e in events) == 6


def test_cache_round_trip_is_all_hits_and_identical(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    argv = [*SMALL, "--cache", cache_dir]
    code, cold_out, cold_err = run(argv, capsys)
    assert code == 0
    assert "0 hits" in cold_err
    code, warm_out, warm_err = run(argv, capsys)
    assert code == 0
    assert warm_out == cold_out
    assert "6 hits, 0 misses" in warm_err


def test_cache_env_var_is_picked_up(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "envcache"))
    code, _, err = run(SMALL, capsys)
    assert code == 0
    assert "cache:" in err
    assert (tmp_path / "envcache").is_dir()
