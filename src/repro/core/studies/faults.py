"""Fault-injection QoE studies: degraded-condition extensions of §3/§4.

The paper measures QoE on healthy devices over a clean WiFi link; these
sweeps re-run the web PLT and video rebuffering experiments under the
conditions that dominate real mobile sessions — bursty Gilbert–Elliott
loss and thermal throttling — using :mod:`repro.faults` injectors and
:class:`~repro.core.experiments.RobustTrialRunner`, so a trial killed by
an injected crash degrades the summary (failure count) instead of the
study.

Every point is deterministic: trial ``i`` of a sweep position derives its
seed from the experiment name, the fault plan draws from child streams of
that seed, and re-running produces identical metrics and fault traces.

The faults injected here live *inside* the simulation (sim-time loss
bursts, throttling, crashes).  Host-level faults — a worker process dying
under ``--jobs N`` — are handled one layer down by
:class:`repro.parallel.SupervisedExecutor`: the runner journals a
quarantined trial as an ordinary crash/timeout/error row, so the two
fault layers share one failure taxonomy (see ``docs/parallelism.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.stats import Summary
from repro.cache import TrialCache
from repro.core.background import BackgroundLoad, make_rng
from repro.core.experiments import RobustRunReport, RobustTrialRunner
from repro.device import Device, DeviceSpec, NEXUS4
from repro.faults import BurstLossSpec, CrashSpec, FaultPlan, ThermalThrottleSpec
from repro.netstack import Link, LinkSpec
from repro.parallel import Executor
from repro.sim import Environment
from repro.video import StreamingPlayer, StreamingResult, VideoSpec
from repro.web import BrowserEngine
from repro.workloads import generate_corpus
from repro.workloads.pages import PageSpec
from repro.workloads.regexcorpus import RegexWorkloadFactory


@dataclass
class FaultStudyConfig:
    """Scale and robustness knobs for the degraded-condition sweeps.

    Unlike the healthy-baseline studies, the default link is a congested
    cellular-class path (3 Mbps, 60 ms RTT) — just above the ABR's 720p
    bitrate, so injected loss bursts actually move PLT and stall ratio
    instead of vanishing into LAN headroom.
    """

    n_pages: int = 3
    trials: int = 5
    clip: VideoSpec = field(default_factory=lambda: VideoSpec(duration_s=60.0))
    link: LinkSpec = field(
        default_factory=lambda: LinkSpec(goodput_bps=3e6, rtt_s=0.060))
    background_jitter: bool = True
    #: Injected crash probability per trial (0 disables the crash injector).
    crash_probability: float = 0.0
    max_attempts: int = 2
    #: Kernel step budget per trial; None disables the guard.
    step_budget: Optional[int] = 5_000_000
    #: Directory for per-experiment trial journals (enables ``--resume``).
    journal_dir: Optional[Path] = None
    #: Trial dispatch layer; None means in-process serial execution.
    executor: Optional[Executor] = None
    #: Content-addressed result cache; None checks the executor for an
    #: attached one (see :mod:`repro.cache`).
    cache: Optional[TrialCache] = None


@dataclass
class FaultSweepPoint:
    """One x-position of a degraded-condition figure."""

    label: str
    metric: Summary
    report: RobustRunReport


class FaultStudy:
    """Web-PLT and video-rebuffer sweeps under injected faults."""

    def __init__(self, config: Optional[FaultStudyConfig] = None):
        self.config = config or FaultStudyConfig()
        self.corpus: list[PageSpec] = generate_corpus(
            self.config.n_pages, factory=RegexWorkloadFactory(),
        )

    def cache_params(self) -> dict:
        """Config facets a faulted trial depends on (cache key input).

        ``n_pages`` stands in for the corpus (the generator is a pure
        function of it); journal/executor/trial-count knobs shape the
        run, not any single trial, so they stay out.  The runner's
        retry/budget policy joins the key separately (see
        ``RobustTrialRunner``).
        """
        return {"n_pages": self.config.n_pages, "clip": self.config.clip,
                "link": self.config.link,
                "background_jitter": self.config.background_jitter}

    # -- one faulted session ----------------------------------------------

    def _crash_specs(self) -> tuple[CrashSpec, ...]:
        if self.config.crash_probability <= 0:
            return ()
        return (CrashSpec(probability=self.config.crash_probability,
                          window_s=(0.5, 8.0)),)

    def load_page_with_faults(self, spec: DeviceSpec, page: PageSpec,
                              plan: FaultPlan, seed: int,
                              step_budget: Optional[int] = None,
                              **device_kwargs) -> float:
        """One faulted page load; returns the PLT in seconds."""
        env = Environment()
        rng = make_rng(seed)
        device = Device(env, spec, **device_kwargs)
        if self.config.background_jitter:
            BackgroundLoad(env, device, make_rng(seed))
        link = Link(env, self.config.link)
        browser = BrowserEngine(env, device, link)
        proc = env.process(browser.load(page))
        plan.install(env, rng=rng, link=link, device=device, processes=[proc])
        result = env.run(proc, max_steps=step_budget)
        return result.plt

    def stream_with_faults(self, spec: DeviceSpec, plan: FaultPlan, seed: int,
                           step_budget: Optional[int] = None,
                           **device_kwargs) -> StreamingResult:
        """One faulted streaming session; returns the full result."""
        env = Environment()
        rng = make_rng(seed)
        device = Device(env, spec, **device_kwargs)
        if self.config.background_jitter:
            BackgroundLoad(env, device, make_rng(seed))
        link = Link(env, self.config.link)
        player = StreamingPlayer(env, device, link, self.config.clip)
        proc = env.process(player.run())
        plan.install(env, rng=rng, link=link, device=device, processes=[proc])
        return env.run(proc, max_steps=step_budget)

    # -- runner plumbing ---------------------------------------------------

    def _runner(self, experiment: str) -> RobustTrialRunner:
        journal = None
        if self.config.journal_dir is not None:
            safe = experiment.replace(":", "_").replace("/", "_")
            journal = Path(self.config.journal_dir) / f"{safe}.json"
        return RobustTrialRunner(
            trials=self.config.trials, experiment=experiment,
            max_attempts=self.config.max_attempts,
            step_budget=self.config.step_budget, journal_path=journal,
            executor=self.config.executor,
            cache=self.config.cache,
        )

    def _web_point(self, experiment: str, label: str, plan: FaultPlan,
                   spec: DeviceSpec, resume: bool,
                   **device_kwargs) -> FaultSweepPoint:
        trial_fn = _WebFaultTrial(study=self, spec=spec, plan=plan,
                                  device_kwargs=device_kwargs)
        report = self._runner(experiment).run(trial_fn, resume=resume)
        return FaultSweepPoint(label=label, metric=report.summary(),
                               report=report)

    def _video_point(self, experiment: str, label: str, plan: FaultPlan,
                     spec: DeviceSpec, resume: bool, metric: str = "stall",
                     **device_kwargs) -> FaultSweepPoint:
        trial_fn = _VideoFaultTrial(study=self, spec=spec, plan=plan,
                                    metric=metric,
                                    device_kwargs=device_kwargs)
        report = self._runner(experiment).run(trial_fn, resume=resume)
        return FaultSweepPoint(label=label, metric=report.summary(),
                               report=report)

    # -- sweeps ------------------------------------------------------------

    def plt_vs_burst_loss(
        self, spec: DeviceSpec = NEXUS4,
        p_bads: Sequence[float] = (0.0, 0.2, 0.4, 0.6),
        resume: bool = False,
    ) -> list[FaultSweepPoint]:
        """Mean PLT as the bad-state loss rate of a GE channel grows."""
        points = []
        for p_bad in p_bads:
            specs = self._crash_specs()
            if p_bad > 0:
                specs = (BurstLossSpec(p_bad=p_bad, mean_good_s=3.0,
                                       mean_bad_s=2.0),) + specs
            points.append(self._web_point(
                f"faults:web:ge:{p_bad}", f"p_bad={p_bad}",
                FaultPlan(specs), spec, resume, governor="OD",
            ))
        return points

    def plt_vs_thermal_cap(
        self, spec: DeviceSpec = NEXUS4,
        caps: Sequence[float] = (1.0, 0.75, 0.5, 0.35),
        resume: bool = False,
    ) -> list[FaultSweepPoint]:
        """Mean PLT as a thermal governor caps the DVFS ladder mid-load."""
        points = []
        for cap in caps:
            specs = self._crash_specs()
            if cap < 1.0:
                specs = (ThermalThrottleSpec(
                    schedule=((0.5, cap),)),) + specs
            points.append(self._web_point(
                f"faults:web:thermal:{cap}", f"cap={cap}",
                FaultPlan(specs), spec, resume, governor="OD",
            ))
        return points

    def rebuffer_vs_burst_loss(
        self, spec: DeviceSpec = NEXUS4,
        p_bads: Sequence[float] = (0.0, 0.2, 0.4, 0.6),
        resume: bool = False,
    ) -> list[FaultSweepPoint]:
        """Stall ratio as the GE channel's bad-state loss rate grows."""
        points = []
        for p_bad in p_bads:
            specs = self._crash_specs()
            if p_bad > 0:
                specs = (BurstLossSpec(p_bad=p_bad, mean_good_s=3.0,
                                       mean_bad_s=2.0),) + specs
            points.append(self._video_point(
                f"faults:video:ge:{p_bad}", f"p_bad={p_bad}",
                FaultPlan(specs), spec, resume, governor="OD",
            ))
        return points

    def rebuffer_vs_thermal_cap(
        self, spec: DeviceSpec = NEXUS4,
        caps: Sequence[float] = (1.0, 0.75, 0.5, 0.35),
        resume: bool = False,
    ) -> list[FaultSweepPoint]:
        """Stall ratio as thermal throttling caps the decode clock.

        Expected near-zero across the whole sweep: §3.2's finding that the
        read-ahead buffer makes playback immune to slow clocks holds under
        injected thermal throttling too — the robustness analogue of
        Fig 4a's flat stall line.  The metric that *does* move is startup
        (see :meth:`startup_vs_thermal_cap`).
        """
        points = []
        for cap in caps:
            specs = self._crash_specs()
            if cap < 1.0:
                specs = (ThermalThrottleSpec(
                    schedule=((0.5, cap),)),) + specs
            points.append(self._video_point(
                f"faults:video:thermal:{cap}", f"cap={cap}",
                FaultPlan(specs), spec, resume, governor="OD",
            ))
        return points

    def startup_vs_thermal_cap(
        self, spec: DeviceSpec = NEXUS4,
        caps: Sequence[float] = (1.0, 0.75, 0.5, 0.35),
        resume: bool = False,
    ) -> list[FaultSweepPoint]:
        """Start-up latency under thermal caps — the metric §3.2 says
        clock throttling actually hurts (player init is compute-bound)."""
        points = []
        for cap in caps:
            specs = self._crash_specs()
            if cap < 1.0:
                # Cap from t=0 so the init phase, not just steady state,
                # runs throttled.
                specs = (ThermalThrottleSpec(
                    schedule=((0.0, cap),)),) + specs
            points.append(self._video_point(
                f"faults:video:startup:{cap}", f"cap={cap}",
                FaultPlan(specs), spec, resume, metric="startup",
                governor="OD",
            ))
        return points


@dataclass
class _WebFaultTrial:
    """Picklable robust-runner trial: mean faulted PLT over the corpus.

    Replaces the closure the sweeps used to build inline — closures cannot
    cross the process boundary, instances of this class can.
    """

    study: FaultStudy
    spec: DeviceSpec
    plan: FaultPlan
    device_kwargs: dict

    def __call__(self, seed: int, step_budget: Optional[int]) -> float:
        plts = [
            self.study.load_page_with_faults(self.spec, page, self.plan,
                                             seed + i, step_budget,
                                             **self.device_kwargs)
            for i, page in enumerate(self.study.corpus)
        ]
        return sum(plts) / len(plts)


@dataclass
class _VideoFaultTrial:
    """Picklable robust-runner trial: one faulted streaming session."""

    study: FaultStudy
    spec: DeviceSpec
    plan: FaultPlan
    metric: str
    device_kwargs: dict

    def __call__(self, seed: int, step_budget: Optional[int]) -> float:
        result = self.study.stream_with_faults(self.spec, self.plan, seed,
                                               step_budget,
                                               **self.device_kwargs)
        if self.metric == "startup":
            return result.startup_latency_s
        return result.stall_ratio


__all__ = ["FaultStudy", "FaultStudyConfig", "FaultSweepPoint"]
