"""Video formats and clip descriptions."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Format:
    """One encoding of a clip (a DASH representation)."""

    name: str
    width: int
    height: int
    fps: float
    bitrate_bps: float

    @property
    def pixels_per_frame(self) -> int:
        return self.width * self.height

    @property
    def bytes_per_second(self) -> float:
        return self.bitrate_bps / 8.0


#: YouTube-style ladder for a 2018 clip (H.264).
FORMAT_LADDER = (
    Format("144p", 256, 144, 30.0, 0.20e6),
    Format("240p", 426, 240, 30.0, 0.40e6),
    Format("360p", 640, 360, 30.0, 0.75e6),
    Format("480p", 854, 480, 30.0, 1.40e6),
    Format("720p", 1280, 720, 30.0, 2.80e6),
    Format("1080p", 1920, 1080, 30.0, 4.80e6),
)


@dataclass(frozen=True)
class VideoSpec:
    """A clip to stream: the paper uses a 5-minute FullHD video."""

    duration_s: float = 300.0
    segment_s: float = 2.0
    manifest_bytes: int = 4_000

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.segment_s <= 0:
            raise ValueError("durations must be positive")

    @property
    def n_segments(self) -> int:
        import math

        return math.ceil(self.duration_s / self.segment_s)


__all__ = ["FORMAT_LADDER", "Format", "VideoSpec"]
