"""Traceable trials: canonical scenarios wired to :mod:`repro.obs`.

``python -m repro trace <trial>`` runs one seeded scenario with the
tracer and metrics registry installed and exports a Chrome
``trace_event`` JSON that Perfetto (https://ui.perfetto.dev) loads
directly: one swimlane per subsystem category (``sim``, ``net``, ``web``
or ``video``, ``device``, ``faults``), spans and instants on the
simulated clock.

Each traceable trial is a thin builder over an existing study scenario —
a Fig 2a page load, the Fig 3a low-clock point, a Fig 4a streaming
session, a Fig 6 iperf run, and a faulted page load — chosen so a single
trace exercises the kernel, the netstack, a QoE model, and the device
model at once.  Determinism contract: same trial + same seed ⇒
byte-identical exported trace (tests assert this).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Tuple

from repro.core.background import BackgroundLoad, make_rng
from repro.core.experiments import derive_seed
from repro.device import NEXUS4, Device
from repro.faults import BurstLossSpec, FaultPlan, ThermalThrottleSpec
from repro.netstack import HostStack, Link, LinkSpec, TcpConnection
from repro.netstack.tcp import BURST_CAP_BYTES
from repro.obs import (
    MetricsRegistry,
    Tracer,
    install,
    metrics_json,
    text_summary,
    write_chrome_trace,
)
from repro.sim import Environment
from repro.video import StreamingPlayer, VideoSpec
from repro.web import BrowserEngine
from repro.workloads import generate_corpus


@dataclass
class TracedTrial:
    """One traced scenario run: its QoE value plus the full observation."""

    name: str
    seed: int
    metric_name: str
    value: float
    sim_time_s: float
    steps: int
    tracer: Tracer
    metrics: MetricsRegistry


def _web_load(env: Environment, seed: int, *,
              pinned_mhz: Optional[float] = None,
              plan: Optional[FaultPlan] = None,
              experiment: str = "trace.web") -> Tuple[str, float]:
    """Shared fig2a-shaped page load: NEXUS4, ondemand, background jitter."""
    kwargs = {} if pinned_mhz is None else {"pinned_mhz": pinned_mhz}
    device = Device(env, NEXUS4, governor="OD", **kwargs)
    BackgroundLoad(env, device, make_rng(derive_seed(experiment, seed)))
    link = Link(env, LinkSpec())
    if plan is not None:
        plan.install(env, rng=make_rng(derive_seed(f"{experiment}#faults", seed)),
                     link=link, device=device)
    browser = BrowserEngine(env, device, link)
    page = generate_corpus(1)[0]
    result = env.run(env.process(browser.load(page)))
    return "plt_s", result.plt


def _fig2a(env: Environment, seed: int) -> Tuple[str, float]:
    """Fig 2a: one corpus page on the Nexus 4 at the default governor."""
    return _web_load(env, seed, experiment="trace.fig2a")


def _fig3a_low(env: Environment, seed: int) -> Tuple[str, float]:
    """Fig 3a, lowest x-position: the same load with the clock pinned low."""
    return _web_load(env, seed, pinned_mhz=384, experiment="trace.fig3a-low")


def _faults_web(env: Environment, seed: int) -> Tuple[str, float]:
    """The fig2a load under burst loss + thermal throttling."""
    plan = FaultPlan([BurstLossSpec(p_bad=0.2, mean_bad_s=0.5),
                      ThermalThrottleSpec()])
    return _web_load(env, seed, plan=plan, experiment="trace.faults-web")


def _fig4a(env: Environment, seed: int) -> Tuple[str, float]:
    """Fig 4a: a short streaming session on the Nexus 4."""
    device = Device(env, NEXUS4, governor="OD")
    BackgroundLoad(env, device, make_rng(derive_seed("trace.fig4a", seed)))
    player = StreamingPlayer(env, device, Link(env, LinkSpec()),
                             video=VideoSpec(duration_s=30.0))
    result = env.run(env.process(player.run()))
    return "stall_ratio", result.stall_ratio


def _fig6(env: Environment, seed: int) -> Tuple[str, float]:
    """Fig 6: downstream bulk TCP for 5 simulated seconds."""
    # Inlined (rather than repro.netstack.run_iperf) because the tracer
    # must be installed on the environment the transfer runs in.
    duration_s = 5.0
    device = Device(env, NEXUS4, governor="PF")
    conn = TcpConnection(env, Link(env, LinkSpec()), HostStack(env, device))

    def sink():
        yield from conn.connect()
        first = True
        while env.now < duration_s:
            yield from conn.receive(BURST_CAP_BYTES, first_byte_latency=first)
            first = False

    env.process(sink())
    env.run(until=duration_s)
    return "throughput_mbps", conn.bytes_downloaded * 8.0 / duration_s / 1e6


#: Name → builder.  Builders run the whole scenario inside the prepared env.
TRACEABLE: dict[str, Callable[[Environment, int], Tuple[str, float]]] = {
    "fig2a": _fig2a,
    "fig3a-low": _fig3a_low,
    "fig4a": _fig4a,
    "fig6": _fig6,
    "faults-web": _faults_web,
}


def run_traced_trial(name: str, seed: int = 0) -> TracedTrial:
    """Run one traceable trial with observability installed."""
    try:
        builder = TRACEABLE[name]
    except KeyError:
        known = ", ".join(sorted(TRACEABLE))
        raise ValueError(f"unknown traceable trial {name!r}; one of: {known}")
    env = Environment()
    tracer, metrics = install(env)
    metric_name, value = builder(env, seed)
    metrics.gauge("sim.time_s").set(env.now)
    return TracedTrial(
        name=name, seed=seed, metric_name=metric_name, value=value,
        sim_time_s=env.now, steps=env.steps_processed,
        tracer=tracer, metrics=metrics,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point for ``python -m repro trace``."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run one traceable trial and export a Chrome trace "
                    "(load the output in https://ui.perfetto.dev).",
    )
    parser.add_argument("trial", choices=sorted(TRACEABLE),
                        help="which scenario to trace")
    parser.add_argument("--out", default="trace.json",
                        help="Chrome trace_event JSON output path")
    parser.add_argument("--seed", type=int, default=0,
                        help="trial seed (same seed ⇒ byte-identical trace)")
    parser.add_argument("--metrics-out", default=None,
                        help="also write the flat metrics snapshot JSON here")
    options = parser.parse_args(argv)
    try:
        traced = run_traced_trial(options.trial, seed=options.seed)
    except Exception as error:  # noqa: BLE001 - CLI boundary
        print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
        return 1
    write_chrome_trace(traced.tracer, options.out)
    print(text_summary(traced.tracer, traced.metrics))
    print(f"{traced.name}: {traced.metric_name}={traced.value:.4f} "
          f"(seed {traced.seed}, {traced.steps} steps, "
          f"{traced.sim_time_s:.3f} sim-s)")
    print(f"[wrote {options.out}]")
    if options.metrics_out:
        Path(options.metrics_out).write_text(metrics_json(traced.metrics),
                                             encoding="utf-8")
        print(f"[wrote {options.metrics_out}]")
    return 0


__all__ = ["TRACEABLE", "TracedTrial", "main", "run_traced_trial"]
