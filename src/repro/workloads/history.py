"""The 2011–2018 device and page evolution dataset behind Fig 1.

The paper mines ~480 Android spec sheets plus the HTTP Archive page-size
history.  Neither dataset ships with the paper, so this module synthesizes
the equivalent: per-year device populations drawn around published market
medians, and per-year page scale factors anchored to HTTP Archive's
mobile medians (≈0.4 MB in 2011 → ≈2 MB in 2018, with scripting growing
faster than bytes).

The PLT series is regenerated the way HTTP Archive measured it: each
year's median device loads that year's pages over an emulated cellular
profile (fixed across years), so the figure isolates the device/page
trend from network evolution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.device import ClusterSpec, DeviceSpec
from repro.netstack import LinkSpec

#: Per-year market medians: (clock GHz, cores, memory GB, Android version,
#: reference IPC, page bytes factor vs 2018, page scripting factor vs 2018).
_YEARS: dict[int, tuple[float, int, float, float, float, float, float]] = {
    2011: (0.8, 2, 0.5, 2.3, 0.80, 0.20, 0.10),
    2012: (1.0, 2, 0.75, 4.0, 0.90, 0.28, 0.16),
    2013: (1.2, 4, 1.0, 4.2, 1.00, 0.38, 0.25),
    2014: (1.4, 4, 1.5, 4.4, 1.10, 0.48, 0.36),
    2015: (1.5, 4, 2.0, 5.1, 1.25, 0.60, 0.50),
    2016: (1.7, 6, 2.5, 6.0, 1.45, 0.75, 0.66),
    2017: (1.9, 8, 3.0, 7.1, 1.65, 0.88, 0.84),
    2018: (2.0, 8, 4.0, 8.1, 1.85, 1.00, 1.00),
}

#: HTTP-Archive-style emulated cellular profile (constant across years).
CELLULAR_PROFILE = LinkSpec(goodput_bps=1.6e6, rtt_s=0.150)


@dataclass(frozen=True)
class YearMedians:
    """Median device/page characteristics for one year."""

    year: int
    clock_ghz: float
    cores: int
    memory_gb: float
    os_version: float
    ipc: float
    page_bytes_factor: float
    page_ops_factor: float

    @property
    def page_size_mb(self) -> float:
        """Approximate median page weight implied by the byte factor."""
        return 2.0 * self.page_bytes_factor

    def device_spec(self) -> DeviceSpec:
        """A synthetic median phone for this year."""
        max_mhz = round(self.clock_ghz * 1000)
        steps = 8
        pitch = (max_mhz - 300) / (steps - 1)
        ladder = tuple(round(300 + pitch * i) for i in range(steps))
        return DeviceSpec(
            name=f"median-{self.year}",
            soc=f"median-soc-{self.year}",
            clusters=(ClusterSpec(f"y{self.year}", self.cores, ladder,
                                  ipc=self.ipc),),
            memory_gb=self.memory_gb,
            os_version=str(self.os_version),
            gpu="median",
            release=str(self.year),
            cost_usd=300,
        )


def year_medians(year: int) -> YearMedians:
    """Median stats for ``year`` (2011–2018)."""
    try:
        row = _YEARS[year]
    except KeyError:
        raise ValueError(f"year {year} outside 2011–2018") from None
    return YearMedians(year, *row)


def all_years() -> list[YearMedians]:
    """The full 2011–2018 series."""
    return [year_medians(y) for y in sorted(_YEARS)]


@dataclass(frozen=True)
class HistoricalDevice:
    """One synthesized spec-sheet row (the mined-dataset analog)."""

    year: int
    clock_ghz: float
    cores: int
    memory_gb: float
    os_version: float

    def device_spec(self, serial: int = 0) -> DeviceSpec:
        """A runnable :class:`DeviceSpec` for this spec-sheet row.

        ``serial`` disambiguates the name when several rows share a year
        (the population sampler numbers its legacy-tier pool).  The
        ladder floor matches :meth:`YearMedians.device_spec`; the top is
        clamped to at least 500 MHz so the eight rungs stay distinct for
        the slowest synthesized clocks.
        """
        max_mhz = max(500, round(self.clock_ghz * 1000))
        steps = 8
        pitch = (max_mhz - 300) / (steps - 1)
        ladder = tuple(round(300 + pitch * i) for i in range(steps))
        ipc = year_medians(self.year).ipc
        return DeviceSpec(
            name=f"hist-{self.year}-{serial}",
            soc=f"hist-soc-{self.year}",
            clusters=(ClusterSpec(f"h{self.year}", self.cores, ladder,
                                  ipc=ipc),),
            memory_gb=self.memory_gb,
            os_version=str(self.os_version),
            gpu="hist",
            release=str(self.year),
            cost_usd=100,
        )


def generate_device_population(
    seed: int = 480, per_year: int = 60
) -> list[HistoricalDevice]:
    """~480 synthetic Android spec sheets spread across 2011–2018.

    Values scatter around the year medians the way a market snapshot
    does; medians of the synthesized population recover the input curve
    (tested), which is all Fig 1 consumes.
    """
    rng = random.Random(seed)
    population = []
    for medians in all_years():
        for _ in range(per_year):
            clock = max(0.3, rng.gauss(medians.clock_ghz, 0.25))
            cores = max(1, min(8, round(rng.gauss(medians.cores, 1.0))))
            memory = max(0.25, rng.gauss(medians.memory_gb, 0.5))
            os_version = max(2.0, rng.gauss(medians.os_version, 0.4))
            population.append(HistoricalDevice(
                medians.year, round(clock, 2), cores,
                round(memory, 2), round(os_version, 1),
            ))
    return population


__all__ = [
    "CELLULAR_PROFILE",
    "HistoricalDevice",
    "YearMedians",
    "all_years",
    "generate_device_population",
    "year_medians",
]
