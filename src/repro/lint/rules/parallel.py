"""Parallel-execution rules (PAR6xx).

All process fan-out flows through :mod:`repro.parallel`: executors key
results by item index so merges are deterministic, and only the parent
process touches journals and figure files.  A raw ``ProcessPoolExecutor``
or ``os.fork`` anywhere else reintroduces exactly the bugs the executor
layer exists to prevent — completion-order-dependent output and worker
processes racing on shared files.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileContext, Rule, call_name

#: Dotted call targets that spawn worker processes directly.
_RAW_FANOUT_CALLS = frozenset({
    "os.fork",
    "os.forkpty",
    "multiprocessing.Pool",
    "multiprocessing.Process",
})

#: Last path segment of constructors that are fan-out regardless of how
#: the module was imported (``ProcessPoolExecutor`` vs
#: ``concurrent.futures.ProcessPoolExecutor``).
_RAW_FANOUT_SUFFIXES = frozenset({"ProcessPoolExecutor"})


class RawProcessFanoutRule(Rule):
    """PAR601: worker processes are spawned only inside ``repro.parallel``."""

    id = "PAR601"
    severity = Severity.ERROR
    title = "process fan-out outside repro.parallel"
    rationale = (
        "Executors merge worker results keyed by trial index and leave "
        "journal/figure writes to the parent process; a raw "
        "ProcessPoolExecutor or os.fork elsewhere leaks completion order "
        "into results and lets workers race on shared files."
    )

    def applies_to(self, context: FileContext) -> bool:
        # The executor layer is the one sanctioned home of fan-out.
        return "parallel/" not in context.norm_path

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            if name in _RAW_FANOUT_CALLS or (
                name.split(".")[-1] in _RAW_FANOUT_SUFFIXES
            ):
                yield self.finding(
                    context, node,
                    f"{name}() spawns worker processes directly; dispatch "
                    f"through a repro.parallel executor so results merge "
                    f"deterministically and only the parent writes files",
                )


__all__ = ["RawProcessFanoutRule"]
