"""Determinism rules (DET0xx).

Every figure benchmark asserts on exact numbers; these rules reject the
constructs that make two runs of the same seed diverge: wall-clock reads,
unseeded randomness, set-order iteration, and ``id()``-derived ordering.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileContext, Rule, call_name

#: Callables that read the host's wall clock or process timers.
_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "date.today",
})

#: Module-level ``random`` functions that draw from the hidden global RNG.
_GLOBAL_RANDOM_CALLS = frozenset({
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.sample",
    "random.shuffle",
    "random.uniform",
    "random.gauss",
    "random.normalvariate",
    "random.expovariate",
    "random.betavariate",
    "random.lognormvariate",
    "random.triangular",
    "random.seed",
    "random.getrandbits",
})

#: numpy's legacy global-state RNG entry points.
_NUMPY_GLOBAL_PREFIXES = ("numpy.random.", "np.random.")


class WallClockRule(Rule):
    """DET001: simulated time comes from ``env.now``, never the host clock."""

    id = "DET001"
    severity = Severity.ERROR
    title = "wall-clock read in simulation code"
    rationale = (
        "Simulated time advances only through the event list; reading the "
        "host clock couples results to machine speed and breaks the "
        "identical-schedule guarantee of repro.sim.core."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in _WALL_CLOCK_CALLS:
                yield self.finding(
                    context, node,
                    f"call to {name}() reads the host clock; use env.now "
                    f"(simulated time) instead",
                )


class UnseededRandomRule(Rule):
    """DET002: all randomness must flow from an explicit seed."""

    id = "DET002"
    severity = Severity.ERROR
    title = "module-level or unseeded RNG"
    rationale = (
        "The paper's repeat-20-times methodology regenerates bit-identically "
        "only if every RNG is constructed from a derived seed; the global "
        "random module and seedless Random() draw from process-wide state."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            if name in _GLOBAL_RANDOM_CALLS:
                yield self.finding(
                    context, node,
                    f"{name}() uses the process-global RNG; construct a "
                    f"seeded random.Random via make_rng(seed) instead",
                )
            elif name in ("random.Random", "Random") and not (
                node.args or node.keywords
            ):
                yield self.finding(
                    context, node,
                    "random.Random() without a seed falls back to OS "
                    "entropy; pass a derived seed",
                )
            elif name in ("random.SystemRandom", "SystemRandom"):
                yield self.finding(
                    context, node,
                    "SystemRandom is unseedable by design and can never "
                    "reproduce a trial",
                )
            elif name.startswith(_NUMPY_GLOBAL_PREFIXES) and not name.endswith(
                (".default_rng", ".Generator", ".SeedSequence", ".RandomState")
            ):
                yield self.finding(
                    context, node,
                    f"{name}() draws from numpy's global RNG; use "
                    f"numpy.random.default_rng(seed)",
                )


#: Builtins through which an unordered set may leak its iteration order.
_ORDER_LEAKING_WRAPPERS = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_bare_set(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return call_name(node) in ("set", "frozenset")
    return False


class SetIterationRule(Rule):
    """DET003: never iterate a bare set where order can reach results."""

    id = "DET003"
    severity = Severity.WARNING
    title = "iteration over an unordered set"
    rationale = (
        "Set iteration order depends on insertion history and hash "
        "randomization of the interpreter; in scheduling or aggregation "
        "paths it silently reorders events and floats. Wrap in sorted()."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            iter_node = None
            if isinstance(node, ast.For):
                iter_node = node.iter
            elif isinstance(node, ast.comprehension):
                iter_node = node.iter
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name in _ORDER_LEAKING_WRAPPERS and node.args:
                    iter_node = node.args[0]
            if iter_node is not None and _is_bare_set(iter_node):
                yield self.finding(
                    context, iter_node,
                    "iterating a bare set exposes nondeterministic order; "
                    "use sorted(...) to fix the traversal",
                )


class IdOrderingRule(Rule):
    """DET004: ``id()`` values vary across runs; never let them order data."""

    id = "DET004"
    severity = Severity.WARNING
    title = "id()-derived key or ordering"
    rationale = (
        "CPython object addresses differ between runs, so any id()-keyed "
        "structure or sort key produces run-dependent traversal. Key by a "
        "stable attribute (or by the object itself for pure lookups)."
    )

    #: Methods whose job is to render/compare identity, where id() is fine.
    _EXEMPT_METHODS = frozenset({"__repr__", "__str__", "__hash__", "__eq__"})

    def check(self, context: FileContext) -> Iterator[Finding]:
        exempt_ranges = [
            (node.lineno, max(node.lineno, getattr(node, "end_lineno", 0) or 0))
            for node in ast.walk(context.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in self._EXEMPT_METHODS
        ]
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call) or call_name(node) != "id":
                continue
            line = node.lineno
            if any(lo <= line <= hi for lo, hi in exempt_ranges):
                continue
            yield self.finding(
                context, node,
                "id() is run-dependent; key or order by a stable attribute "
                "instead",
            )


class StudyRngFactoryRule(Rule):
    """DET005: studies obtain RNGs from the audited factory, not inline."""

    id = "DET005"
    severity = Severity.WARNING
    title = "inline RNG construction in a study"
    rationale = (
        "Seed plumbing is only auditable if every study RNG is created in "
        "one place: repro.core.background.make_rng(seed). Inline "
        "random.Random(seed) calls scatter the seeding policy."
    )

    def applies_to(self, context: FileContext) -> bool:
        return "core/studies/" in context.norm_path

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) in ("random.Random", "Random"):
                yield self.finding(
                    context, node,
                    "construct study RNGs via "
                    "repro.core.background.make_rng(seed), not inline "
                    "random.Random",
                )


__all__ = [
    "IdOrderingRule",
    "SetIterationRule",
    "StudyRngFactoryRule",
    "UnseededRandomRule",
    "WallClockRule",
]
