"""Reno-style TCP connection over the shared link.

The model captures the three timing components that matter at LAN/QoE
scale:

* **handshake** — one RTT plus the kernel cost of the control packets;
* **slow start** — IW10, congestion window doubling per ACK-clocked round
  until the window covers the pipe (no loss on the testbed LAN);
* **steady streaming** — back-to-back bursts whose completion is gated by
  *both* link serialization and receiver packet processing, so goodput is
  ``min(link, cpu)`` and contends with application compute.

Bursts are capped at 64 KiB so event granularity stays fine enough for
fair interleaving between concurrent connections.
"""

from __future__ import annotations

from repro.netstack.hoststack import MSS, HostStack
from repro.netstack.link import Link
from repro.obs import metrics_of, tracer_of
from repro.sim import Environment

#: Initial congestion window (RFC 6928).
INITIAL_WINDOW_BYTES = 10 * MSS
#: Burst granularity for steady-state streaming.
BURST_CAP_BYTES = 64 * 1024
#: Receive-window ceiling on the congestion window.
MAX_WINDOW_BYTES = 256 * 1024


class TcpConnection:
    """One TCP connection between the phone and the LAN server."""

    def __init__(self, env: Environment, link: Link, stack: HostStack,
                 tls: bool = False):
        self.env = env
        self.link = link
        self.stack = stack
        self.tls = tls
        self.cwnd = float(INITIAL_WINDOW_BYTES)
        self.connected = False
        self.bytes_downloaded = 0.0
        self.bytes_uploaded = 0.0
        self._tracer = tracer_of(env)
        metrics = metrics_of(env)
        self._m_connects = metrics.counter("net.tcp.connects")
        self._m_rounds = metrics.counter("net.tcp.rounds")

    # -- connection management ------------------------------------------

    def connect(self):
        """Process: three-way handshake (one RTT + control-packet CPU),
        plus a TLS 1.2 handshake (two more RTTs + crypto) when enabled."""
        if self.connected:
            return
        with self._tracer.span("net.tcp.connect", "net", {"tls": self.tls}):
            yield self.env.timeout(self.link.spec.rtt_s)
            # SYN out, SYN/ACK in, ACK out.
            yield self.env.process(self.stack.process_tx(1))
            yield self.env.process(self.stack.process_rx(1))
            yield self.env.process(self.stack.process_tx(1))
            if self.tls:
                # ClientHello → ServerHello/cert → key exchange → Finished.
                yield self.env.timeout(2 * self.link.spec.rtt_s)
                yield self.env.process(self.stack.process_rx(4 * 1448))  # cert chain
                yield self.env.process(self.stack.tls_handshake())
            self.connected = True
            self._m_connects.inc()

    # -- transfers --------------------------------------------------------

    def send(self, nbytes: float):
        """Process: upload ``nbytes`` (request bodies, outgoing media)."""
        if not self.connected:
            yield from self.connect()
        cpu_done = self.env.process(self.stack.process_tx(nbytes, self.tls))
        link_done = self.env.process(self.link.transmit(nbytes))
        yield self.env.all_of([cpu_done, link_done])
        yield self.env.timeout(self.link.spec.rtt_s / 2)
        self.bytes_uploaded += nbytes

    def receive(self, nbytes: float, first_byte_latency: bool = True):
        """Process: download ``nbytes`` of response payload.

        The caller is resumed when the last byte has been processed by the
        kernel stack (i.e. is available to the application).  Continuous
        consumers (iperf, media streams) that call ``receive`` repeatedly
        on a hot connection pass ``first_byte_latency=False`` after the
        first call so the server→client propagation delay is paid once,
        not per burst.
        """
        if not self.connected:
            yield from self.connect()
        if nbytes <= 0:
            return
        pipe = max(self.link.spec.bdp_bytes, float(INITIAL_WINDOW_BYTES))
        remaining = float(nbytes)
        first_burst = first_byte_latency
        with self._tracer.span("net.tcp.receive", "net",
                               {"nbytes": float(nbytes)}):
            while remaining > 0:
                burst = min(remaining, self.cwnd, float(BURST_CAP_BYTES))
                if first_burst:
                    # Server→client propagation of the first data segment.
                    yield self.env.timeout(self.link.spec.rtt_s / 2)
                    first_burst = False
                elif self.cwnd < pipe:
                    # Ack-clocked stall: the next round waits a full RTT.
                    self._m_rounds.inc()
                    yield self.env.timeout(self.link.spec.rtt_s)
                link_done = self.env.process(self.link.transmit(burst))
                cpu_done = self.env.process(
                    self.stack.process_rx(burst, self.tls))
                yield self.env.all_of([link_done, cpu_done])
                remaining -= burst
                self.cwnd = min(self.cwnd * 2.0, float(MAX_WINDOW_BYTES))
        self.bytes_downloaded += nbytes

    def request(self, upload_bytes: float, download_bytes: float,
                server_think_s: float = 0.0):
        """Process: a request/response exchange (e.g. one HTTP GET)."""
        yield from self.send(upload_bytes)
        if server_think_s > 0:
            yield self.env.timeout(server_think_s)
        yield from self.receive(download_bytes)


__all__ = [
    "BURST_CAP_BYTES",
    "INITIAL_WINDOW_BYTES",
    "MAX_WINDOW_BYTES",
    "TcpConnection",
]
