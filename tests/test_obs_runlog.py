"""Run-level event log: writer behavior, runner/supervisor emission,
and the same-seed determinism contract."""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.background import make_rng
from repro.core.experiments import RobustTrialRunner, TrialRunner
from repro.obs.runlog import (
    HOST_EVENTS,
    NULL_RUNLOG,
    NullRunLog,
    RUNLOG_VERSION,
    RunLog,
    deterministic_bytes,
    deterministic_events,
    read_runlog,
    runlog_of,
    snapshot_digest,
)
from repro.parallel.chaos import (
    CHAOS_CRASH,
    ChaosExecutor,
    ChaosFault,
    ChaosPlan,
)
from repro.sim import Environment, Interrupt


def seeded_trial(seed: int) -> float:
    return make_rng(seed).uniform(1.0, 2.0)


def crashy_trial(seed: int) -> float:
    rng = make_rng(seed)
    if rng.random() < 0.4:
        raise Interrupt("fault:crash")
    return rng.uniform(1.0, 2.0)


def kernel_trial(seed: int) -> float:
    env = Environment()
    rng = make_rng(seed)

    def spin():
        for _ in range(20):
            yield env.timeout(rng.uniform(0.1, 1.0))

    env.run(env.process(spin()))
    return env.now


# -- writer behavior --------------------------------------------------------

def test_runlog_writes_canonical_sorted_compact_lines(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunLog(path) as runlog:
        runlog.emit("run_start", trials=2, experiment="x")
        runlog.emit("trial_complete", trial=0, status="ok",
                    host={"wall_s": 0.5})
    lines = path.read_text().splitlines()
    assert lines[0] == '{"event":"run_start","experiment":"x","trials":2}'
    assert lines[1] == ('{"event":"trial_complete","host":{"wall_s":0.5},'
                        '"status":"ok","trial":0}')


def test_runlog_appends_and_omits_empty_host(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunLog(path) as runlog:
        runlog.emit("run_start")
    with RunLog(path) as runlog:
        runlog.emit("run_end", host=None)
        runlog.emit("signal_drain", host={})
    events = read_runlog(path)
    assert [e["event"] for e in events] == ["run_start", "run_end",
                                            "signal_drain"]
    assert all("host" not in e for e in events)


def test_pathless_runlog_feeds_listeners_only(tmp_path):
    seen = []
    runlog = RunLog(listeners=[seen.append])
    runlog.emit("run_start", trials=1)
    runlog.close()
    assert seen == [{"event": "run_start", "trials": 1}]
    assert runlog.path is None
    assert list(tmp_path.iterdir()) == []


def test_null_runlog_is_inert_and_resolvable():
    NULL_RUNLOG.emit("anything", with_fields=1, host={"wall_s": 1.0})
    NULL_RUNLOG.close()
    with NULL_RUNLOG as runlog:
        assert not runlog.enabled
    assert runlog_of(object()) is NULL_RUNLOG

    class Carrier:
        runlog = NULL_RUNLOG

    assert runlog_of(Carrier()) is NULL_RUNLOG


def test_runlog_pickles_to_the_null_object(tmp_path):
    runlog = RunLog(tmp_path / "run.jsonl", listeners=[print])
    clone = pickle.loads(pickle.dumps(runlog))
    assert isinstance(clone, NullRunLog)
    runlog.emit("run_start")  # the original still writes
    runlog.close()
    assert read_runlog(tmp_path / "run.jsonl") == [{"event": "run_start"}]


def test_read_runlog_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunLog(path) as runlog:
        runlog.emit("run_start", trials=3)
        runlog.emit("run_end")
    with path.open("a", encoding="utf-8") as fh:  # simlint: disable=OBS502 -- simulating a killed writer's torn line
        fh.write('{"event":"trial_co')
    events = read_runlog(path)
    assert [e["event"] for e in events] == ["run_start", "run_end"]


def test_snapshot_digest_is_short_stable_and_none_safe():
    snapshot = {"sim.steps": 10.0, "net.tx": 3.0}
    digest = snapshot_digest(snapshot)
    assert digest == snapshot_digest(dict(reversed(list(snapshot.items()))))
    assert len(digest) == 12 and int(digest, 16) >= 0
    assert snapshot_digest({"sim.steps": 11.0}) != digest
    assert snapshot_digest(None) is None


# -- deterministic view -----------------------------------------------------

def test_deterministic_events_drop_host_events_and_host_keys():
    events = [
        {"event": "run_start", "trials": 2},
        {"event": "task_dispatch", "index": 0, "attempt": 0},
        {"event": "trial_complete", "trial": 0, "host": {"wall_s": 1.0}},
        {"event": "pool_rebuild", "workers": 2},
        {"event": "run_end", "completed": 2},
    ]
    view = deterministic_events(events)
    assert [e["event"] for e in view] == ["run_start", "trial_complete",
                                          "run_end"]
    assert all("host" not in e for e in view)
    # The input events are untouched (copies, not mutation).
    assert "host" in events[2]


def test_host_events_is_the_closed_supervisor_set():
    assert HOST_EVENTS == {"task_dispatch", "task_complete", "task_retry",
                           "pool_rebuild", "hang_reclaim", "quarantine",
                           "signal_drain", "cache_hit", "cache_miss",
                           "cache_store"}
    assert deterministic_bytes([{"event": e} for e in HOST_EVENTS]) == b""


# -- runner emission --------------------------------------------------------

def run_robust(tmp_path, label, trial_fn=seeded_trial, trials=4,
               runlog_name=None, journal_name=None, executor=None):
    runlog = (RunLog(tmp_path / runlog_name) if runlog_name else None)
    runner = RobustTrialRunner(
        trials=trials, experiment="runlog-test", max_attempts=2,
        journal_path=(tmp_path / journal_name) if journal_name else None,
        executor=executor, runlog=runlog)
    report = runner.run(trial_fn)
    if runlog is not None:
        runlog.close()
    return report


def test_robust_runner_emits_start_completions_end(tmp_path):
    report = run_robust(tmp_path, "a", runlog_name="run.jsonl")
    events = read_runlog(tmp_path / "run.jsonl")
    assert events[0]["event"] == "run_start"
    assert events[0]["experiment"] == "runlog-test"
    assert events[0]["trials"] == 4 and events[0]["pending"] == 4
    assert events[0]["runlog_version"] == RUNLOG_VERSION
    assert set(events[0]["config"]) == {"jobs", "max_attempts",
                                        "step_budget", "wall_budget_s"}
    completions = [e for e in events if e["event"] == "trial_complete"]
    assert [e["trial"] for e in completions] == [0, 1, 2, 3]
    assert all(e["host"]["wall_s"] >= 0.0 for e in completions)
    assert all(e["status"] == "ok" for e in completions)
    assert events[-1] == {"event": "run_end", "completed": report.completed,
                          "failures": 0, "quarantined": 0}


def test_failed_trials_are_logged_with_status_and_error(tmp_path):
    run_robust(tmp_path, "a", trial_fn=crashy_trial, trials=10,
               runlog_name="run.jsonl")
    events = read_runlog(tmp_path / "run.jsonl")
    completions = [e for e in events if e["event"] == "trial_complete"]
    failed = [e for e in completions if e["status"] != "ok"]
    assert failed, "0.4 crash rate over 10 trials must fail at least once"
    assert all(e["error"] for e in failed)
    assert events[-1]["failures"] == len(failed)


def test_resumed_run_logs_resumed_and_pending_counts(tmp_path):
    # First pass journals 10 trials at a ~40% crash rate; the resume
    # re-runs only the failed ones, so resumed + pending partition 10.
    first = run_robust(tmp_path, "a", trial_fn=crashy_trial, trials=10,
                       journal_name="j.json")
    assert 0 < first.completed < 10
    runlog = RunLog(tmp_path / "run.jsonl")
    runner = RobustTrialRunner(trials=10, experiment="runlog-test",
                               max_attempts=2,
                               journal_path=tmp_path / "j.json",
                               runlog=runlog)
    runner.run(crashy_trial, resume=True)
    runlog.close()
    start = read_runlog(tmp_path / "run.jsonl")[0]
    assert start["trials"] == 10
    assert start["resumed"] == first.completed
    assert start["pending"] == 10 - first.completed


def test_runlog_resolves_from_executor_attachment(tmp_path):
    from repro.parallel import SerialExecutor

    executor = SerialExecutor()
    executor.runlog = RunLog(tmp_path / "run.jsonl")
    run_robust(tmp_path, "a", executor=executor)
    executor.runlog.close()
    events = read_runlog(tmp_path / "run.jsonl")
    assert [e["event"] for e in events][:2] == ["run_start",
                                                "trial_complete"]


def test_plain_trial_runner_emits_when_runlog_attached(tmp_path):
    runlog = RunLog(tmp_path / "run.jsonl")
    runner = TrialRunner(trials=3, experiment="plain", runlog=runlog)
    values = runner.run(seeded_trial)
    runlog.close()
    assert len(values) == 3
    events = read_runlog(tmp_path / "run.jsonl")
    assert [e["event"] for e in events] == [
        "run_start", "trial_complete", "trial_complete", "trial_complete",
        "run_end"]
    assert events[0]["experiment"] == "plain"


# -- supervisor emission ----------------------------------------------------

def test_chaos_crash_emits_dispatch_retry_and_rebuild(tmp_path):
    plan = ChaosPlan(faults=(ChaosFault(index=1, kind=CHAOS_CRASH),))
    executor = ChaosExecutor(2, plan, poll_interval_s=0.02)
    executor.runlog = RunLog(tmp_path / "run.jsonl")
    results = executor.map(seeded_trial, list(range(4)))
    executor.runlog.close()
    assert results == [seeded_trial(s) for s in range(4)]
    kinds = [e["event"] for e in read_runlog(tmp_path / "run.jsonl")]
    assert kinds.count("task_complete") == 4
    assert kinds.count("pool_rebuild") >= 1
    assert kinds.count("task_retry") >= 1
    assert kinds.count("task_dispatch") >= 5  # 4 tasks + >=1 re-dispatch
    retries = [e for e in read_runlog(tmp_path / "run.jsonl")
               if e["event"] == "task_retry"]
    # The pool break charges the whole in-flight cohort, so the planned
    # victim is among the retried indices (possibly with collateral).
    assert all(e["kind"] == "worker_crash" for e in retries)
    assert 1 in {e["index"] for e in retries}


def test_supervision_totals_accumulate_across_runs():
    plan = ChaosPlan(faults=(ChaosFault(index=0, kind=CHAOS_CRASH),))
    executor = ChaosExecutor(2, plan, poll_interval_s=0.02)
    executor.map(seeded_trial, [0, 1])
    first_retries = executor.supervision_totals.task_retries
    assert first_retries >= 1
    executor.map(seeded_trial, [0, 1])  # plan fires again on a fresh run
    assert executor.supervision_totals.task_retries > first_retries
    assert executor.last_supervision.task_retries < \
        executor.supervision_totals.task_retries


# -- determinism contract ---------------------------------------------------

def test_journal_bytes_unchanged_by_enabling_the_runlog(tmp_path):
    run_robust(tmp_path, "off", trial_fn=crashy_trial, trials=6,
               journal_name="off.json")
    run_robust(tmp_path, "on", trial_fn=crashy_trial, trials=6,
               journal_name="on.json", runlog_name="run.jsonl")
    assert (tmp_path / "off.json").read_bytes() == \
        (tmp_path / "on.json").read_bytes()


def test_parallel_runlog_matches_serial_after_host_strip_and_sort(tmp_path):
    from repro.parallel import SupervisedExecutor

    run_robust(tmp_path, "serial", trial_fn=kernel_trial,
               runlog_name="serial.jsonl")
    run_robust(tmp_path, "pooled", trial_fn=kernel_trial,
               runlog_name="pooled.jsonl",
               executor=SupervisedExecutor(2, poll_interval_s=0.02))

    def sorted_view(name):
        view = deterministic_events(read_runlog(tmp_path / name))
        # Parallel completion order is host scheduling; trial order isn't.
        view.sort(key=lambda e: (e["event"] != "run_start",
                                 e["event"] == "run_end",
                                 e.get("trial", -1)))
        return [{k: v for k, v in e.items() if k != "config"} for e in view]

    serial = sorted_view("serial.jsonl")
    pooled = sorted_view("pooled.jsonl")
    assert serial == pooled


@settings(max_examples=10, deadline=None)
@given(trials=st.integers(min_value=1, max_value=6),
       run=st.integers(min_value=0, max_value=3))
def test_same_seed_serial_runlogs_are_byte_identical(tmp_path_factory,
                                                     trials, run):
    """Property: the deterministic view of two same-seed serial runs is
    byte-identical — host wall timings are the only varying fields and
    they live under the stripped ``host`` key."""
    streams = []
    for repeat in range(2):
        base = tmp_path_factory.mktemp(f"runlog-{run}-{repeat}")
        run_robust(base, "p", trial_fn=crashy_trial, trials=trials,
                   runlog_name="run.jsonl", journal_name="j.json")
        events = read_runlog(base / "run.jsonl")
        raw = (base / "run.jsonl").read_bytes()
        assert deterministic_bytes(events) != raw  # host data was present
        streams.append(deterministic_bytes(events))
    assert streams[0] == streams[1]


def test_deterministic_bytes_round_trip_is_parseable():
    events = [{"event": "run_start", "trials": 1},
              {"event": "trial_complete", "trial": 0,
               "host": {"wall_s": 2.0}}]
    payload = deterministic_bytes(events)
    parsed = [json.loads(line) for line in payload.decode().splitlines()]
    assert parsed == deterministic_events(events)
    assert deterministic_bytes([]) == b""
