"""Fig 2a: Web PLT across the seven Table 1 devices."""

from repro.analysis import ascii_bars
from repro.core.studies import WebStudy, WebStudyConfig
from repro.device import by_name


def run_fig2a():
    study = WebStudy(WebStudyConfig(n_pages=5, trials=2))
    return study.qoe_across_devices()


def test_fig2a(benchmark, fig_printer):
    rows = benchmark.pedantic(run_fig2a, rounds=1, iterations=1)
    labels = [spec.name for spec, _ in rows]
    values = [summary.mean for _, summary in rows]
    body = ascii_bars(labels, values, unit="s")
    body += "\n" + "\n".join(
        f"{spec.name:16s} {summary}" for spec, summary in rows
    )
    fig_printer("Fig 2a: PLT across devices (Chrome, default governor)", body)

    by_device = {spec.name: summary for spec, summary in rows}
    intex = by_device["Intex Amaze+"]
    gionee = by_device["Gionee F103"]
    pixel2 = by_device["Google Pixel2"]
    s6 = by_device["SG S6-edge"]
    # Paper: Intex 5×, Gionee 3× worse than the Pixel2 (we check bands).
    assert 3.0 < intex.mean / pixel2.mean < 6.5
    assert 1.8 < gionee.mean / pixel2.mean < 4.0
    # Paper: the Pixel2 outperforms the pricier S6-edge.
    assert pixel2.mean < s6.mean
    # Paper: the low-end deviation dwarfs the high-end one.
    assert intex.stdev > pixel2.stdev
