"""Script executor that offloads regex evaluation to the DSP.

Drop-in replacement for the browser's
:class:`~repro.web.browser.CpuScriptExecutor`: inside every function that
contains regular expressions, the regex evaluation runs on the DSP over
FastRPC (one batched invocation per function, as the paper's C ports do),
while the function's remaining work stays on the CPU.  The call is
synchronous — the main thread blocks in FastRPC — matching the paper's
ePLT replay, where each offloaded function's execution time is *replaced*
by its measured DSP runtime.
"""

from __future__ import annotations

from typing import Optional

from repro.dsp.fastrpc import FastRpcChannel
from repro.dsp.kernel import DspRegexKernel
from repro.jsruntime import CpuCostModel, Script
from repro.web.browser import BrowserEngine, CpuScriptExecutor


class DspScriptExecutor(CpuScriptExecutor):
    """Executes regex-containing functions on the DSP coprocessor."""

    def __init__(
        self,
        channel: FastRpcChannel,
        kernel: Optional[DspRegexKernel] = None,
        js_cost: Optional[CpuCostModel] = None,
    ):
        super().__init__(js_cost)
        self.channel = channel
        self.kernel = kernel or DspRegexKernel()

    def execute(self, browser: BrowserEngine, script: Script):
        """Process: run ``script``, offloading eligible functions."""
        env = browser.env
        cost = browser.cost
        yield from browser.device.run(
            script.compile_ops, cost.script_stall(script.compile_ops)
        )
        for function in script.functions:
            if function.has_regex:
                started = env.now
                # Generic work stays on the CPU ...
                yield from browser.device.run(
                    function.generic_ops,
                    cost.script_stall(function.generic_ops),
                )
                # ... the regex evaluation crosses to the DSP in one batch.
                yield from self.channel.invoke(
                    self.kernel.payload_bytes(function),
                    self.kernel.regex_cycles(function),
                )
                browser.result.script_regex_fn_time += env.now - started
                browser.result.regex_fn_intervals.append((started, env.now))
            else:
                ops = self.js_cost.function_ops(function)
                yield from browser.device.run(ops, cost.script_stall(ops))


__all__ = ["DspScriptExecutor"]
