"""Run-level event log: an append-only JSONL stream of host execution facts.

Where the :class:`~repro.obs.tracer.Tracer` records what happened inside
*one* simulated trial, the runlog records what happened to the *run* —
the host-level facts the journal deliberately omits: when each trial
finished and how long it took on the wall clock, how often the worker
pool broke, which tasks hung or were quarantined, whether a SIGINT drain
cut the sweep short.  ``RobustTrialRunner`` and ``SupervisedExecutor``
emit into one :class:`RunLog`; the same event stream feeds the live
``--progress`` renderer (:mod:`repro.obs.progress`) and the post-hoc
``python -m repro report`` view (:mod:`repro.obs.report`).

Schema (``RUNLOG_VERSION`` 1) — one JSON object per line, sorted keys,
an ``event`` field naming the shape:

* deterministic events, emitted by the trial runners:

  - ``run_start`` — experiment, trials, pending, resumed, ``config``
    (max_attempts, step_budget, wall_budget_s, jobs), ``runlog_version``;
  - ``trial_complete`` — trial, status, attempts, value, steps, error,
    ``metrics_digest`` (short hash of the canonical metric snapshot);
  - ``run_end`` — completed, failures, quarantined.

* host events (:data:`HOST_EVENTS`), emitted by the supervisor:
  ``task_dispatch``, ``task_complete``, ``task_retry``, ``pool_rebuild``,
  ``hang_reclaim``, ``quarantine``, ``signal_drain`` — plus the result
  cache's ``cache_hit``/``cache_miss``/``cache_store``
  (:mod:`repro.cache`): whether a trial was replayed or recomputed is a
  fact about this host's cache state, never about the experiment.

Determinism contract: host timing lives only under each event's ``host``
key, and host *events* are a closed set, so
:func:`deterministic_events` (drop host events, strip ``host`` keys)
yields a byte-identical canonical stream for two same-seed serial runs —
property-tested in ``tests/test_obs_runlog.py``.  The journal itself is
never touched by this module, so enabling the runlog cannot change
journal bytes.

Like the tracer, the disabled path is a shared null object
(:data:`NULL_RUNLOG`) whose ``emit`` is an allocation-free no-op.  This
module is the only sanctioned writer of ``run.jsonl`` files — simlint
rule OBS502 flags direct writes elsewhere.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

#: Runlog schema version, stamped into every ``run_start`` event.
RUNLOG_VERSION = 1

#: Default runlog filename, written beside the journal.
RUNLOG_NAME = "run.jsonl"

#: Events that describe the execution host (dispatch order, pool health).
#: They are inherently run-dependent and are dropped wholesale by
#: :func:`deterministic_events`.
HOST_EVENTS = frozenset({
    "task_dispatch",
    "task_complete",
    "task_retry",
    "pool_rebuild",
    "hang_reclaim",
    "quarantine",
    "signal_drain",
    "cache_hit",
    "cache_miss",
    "cache_store",
})

Event = Dict[str, Any]
Listener = Callable[[Event], None]


def _canonical(event: Event) -> str:
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def snapshot_digest(snapshot: Optional[Dict[str, Any]]) -> Optional[str]:
    """Short stable digest of a metric snapshot (None when absent).

    The digest is a 12-hex-character SHA-256 prefix of the canonical
    JSON serialization — enough to tell two snapshots apart in a log
    line without embedding the whole snapshot in every event.
    """
    if snapshot is None:
        return None
    return hashlib.sha256(_canonical(snapshot).encode()).hexdigest()[:12]


class RunLog:
    """Append-only JSONL writer plus a listener fan-out.

    ``path`` is optional: a pathless runlog still forwards every event to
    its listeners (that is how ``--progress`` works without ``--journal``).
    Each emitted line is flushed immediately so a crashed run leaves a
    complete prefix behind.  Only the parent process may hold a
    :class:`RunLog` — workers return records, they never log.
    """

    enabled: bool = True

    def __init__(self, path: Optional[Union[str, Path]] = None,
                 listeners: Sequence[Listener] = ()):
        self.path = Path(path) if path else None
        self.listeners: List[Listener] = list(listeners)
        self._fh: Optional[Any] = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")

    def emit(self, event: str, host: Optional[Dict[str, Any]] = None,
             **fields: Any) -> None:
        """Append one event line and forward it to the listeners.

        ``host`` carries the fields that may legitimately differ between
        two same-seed runs (wall timings, worker identifiers); everything
        else must be deterministic.
        """
        record: Event = {"event": event, **fields}
        if host:
            record["host"] = host
        if self._fh is not None:
            self._fh.write(_canonical(record) + "\n")
            self._fh.flush()
        for listener in self.listeners:
            listener(record)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __reduce__(self) -> Any:
        # Only the parent process logs; a RunLog caught inside a pickled
        # task (the runner/executor travel with it) arrives in the
        # worker as the disabled null object instead of dragging an open
        # file handle across the process boundary.
        return (NullRunLog, ())

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()


class NullRunLog:
    """Disabled runlog: ``emit`` is an allocation-free no-op."""

    __slots__ = ()
    enabled: bool = False
    path = None

    def emit(self, event: str, host: Optional[Dict[str, Any]] = None,
             **fields: Any) -> None:
        return None

    def close(self) -> None:
        return None

    def __enter__(self) -> "NullRunLog":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None


NULL_RUNLOG = NullRunLog()

AnyRunLog = Union[RunLog, NullRunLog]


def runlog_of(obj: Any) -> AnyRunLog:
    """``obj.runlog`` when attached and enabled, else the null singleton."""
    runlog = getattr(obj, "runlog", None)
    return NULL_RUNLOG if runlog is None else runlog


def read_runlog(path: Union[str, Path]) -> List[Event]:
    """Parse a runlog file back into its event dicts, in stream order.

    Tolerates a truncated final line (the writer flushes per line, but a
    hard kill can still cut the last write short).
    """
    events: List[Event] = []
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except ValueError:
            break  # truncated tail from a killed writer
    return events


def deterministic_events(events: Iterable[Event]) -> List[Event]:
    """The seed-determined view of an event stream.

    Drops :data:`HOST_EVENTS` entirely and strips the ``host`` key from
    what remains.  For a serial run, two same-seed streams are identical
    under this view; for a parallel run, sort the ``trial_complete``
    events by trial index first (completion order is host scheduling).
    """
    view: List[Event] = []
    for event in events:
        if event.get("event") in HOST_EVENTS:
            continue
        view.append({k: v for k, v in event.items() if k != "host"})
    return view


def deterministic_bytes(events: Iterable[Event]) -> bytes:
    """Canonical JSONL bytes of :func:`deterministic_events`."""
    lines = [_canonical(e) for e in deterministic_events(events)]
    return ("\n".join(lines) + "\n").encode() if lines else b""


__all__ = [
    "AnyRunLog",
    "Event",
    "HOST_EVENTS",
    "NULL_RUNLOG",
    "NullRunLog",
    "RUNLOG_NAME",
    "RUNLOG_VERSION",
    "RunLog",
    "deterministic_bytes",
    "deterministic_events",
    "read_runlog",
    "runlog_of",
    "snapshot_digest",
]
