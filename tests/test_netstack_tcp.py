"""Unit tests for TCP over the simulated link and host stack."""

import pytest

from repro.device import Device, NEXUS4
from repro.netstack import HostStack, Link, LinkSpec, TcpConnection
from repro.netstack.hoststack import MSS, PacketCostModel
from repro.netstack.tcp import INITIAL_WINDOW_BYTES, MAX_WINDOW_BYTES
from repro.sim import Environment


def make_stack(mhz=1512, link_spec=None):
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=mhz)
    link = Link(env, link_spec or LinkSpec())
    stack = HostStack(env, device, PacketCostModel())
    return env, device, link, stack


def test_connect_costs_one_rtt():
    env, _, link, stack = make_stack()
    conn = TcpConnection(env, link, stack)

    def connector():
        yield from conn.connect()

    env.run(env.process(connector()))
    assert conn.connected
    assert env.now >= link.spec.rtt_s
    assert env.now < link.spec.rtt_s + 0.01


def test_tls_connect_costs_more():
    env, _, link, stack = make_stack()
    plain = TcpConnection(env, link, stack)

    def run_connect(conn):
        yield from conn.connect()

    env.run(env.process(run_connect(plain)))
    plain_time = env.now

    env2, _, link2, stack2 = make_stack()
    tls = TcpConnection(env2, link2, stack2, tls=True)
    env2.run(env2.process(run_connect(tls)))
    assert env2.now > plain_time + 2 * link2.spec.rtt_s * 0.9


def test_small_download_dominated_by_rtt():
    env, _, link, stack = make_stack()
    conn = TcpConnection(env, link, stack)

    def fetch():
        yield from conn.request(400, 10_000)

    env.run(env.process(fetch()))
    # handshake + request + response ≈ 2 RTT; far below 100 ms.
    assert env.now < 0.1
    assert conn.bytes_downloaded == 10_000


def test_large_download_approaches_link_rate():
    env, _, link, stack = make_stack()
    conn = TcpConnection(env, link, stack)
    nbytes = 4_000_000

    def fetch():
        yield from conn.receive(nbytes)

    env.run(env.process(fetch()))
    goodput = nbytes * 8 / env.now
    assert goodput > 0.8 * link.spec.goodput_bps


def test_slow_start_doubles_window():
    env, _, link, stack = make_stack()
    conn = TcpConnection(env, link, stack)
    assert conn.cwnd == INITIAL_WINDOW_BYTES

    def fetch():
        yield from conn.receive(INITIAL_WINDOW_BYTES * 3)

    env.run(env.process(fetch()))
    assert conn.cwnd > INITIAL_WINDOW_BYTES
    assert conn.cwnd <= MAX_WINDOW_BYTES


def test_cpu_bound_receive_slower_at_low_clock():
    durations = {}
    for mhz in (384, 1512):
        env, _, link, stack = make_stack(mhz=mhz)
        conn = TcpConnection(env, link, stack)

        def fetch():
            yield from conn.receive(2_000_000)

        env.run(env.process(fetch()))
        durations[mhz] = env.now
    assert durations[384] > durations[1512] * 1.2


def test_packet_cost_model_counts_segments():
    cost = PacketCostModel()
    assert cost.rx_ops(1) == cost.rx_ops_per_pkt
    assert cost.rx_ops(MSS) == cost.rx_ops_per_pkt
    assert cost.rx_ops(MSS + 1) == 2 * cost.rx_ops_per_pkt


def test_tls_adds_per_byte_cost():
    cost = PacketCostModel()
    assert cost.rx_ops(MSS, tls=True) > cost.rx_ops(MSS)


def test_upload_counted():
    env, _, link, stack = make_stack()
    conn = TcpConnection(env, link, stack)

    def push():
        yield from conn.send(50_000)

    env.run(env.process(push()))
    assert conn.bytes_uploaded == 50_000
    assert stack.tx_bytes >= 50_000


def test_server_think_time_delays_response():
    env, _, link, stack = make_stack()
    conn = TcpConnection(env, link, stack)

    def fetch():
        yield from conn.request(400, 1_000, server_think_s=0.5)

    env.run(env.process(fetch()))
    assert env.now > 0.5
