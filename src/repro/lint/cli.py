"""``python -m repro lint`` subcommand.

Exit codes: 0 clean, 1 findings at/above ``--fail-on``, 2 usage error.

``--project`` enables whole-program mode: every file is parsed once,
and the DF7xx dataflow rules (RNG provenance, wall-clock taint,
pickle-safety) run over the combined model alongside the file rules.
``--baseline FILE`` hides findings recorded in an accepted baseline;
``--write-baseline FILE`` records the current findings as that baseline
(incremental-adoption workflow for new rules).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

import repro
from repro.lint.engine import (
    run_lint,
    run_project_lint,
    select_rules,
    write_baseline,
)
from repro.lint.findings import Severity
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import ALL_PROJECT_RULES, ALL_RULES, ProjectRule

USAGE_ERROR = 2


def default_target() -> Path:
    """The installed ``repro`` package — lint the whole reproduction."""
    return Path(repro.__file__).resolve().parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="simlint: determinism & sim-invariant static analysis",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--project", action="store_true",
        help="whole-program mode: run the DF7xx dataflow rules "
             "(project model, call graph, taint summaries) in addition "
             "to the per-file rules",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format",
    )
    parser.add_argument(
        "--select", metavar="RULE,...", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULE,...", default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--severity", choices=("info", "warning", "error"), default="info",
        help="hide findings below this severity",
    )
    parser.add_argument(
        "--fail-on", choices=("info", "warning", "error"), default="warning",
        help="exit 1 if any finding is at/above this severity",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", type=Path, default=None,
        help="hide findings recorded in this baseline file "
             "(reported as baselined, not failures)",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", type=Path, default=None,
        help="record the current findings as the accepted baseline "
             "and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def list_rules() -> str:
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.id} [{rule.severity}] {rule.title}")
    for rule in ALL_PROJECT_RULES:
        lines.append(f"{rule.id} [{rule.severity}] {rule.title} (--project)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_:
        # argparse exits 2 on usage errors and 0 on --help; propagate the
        # code as a return value so the caller controls process exit.
        return int(exit_.code or 0)

    if args.list_rules:
        print(list_rules())
        return 0

    paths = args.paths or [default_target()]
    missing = [str(p) for p in paths if not Path(p).exists()]
    if missing:
        parser.print_usage()
        print(f"error: no such path(s): {', '.join(missing)}")
        return USAGE_ERROR

    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    try:
        chosen = select_rules(select, ignore)
        if not args.project and select is not None:
            project_only = sorted(
                rule.id for rule in chosen if isinstance(rule, ProjectRule))
            if project_only:
                raise ValueError(
                    f"rule(s) {', '.join(project_only)} need whole-program "
                    f"analysis; add --project"
                )
        if args.project:
            report = run_project_lint(
                paths,
                select=select,
                ignore=ignore,
                min_severity=Severity.parse(args.severity),
                root=Path.cwd(),
                baseline=args.baseline,
            )
        else:
            if args.baseline is not None:
                raise ValueError("--baseline requires --project")
            if args.write_baseline is not None:
                raise ValueError("--write-baseline requires --project")
            report = run_lint(
                paths,
                select=select,
                ignore=ignore,
                min_severity=Severity.parse(args.severity),
                root=Path.cwd(),
            )
    except ValueError as error:
        parser.print_usage()
        print(f"error: {error}")
        return USAGE_ERROR

    if args.write_baseline is not None:
        write_baseline(report, args.write_baseline)
        print(f"baseline: recorded {len(report.findings)} finding(s) "
              f"to {args.write_baseline}")
        return 0

    print(render_json(report) if args.format == "json"
          else render_text(report))
    return 1 if report.count_at_least(Severity.parse(args.fail_on)) else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
