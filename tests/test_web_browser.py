"""Unit/behaviour tests for the browser engine."""

import pytest

from repro.device import Device, NEXUS4, PIXEL2
from repro.netstack import Link
from repro.sim import Environment
from repro.web import BrowserEngine, BrowserCostModel
from repro.workloads import generate_page


def load(page, spec=NEXUS4, **device_kwargs):
    env = Environment()
    device = Device(env, spec, **device_kwargs)
    browser = BrowserEngine(env, device, Link(env))
    return env.run(env.process(browser.load(page)))


@pytest.fixture(scope="module")
def news_page(regex_factory):
    return generate_page(11, "news", regex_factory)


@pytest.fixture(scope="module")
def business_page(regex_factory):
    return generate_page(12, "business", regex_factory)


def test_load_produces_complete_result(news_page):
    result = load(news_page, pinned_mhz=1512)
    assert result.plt > 0
    assert result.n_requests == len(news_page.objects)
    assert result.bytes_fetched == pytest.approx(news_page.total_bytes)
    assert result.main_busy_time > 0
    assert result.compute_time > 0
    assert result.network_time >= 0
    assert result.plt >= result.compute_time


def test_plt_scales_with_clock(news_page):
    fast = load(news_page, pinned_mhz=1512).plt
    slow = load(news_page, pinned_mhz=384).plt
    assert 2.5 < slow / fast < 5.0


def test_cores_beyond_two_barely_help(news_page):
    """The paper: browsers use no more than two cores."""
    four = load(news_page, pinned_mhz=1512, online_cores=4).plt
    two = load(news_page, pinned_mhz=1512, online_cores=2).plt
    one = load(news_page, pinned_mhz=1512, online_cores=1).plt
    assert two < 1.25 * four
    assert one > 1.1 * four


def test_fast_device_loads_faster(news_page):
    nexus = load(news_page, spec=NEXUS4, governor="OD").plt
    pixel = load(news_page, spec=PIXEL2, governor="OD").plt
    assert pixel < nexus


def test_low_memory_slows_load(news_page):
    full = load(news_page, governor="OD", memory_gb=2.0).plt
    tight = load(news_page, governor="OD", memory_gb=0.5).plt
    assert 1.4 < tight / full < 3.0


def test_script_time_dominated_by_category(news_page, business_page):
    news = load(news_page, pinned_mhz=1512)
    business = load(business_page, pinned_mhz=1512)
    assert news.script_time > business.script_time


def test_activities_form_a_dag(news_page):
    result = load(news_page, pinned_mhz=1512)
    ids = {a.id for a in result.activities}
    assert len(ids) == len(result.activities)
    for activity in result.activities:
        assert activity.end >= activity.start
        for dep in activity.deps:
            assert dep in ids
            assert dep != activity.id


def test_deps_precede_dependents(news_page):
    result = load(news_page, pinned_mhz=1512)
    by_id = {a.id: a for a in result.activities}
    for activity in result.activities:
        for dep in activity.deps:
            assert by_id[dep].start <= activity.start + 1e-9


def test_blocking_scripts_execute_in_document_order(news_page):
    result = load(news_page, pinned_mhz=1512)
    script_urls = [a.label for a in result.activities if a.kind == "script"]
    sync_urls = [u for u in script_urls if u.startswith("sync")]
    roots = [u for u in sync_urls if "_inj" not in u]
    page_order = [
        o.script.url for o in sorted(
            (o for o in news_page.objects
             if o.blocking and o.parent == 0 and o.script is not None),
            key=lambda o: o.discovery_frac,
        )
    ]
    assert roots == page_order


def test_paint_happens_after_style_and_layout(news_page):
    result = load(news_page, pinned_mhz=1512)
    by_kind = {}
    for activity in result.activities:
        if activity.kind in ("style", "layout", "paint"):
            by_kind[activity.kind] = activity
    assert by_kind["style"].end <= by_kind["layout"].start + 1e-9
    assert by_kind["layout"].end <= by_kind["paint"].start + 1e-9


def test_every_image_decoded(news_page):
    result = load(news_page, pinned_mhz=1512)
    decodes = [a for a in result.activities if a.kind == "decode"]
    images = [o for o in news_page.objects if o.kind == "img"]
    assert len(decodes) == len(images)


def test_lazy_images_fetch_after_paint(news_page):
    result = load(news_page, pinned_mhz=1512)
    paint = next(a for a in result.activities if a.kind == "paint")
    lazy_urls = {o.url for o in news_page.objects if o.lazy}
    if not lazy_urls:
        pytest.skip("page has no lazy images")
    lazy_fetches = [a for a in result.activities
                    if a.kind == "fetch" and a.label in lazy_urls]
    assert lazy_fetches
    for fetch in lazy_fetches:
        assert fetch.start >= paint.end - 1e-9


def test_determinism(news_page):
    first = load(news_page, pinned_mhz=810)
    second = load(news_page, pinned_mhz=810)
    assert first.plt == second.plt
    assert first.compute_time == second.compute_time


def test_regex_fn_intervals_recorded(news_page):
    result = load(news_page, pinned_mhz=1512)
    assert result.regex_fn_intervals
    total = sum(end - start for start, end in result.regex_fn_intervals)
    assert total == pytest.approx(result.script_regex_fn_time, rel=1e-6)


def test_cost_model_validation():
    cost = BrowserCostModel()
    ops, stall = cost.parse_work(100_000)
    assert ops == 100_000 * cost.parse_ops_per_byte
    assert stall > 0
