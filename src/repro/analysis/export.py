"""Figure-data export: CSV/JSON files for external plotting.

The benchmarks print text tables; downstream users who want to plot the
reproduced figures with their own tooling can dump the underlying series
with these helpers (used by the ``python -m repro`` CLI).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Sequence


def write_csv(path: str | Path, headers: Sequence[str],
              rows: Sequence[Sequence[object]]) -> Path:
    """Write one figure's rows as CSV; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return target


def write_json(path: str | Path, payload: Mapping) -> Path:
    """Write one figure's data as pretty JSON; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


__all__ = ["write_csv", "write_json"]
