"""Pike VM: breadth-first NFA simulation with capture groups.

Executes a compiled :class:`~repro.regexlib.program.Program` over a subject
string in O(len(program) × len(subject)) worst case, no backtracking blowup.
Thread priority (list order) encodes the leftmost-greedy preferences of a
backtracking engine, so match results — including capture spans — agree
with Python's :mod:`re` on the supported syntax subset.

Every instruction execution increments the supplied cost counter; this is
the "work" the offload study prices on CPU vs DSP.
"""

from __future__ import annotations

from typing import Optional

from repro.regexlib.program import (
    ANY,
    ASSERT,
    CHAR,
    JMP,
    MATCH,
    RANGE,
    SAVE,
    SPLIT,
    Program,
)


class Counter:
    """Mutable operation counter shared across engine components."""

    __slots__ = ("ops",)

    def __init__(self) -> None:
        self.ops = 0


def _is_word(char: Optional[str]) -> bool:
    return char is not None and (char.isalnum() or char == "_")


def _assert_holds(kind: str, text: str, pos: int) -> bool:
    if kind == "bol":
        return pos == 0
    if kind == "eol":
        return pos == len(text)
    before = text[pos - 1] if pos > 0 else None
    after = text[pos] if pos < len(text) else None
    boundary = _is_word(before) != _is_word(after)
    if kind == "wb":
        return boundary
    if kind == "nwb":
        return not boundary
    raise ValueError(f"unknown assertion {kind!r}")


def _in_intervals(intervals, codepoint: int) -> bool:
    lo, hi = 0, len(intervals) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        a, b = intervals[mid]
        if codepoint < a:
            hi = mid - 1
        elif codepoint > b:
            lo = mid + 1
        else:
            return True
    return False


class _ThreadList:
    """Priority-ordered thread list with O(1) pc dedupe."""

    __slots__ = ("threads", "seen")

    def __init__(self, program_size: int):
        self.threads: list[tuple[int, tuple]] = []
        self.seen = [False] * program_size

    def clear(self) -> None:
        self.threads.clear()
        for index in range(len(self.seen)):
            self.seen[index] = False


def _add_thread(
    tlist: _ThreadList,
    program: Program,
    pc: int,
    saved: tuple,
    text: str,
    pos: int,
    counter: Counter,
) -> None:
    """Follow zero-width instructions from ``pc``, enqueueing char points.

    Iterative DFS with an explicit stack preserves priority order (the
    first path pushed is explored first).
    """
    stack = [(pc, saved)]
    insts = program.insts
    while stack:
        pc, saved = stack.pop()
        if tlist.seen[pc]:
            continue
        tlist.seen[pc] = True
        counter.ops += 1
        inst = insts[pc]
        op = inst.op
        if op == JMP:
            stack.append((inst.x, saved))
        elif op == SPLIT:
            # Push y first so x (preferred) is processed first.
            stack.append((inst.y, saved))
            stack.append((inst.x, saved))
        elif op == SAVE:
            slots = list(saved)
            slots[inst.x] = pos
            stack.append((pc + 1, tuple(slots)))
        elif op == ASSERT:
            if _assert_holds(inst.x, text, pos):
                stack.append((pc + 1, saved))
        else:
            tlist.threads.append((pc, saved))


def run(
    program: Program,
    text: str,
    start: int = 0,
    anchored: bool = False,
    counter: Optional[Counter] = None,
) -> Optional[tuple]:
    """Execute the program; returns the winning capture-slot tuple.

    ``anchored=True`` requires the match to begin exactly at ``start``;
    otherwise the earliest (leftmost) starting position wins, with greedy
    preference within it.  Slot 0/1 hold the overall span.
    """
    if counter is None:
        counter = Counter()
    n_slots = program.n_slots
    empty_saved = (None,) * n_slots
    current = _ThreadList(len(program))
    pending = _ThreadList(len(program))
    matched: Optional[tuple] = None

    pos = start
    _add_thread(current, program, 0, empty_saved, text, pos, counter)
    while True:
        char = text[pos] if pos < len(text) else None
        code = ord(char) if char is not None else -1
        pending.clear()
        index = 0
        threads = current.threads
        while index < len(threads):
            pc, saved = threads[index]
            index += 1
            counter.ops += 1
            inst = program.insts[pc]
            op = inst.op
            if op == MATCH:
                matched = saved
                # Lower-priority threads can no longer win; cut them.
                break
            if char is None:
                continue
            if op == CHAR:
                if char == inst.x:
                    _add_thread(pending, program, pc + 1, saved, text,
                                pos + 1, counter)
            elif op == RANGE:
                if _in_intervals(inst.x, code):
                    _add_thread(pending, program, pc + 1, saved, text,
                                pos + 1, counter)
            elif op == ANY:
                if char != "\n":
                    _add_thread(pending, program, pc + 1, saved, text,
                                pos + 1, counter)
        # Unanchored search: seed a fresh start at the next position, but
        # only while no match has been found (leftmost-first).
        if char is None:
            break
        pos += 1
        current, pending = pending, current
        if not anchored and matched is None:
            _add_thread(current, program, 0, empty_saved, text, pos, counter)
        if not current.threads and (matched is not None or anchored):
            break
    return matched


__all__ = ["Counter", "run"]
