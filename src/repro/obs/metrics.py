"""Metrics: counters, gauges, and fixed-bucket histograms.

The registry is the quantitative half of :mod:`repro.obs`.  Instruments
are named with dotted lowercase namespaces mirroring the package that
emits them — ``net.link.tx_bytes``, ``video.stalls``, ``web.fetch_ms``,
``device.dvfs.transitions``, ``faults.injected``, ``sim.steps``, and the
host-level ``parallel.*`` supervision family (``parallel.pool_rebuilds``,
``parallel.task_retries``, ``parallel.quarantined`` counters and the
``parallel.live_workers`` gauge) — so a flat snapshot reads like a table
of contents of one trial.  The ``parallel.*`` instruments measure the
execution host, not the simulation, and therefore never enter journaled
per-trial snapshots.

Determinism: instruments hold plain Python floats/ints fed exclusively
from simulated quantities, and :meth:`MetricsRegistry.snapshot` sorts by
name, so the serialized snapshot of a seeded trial is byte-identical
across runs.

Like the tracer, the disabled path must cost nothing: call sites that
cache ``metrics_of(env).counter(...)`` at construction time get
:data:`NULL_INSTRUMENT` back when observability is not installed — every
subsequent ``inc``/``set``/``observe`` is an allocation-free no-op.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Dict, Sequence, Union

#: Dotted, lowercase, at least two segments: ``subsystem.rest[.more]``.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Default histogram buckets for millisecond latencies (upper bounds).
DEFAULT_MS_BUCKETS: tuple[float, ...] = (
    5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} must be dotted lowercase "
            f"(e.g. 'net.link.tx_bytes')"
        )
    return name


def _bucket_label(bound: float) -> str:
    """Stable JSON-key label for a bucket upper bound."""
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """Last-written value (buffer level, current frequency, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed ascending-upper-bound buckets with ``le`` semantics.

    ``bucket_counts[i]`` counts observations ``<= buckets[i]`` and
    ``> buckets[i-1]``; everything above the last bound lands in the
    implicit ``+Inf`` overflow bucket.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "overflow",
                 "count", "sum")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_MS_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"histogram {name!r} buckets must be strictly ascending"
            )
        self.name = name
        self.buckets = bounds
        self.bucket_counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        index = bisect_left(self.buckets, value)
        if index < len(self.buckets):
            self.bucket_counts[index] += 1
        else:
            self.overflow += 1

    def as_dict(self) -> dict:
        buckets = {
            _bucket_label(bound): count
            for bound, count in zip(self.buckets, self.bucket_counts)
        }
        buckets["+Inf"] = self.overflow
        return {"count": self.count, "sum": self.sum, "buckets": buckets}


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, kind: type) -> Instrument:
        existing = self._instruments.get(_check_name(name))
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        instrument = kind(name)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        instrument = self._get(name, Counter)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._get(name, Gauge)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_MS_BUCKETS) -> Histogram:
        existing = self._instruments.get(_check_name(name))
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not Histogram"
                )
            return existing
        instrument = Histogram(name, buckets)
        self._instruments[name] = instrument
        return instrument

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._instruments))

    def snapshot(self) -> dict:
        """Flat ``{name: value-or-histogram-dict}``, sorted by name."""
        out: dict = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = instrument.as_dict()
            else:
                out[name] = instrument.value
        return out

    def __len__(self) -> int:
        return len(self._instruments)


def merge_snapshots(snapshots: Sequence[Dict[str, Any]]) -> dict:
    """Deterministically merge flat :meth:`MetricsRegistry.snapshot` dicts.

    Built for cross-trial aggregation when trials fan out to worker
    processes: each worker returns its own snapshot, and the parent merges
    them without needing the live registries.  Scalar instruments
    (counters *and* gauges — a flat snapshot cannot tell them apart) are
    summed; histogram dicts are merged bucket-wise (counts and sums add,
    bucket labels union).  Callers that need a per-trial gauge reading
    should consult the individual snapshots instead.

    The output is sorted by name and depends only on the multiset of
    inputs' contents and their order of first appearance — which callers
    fix by passing snapshots in trial order — so merging N worker results
    equals merging the same snapshots from a serial run.
    """
    merged: dict = {}
    for snapshot in snapshots:
        for name in sorted(snapshot):
            value = snapshot[name]
            existing = merged.get(name)
            if isinstance(value, dict):
                if existing is not None and not isinstance(existing, dict):
                    raise ValueError(
                        f"metric {name!r} is a histogram in one snapshot "
                        f"and a scalar in another"
                    )
                bucket_sums: Dict[str, int] = (
                    {} if existing is None else existing["buckets"]
                )
                for label, count in value.get("buckets", {}).items():
                    bucket_sums[label] = bucket_sums.get(label, 0) + count
                merged[name] = {
                    "count": (0 if existing is None else existing["count"])
                    + value.get("count", 0),
                    "sum": (0.0 if existing is None else existing["sum"])
                    + value.get("sum", 0.0),
                    "buckets": bucket_sums,
                }
            else:
                if existing is not None and isinstance(existing, dict):
                    raise ValueError(
                        f"metric {name!r} is a histogram in one snapshot "
                        f"and a scalar in another"
                    )
                merged[name] = (0.0 if existing is None else existing) + value
    return {name: merged[name] for name in sorted(merged)}


class _NullInstrument:
    """No-op counter/gauge/histogram stand-in; one shared instance."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: every instrument is :data:`NULL_INSTRUMENT`."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_MS_BUCKETS,
                  ) -> _NullInstrument:
        return NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {}


NULL_METRICS = NullMetrics()

__all__ = [
    "Counter",
    "DEFAULT_MS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_METRICS",
    "NullMetrics",
    "merge_snapshots",
]
