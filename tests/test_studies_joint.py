"""Tests for the §6 future-work extension studies."""

import pytest

from repro.core.studies import (
    browsers_vs_clock,
    joint_network_device_grid,
    tls_overhead,
)
from repro.web.costmodel import BROWSER_PROFILES, browser_profile


@pytest.fixture(scope="module")
def grid():
    return joint_network_device_grid(bandwidths_mbps=(2.0, 48.5),
                                     clocks_mhz=(384, 1512), n_pages=3)


def test_grid_covers_all_cells(grid):
    assert len(grid) == 4
    cells = {(p.bandwidth_mbps, p.clock_mhz) for p in grid}
    assert cells == {(2.0, 384), (2.0, 1512), (48.5, 384), (48.5, 1512)}


def test_bottleneck_crossover(grid):
    by_cell = {(p.bandwidth_mbps, p.clock_mhz): p for p in grid}
    # Slow link + fast CPU: network-bound.
    assert not by_cell[(2.0, 1512)].device_bound
    # Fast link + slow CPU: device-bound (the paper's regime).
    assert by_cell[(48.5, 384)].device_bound


def test_clock_upgrade_pays_less_on_slow_links(grid):
    by_cell = {(p.bandwidth_mbps, p.clock_mhz): p.plt.mean for p in grid}
    gain_fast_link = by_cell[(48.5, 384)] / by_cell[(48.5, 1512)]
    gain_slow_link = by_cell[(2.0, 384)] / by_cell[(2.0, 1512)]
    assert gain_fast_link > gain_slow_link


def test_plt_monotone_in_both_axes(grid):
    by_cell = {(p.bandwidth_mbps, p.clock_mhz): p.plt.mean for p in grid}
    assert by_cell[(2.0, 384)] > by_cell[(48.5, 384)]
    assert by_cell[(2.0, 384)] > by_cell[(2.0, 1512)]


def test_tls_is_a_roughly_constant_tax():
    points = tls_overhead(clocks_mhz=(384, 1512), n_pages=3)
    for point in points:
        assert point.plt_tls.mean > point.plt_plain.mean
        assert 0.03 < point.tls_overhead_frac < 0.25
    # Absolute TLS seconds are larger at the slow clock.
    low, high = points[0], points[-1]
    assert (low.plt_tls.mean - low.plt_plain.mean) > (
        high.plt_tls.mean - high.plt_plain.mean
    )


def test_browsers_qualitatively_alike():
    table = browsers_vs_clock(clocks_mhz=(384, 1512), n_pages=3)
    slowdowns = {
        name: cols[384].mean / cols[1512].mean
        for name, cols in table.items()
    }
    # The paper: Firefox/Opera Mini behave qualitatively like Chrome.
    assert max(slowdowns.values()) < 1.3 * min(slowdowns.values())
    for cols in table.values():
        assert cols[384].mean > 2 * cols[1512].mean


def test_browser_profile_lookup():
    assert browser_profile("chrome63") is BROWSER_PROFILES["chrome63"]
    with pytest.raises(ValueError, match="unknown browser"):
        browser_profile("netscape4")


def test_operamini_lighter_on_compute():
    mini = browser_profile("operamini")
    chrome = browser_profile("chrome63")
    assert mini.parse_ops_per_byte < chrome.parse_ops_per_byte
    assert mini.issue_request_ops > chrome.issue_request_ops
