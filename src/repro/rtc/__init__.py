"""Video telephony substrate (the paper's Skype workload).

Interactive calls differ from streaming in exactly the ways §3.3
identifies: nothing can be prefetched, every frame crosses the kernel
stack (packet processing on the CPU), and the pipeline runs encode *and*
decode plus mux/demux both ways.  QoE metrics: call setup delay
(network-centric) and frame rate (device-centric).
"""

from repro.rtc.call import CallConfig, CallResult, VideoCall
from repro.rtc.abr import SkypeLikeAbr, RTC_LADDER, RtcFormat

__all__ = [
    "CallConfig",
    "CallResult",
    "RTC_LADDER",
    "RtcFormat",
    "SkypeLikeAbr",
    "VideoCall",
]
