"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


def test_time_starts_at_zero():
    assert Environment().now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(5.0)
    env.run()
    assert env.now == 5.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_run_until_time_sets_now():
    env = Environment()
    env.run(until=42.0)
    assert env.now == 42.0


def test_run_until_past_raises():
    env = Environment()
    env.run(until=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_process_sequencing():
    env = Environment()
    log = []

    def proc():
        log.append(env.now)
        yield env.timeout(1)
        log.append(env.now)
        yield env.timeout(2)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [0, 1, 3]


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return "done"

    result = env.run(env.process(proc()))
    assert result == "done"


def test_timeout_value_passed_to_process():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1, value="payload")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["payload"]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append((env.now, value))

    def firer():
        yield env.timeout(3)
        gate.succeed("go")

    env.process(waiter())
    env.process(firer())
    env.run()
    assert seen == [(3, "go")]


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_event_fail_propagates_exception():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as error:
            caught.append(str(error))

    def firer():
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    env.process(waiter())
    env.process(firer())
    env.run()
    assert caught == ["boom"]


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_unhandled_process_crash_surfaces():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("crash")

    env.process(bad())
    with pytest.raises(ValueError, match="crash"):
        env.run()


def test_waiting_on_already_processed_event():
    env = Environment()
    gate = env.event()
    gate.succeed("early")
    env.run()
    seen = []

    def late_waiter():
        value = yield gate
        seen.append(value)

    env.process(late_waiter())
    env.run()
    assert seen == ["early"]


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def proc():
        yield env.all_of([env.timeout(1), env.timeout(5), env.timeout(3)])
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [5]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc():
        yield env.any_of([env.timeout(4), env.timeout(2)])
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [2]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = []

    def proc():
        yield env.all_of([])
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0]


def test_all_of_collects_values():
    env = Environment()
    collected = {}

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        values = yield env.all_of([t1, t2])
        collected.update(values)

    env.process(proc())
    env.run()
    assert sorted(collected.values()) == ["a", "b"]


def test_interrupt_throws_into_process():
    env = Environment()
    outcomes = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            outcomes.append((env.now, interrupt.cause))

    def attacker(proc):
        yield env.timeout(2)
        proc.interrupt("stop")

    proc = env.process(victim())
    env.process(attacker(proc))
    env.run()
    assert outcomes == [(2, "stop")]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_deterministic_tie_breaking():
    """Events at the same instant fire in scheduling order."""
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1)
        order.append(name)

    for name in ("a", "b", "c"):
        env.process(proc(name))
    env.run()
    assert order == ["a", "b", "c"]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env.run()
    assert env.peek() == float("inf")


def test_nested_processes():
    env = Environment()

    def inner():
        yield env.timeout(2)
        return 21

    def outer():
        value = yield env.process(inner())
        return value * 2

    assert env.run(env.process(outer())) == 42


def test_run_until_event_returns_value():
    env = Environment()
    gate = env.event()

    def firer():
        yield env.timeout(1)
        gate.succeed(99)

    env.process(firer())
    assert env.run(gate) == 99


def test_run_until_event_never_fires_raises():
    env = Environment()
    gate = env.event()
    with pytest.raises(SimulationError):
        env.run(gate)
