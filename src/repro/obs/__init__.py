"""Deterministic sim-time observability: tracing, metrics, trace export.

``repro.obs`` is the measurement substrate of the reproduction: spans and
instant events stamped with *simulated* time (never the wall clock), a
registry of namespaced counters/gauges/histograms, and exporters for the
Chrome ``trace_event`` format (Perfetto / ``chrome://tracing``), flat
metrics JSON, and a text summary.  Because every timestamp and every
metric derives from seeded simulation state, traces are replay-identical:
the same seed exports byte-identical bytes.

Wiring model (no import cycles, zero cost when off):

* the kernel (:mod:`repro.sim.core`) carries plain ``tracer``/``metrics``
  attributes that default to ``None`` and never imports this package;
* :func:`install` attaches a :class:`Tracer` and
  :class:`MetricsRegistry` to an environment right after construction;
* instrumented subsystems call :func:`tracer_of` / :func:`metrics_of`
  once at construction time — in an uninstrumented environment they get
  the shared no-op singletons back, so the disabled hot path is one
  attribute load and a no-op call, with no event objects allocated.

See ``docs/observability.md`` for naming conventions and a Perfetto
walkthrough.
"""

from __future__ import annotations

from typing import Any, Tuple, Union

from repro.obs.export import (
    chrome_trace_events,
    chrome_trace_json,
    format_histogram,
    histogram_quantile,
    metrics_json,
    text_summary,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_MS_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    merge_snapshots,
)
from repro.obs.perfstore import BudgetCheck, PerfEntry, PerfStore
from repro.obs.progress import ProgressRenderer
from repro.obs.runlog import (
    HOST_EVENTS,
    NULL_RUNLOG,
    NullRunLog,
    RUNLOG_NAME,
    RUNLOG_VERSION,
    RunLog,
    deterministic_bytes,
    deterministic_events,
    read_runlog,
    runlog_of,
    snapshot_digest,
)
from repro.obs.tracer import (
    Instant,
    NULL_TRACER,
    NullTracer,
    Span,
    SpanHandle,
    Tracer,
)

AnyTracer = Union[Tracer, NullTracer]
AnyMetrics = Union[MetricsRegistry, NullMetrics]


def install(env: Any, tracer: "Tracer | None" = None,
            metrics: "MetricsRegistry | None" = None,
            ) -> Tuple[Tracer, MetricsRegistry]:
    """Attach observability to a simulation environment.

    Must run right after ``Environment()`` — subsystems capture their
    tracer/metrics handles at construction time, so anything built before
    ``install`` stays uninstrumented.  Also wires the kernel's per-step
    ``sim.steps`` counter (the one hook the kernel reads directly).
    """
    tracer = tracer if tracer is not None else Tracer(env)
    metrics = metrics if metrics is not None else MetricsRegistry()
    env.tracer = tracer
    env.metrics = metrics
    env._steps_counter = metrics.counter("sim.steps")
    return tracer, metrics


def tracer_of(env: Any) -> AnyTracer:
    """The environment's tracer, or the no-op singleton when not installed."""
    tracer = getattr(env, "tracer", None)
    return NULL_TRACER if tracer is None else tracer


def metrics_of(env: Any) -> AnyMetrics:
    """The environment's metrics registry, or the no-op singleton."""
    metrics = getattr(env, "metrics", None)
    return NULL_METRICS if metrics is None else metrics


__all__ = [
    "AnyMetrics",
    "AnyTracer",
    "BudgetCheck",
    "Counter",
    "DEFAULT_MS_BUCKETS",
    "Gauge",
    "HOST_EVENTS",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_RUNLOG",
    "NULL_TRACER",
    "NullMetrics",
    "NullRunLog",
    "NullTracer",
    "PerfEntry",
    "PerfStore",
    "ProgressRenderer",
    "RUNLOG_NAME",
    "RUNLOG_VERSION",
    "RunLog",
    "Span",
    "SpanHandle",
    "Tracer",
    "chrome_trace_events",
    "chrome_trace_json",
    "deterministic_bytes",
    "deterministic_events",
    "format_histogram",
    "histogram_quantile",
    "install",
    "merge_snapshots",
    "metrics_json",
    "read_runlog",
    "runlog_of",
    "snapshot_digest",
    "text_summary",
    "write_chrome_trace",
]
