"""Ablation: Pike VM vs lazy DFA on the page-corpus regex workload.

The DFA fast path is what makes filter-style (``test``) calls cheap on
the CPU and vectorizable on the DSP; forcing everything through the Pike
VM shows how much that loop shape matters.
"""

from repro.analysis import render_table
from repro.regexlib import Regex
from repro.regexlib.pikevm import Counter
from repro.regexlib import pikevm
from repro.workloads.regexcorpus import PATTERN_LIBRARY, synth_url_list
import random


def run_ablation():
    rng = random.Random(99)
    subject = synth_url_list(rng, 40)
    rows = []
    for name, pattern, mode in PATTERN_LIBRARY:
        if mode != "test":
            continue
        regex = Regex(pattern)
        dfa = regex.dfa()
        if dfa is None:
            continue
        pike_counter = Counter()
        pikevm.run(regex.program, subject, counter=pike_counter)
        dfa_cold = Counter()
        dfa.matches(subject, dfa_cold)
        dfa_warm = Counter()
        dfa.matches(subject, dfa_warm)
        rows.append((name, pike_counter.ops, dfa_cold.ops, dfa_warm.ops))
    return rows


def test_ablation_regex_backend(benchmark, fig_printer):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = render_table(
        ["Pattern", "Pike VM ops", "DFA cold ops", "DFA warm ops"],
        [[name, pike, cold, warm] for name, pike, cold, warm in rows],
    )
    fig_printer("Ablation: regex backend cost on filter patterns", table)
    assert rows
    for name, pike, cold, warm in rows:
        # A long scan self-warms within a few transitions, so cold ≈ warm;
        # the structural claim is that the DFA beats the Pike VM.
        assert warm <= cold * 1.05
        assert warm < pike, name
    total_pike = sum(r[1] for r in rows)
    total_warm = sum(r[3] for r in rows)
    assert total_pike > 2 * total_warm
