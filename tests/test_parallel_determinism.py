"""Property: serial and multiprocess runs are byte-identical.

The executor layer's whole contract is that worker count is invisible in
the output: ``RobustRunReport`` records, journal bytes, and ``Summary``
strings must match a serial reference run exactly, whatever the worker
count and however the pool interleaves completions.  Trial functions here
are module-level (picklable) and deliberately mix ok / crash / non-numeric
outcomes so the merge path is exercised on failures too.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.core.background import make_rng
from repro.core.experiments import RobustTrialRunner
from repro.parallel import MultiprocessExecutor, SerialExecutor
from repro.sim import Interrupt


def mixed_outcome_trial(seed: int) -> float:
    """~20% crash, ~10% non-numeric, else a seeded value."""
    rng = make_rng(seed)
    roll = rng.random()
    if roll < 0.2:
        raise Interrupt("fault:crash")
    if roll < 0.3:
        return "oops"  # type: ignore[return-value]  # exercises TRIAL_ERROR
    return rng.uniform(1.0, 2.0)


def _journal_rows(report) -> list:
    # duration_wall_s is host timing — excluded from the v3 journal and
    # from equivalence checks for the same reason.
    return [{k: v for k, v in record.as_dict().items()
             if k != "duration_wall_s"} for record in report.records]


def _run(experiment: str, trials: int, executor,
         journal: Path | None = None):
    runner = RobustTrialRunner(trials=trials, experiment=experiment,
                               max_attempts=2, journal_path=journal,
                               executor=executor)
    return runner.run(mixed_outcome_trial)


@settings(max_examples=4, deadline=None)
@given(experiment=st.text(alphabet="abcdef", min_size=1, max_size=6),
       trials=st.integers(min_value=1, max_value=8),
       workers=st.integers(min_value=2, max_value=4))
def test_multiprocess_report_matches_serial(experiment, trials, workers):
    serial = _run(experiment, trials, SerialExecutor())
    pooled = _run(experiment, trials, MultiprocessExecutor(workers))
    assert _journal_rows(serial) == _journal_rows(pooled)
    assert str(serial.summary()) == str(pooled.summary())
    assert serial.failure_counts() == pooled.failure_counts()


@settings(max_examples=3, deadline=None)
@given(trials=st.integers(min_value=2, max_value=6),
       workers=st.integers(min_value=2, max_value=4))
def test_multiprocess_journal_bytes_match_serial(trials, workers):
    with tempfile.TemporaryDirectory() as tmp:
        serial_journal = Path(tmp) / "serial.json"
        pooled_journal = Path(tmp) / "pooled.json"
        _run("parprop", trials, SerialExecutor(), serial_journal)
        _run("parprop", trials, MultiprocessExecutor(workers),
             pooled_journal)
        assert serial_journal.read_bytes() == pooled_journal.read_bytes()
        payload = json.loads(serial_journal.read_text())
        assert payload["version"] == 3
        assert len(payload["records"]) == trials
