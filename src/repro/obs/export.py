"""Exporters: Chrome ``trace_event`` JSON, metrics JSON, text summary.

The Chrome format (loadable in Perfetto or ``chrome://tracing``) maps
naturally onto the tracer's event shapes:

* :class:`~repro.obs.tracer.Span` → a ``ph: "X"`` *complete* event with
  ``ts``/``dur`` in microseconds of simulated time;
* :class:`~repro.obs.tracer.Instant` → a ``ph: "i"`` *instant* event;
* each category gets its own thread row (``tid`` + ``thread_name``
  metadata) so the sim kernel, netstack, web/video models, and device
  land on separate swimlanes.

Serialization is canonical — sorted keys, no whitespace, deterministic
float reprs of simulated quantities — so the exported bytes of a seeded
trial are part of the replay contract (tested byte-for-byte).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

#: Synthetic process id for the single simulated "process".
TRACE_PID = 1
#: Microseconds per simulated second (Chrome's ``ts`` unit).
_US = 1e6


def _ts(seconds: float) -> float:
    """Simulated seconds → trace microseconds, stable to sub-ns."""
    return round(seconds * _US, 3)


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """The ``traceEvents`` array: metadata rows + spans + instants."""
    categories = tracer.categories()
    tid_of = {cat: index + 1 for index, cat in enumerate(categories)}
    events: list[dict] = [{
        "args": {"name": "repro simulation"},
        "name": "process_name", "ph": "M", "pid": TRACE_PID, "tid": 0,
    }]
    for cat in categories:
        events.append({
            "args": {"name": cat},
            "name": "thread_name", "ph": "M", "pid": TRACE_PID,
            "tid": tid_of[cat],
        })
    data: list[dict] = []
    for span in tracer.spans:
        event = {
            "cat": span.cat, "dur": _ts(span.duration), "name": span.name,
            "ph": "X", "pid": TRACE_PID, "tid": tid_of[span.cat],
            "ts": _ts(span.start),
        }
        if span.args:
            event["args"] = span.args
        data.append(event)
    for inst in tracer.instants:
        event = {
            "cat": inst.cat, "name": inst.name, "ph": "i", "pid": TRACE_PID,
            "s": "t", "tid": tid_of[inst.cat], "ts": _ts(inst.t),
        }
        if inst.args:
            event["args"] = inst.args
        data.append(event)
    # Stable sort: ties keep recording order, which is itself deterministic.
    data.sort(key=lambda e: (e["ts"], e["tid"]))
    return events + data


def chrome_trace_json(tracer: Tracer) -> str:
    """Canonical Chrome ``trace_event`` JSON document."""
    payload = {
        "displayTimeUnit": "ms",
        "metadata": {"clock": "simulated-seconds", "tool": "repro.obs"},
        "traceEvents": chrome_trace_events(tracer),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(tracer: Tracer, path: Union[str, Path]) -> Path:
    """Write the Chrome trace to ``path``; returns the path."""
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(chrome_trace_json(tracer), encoding="utf-8")
    return target


def metrics_json(metrics: MetricsRegistry) -> str:
    """Canonical flat-JSON serialization of a metrics snapshot."""
    return json.dumps(metrics.snapshot(), sort_keys=True,
                      separators=(",", ":"))


def histogram_quantile(hist: dict, q: float) -> float:
    """Bucket-derived upper bound of quantile ``q`` of a histogram dict.

    Takes the ``{"count", "sum", "buckets"}`` shape of
    :meth:`~repro.obs.metrics.Histogram.as_dict` (labels are stringified
    upper bounds plus ``"+Inf"``) and returns the smallest bucket bound
    whose cumulative count reaches ``q * count`` — the standard ``le``
    bucket estimate, exact to bucket resolution and fully deterministic.
    Observations beyond the last finite bound yield ``inf``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must lie in [0, 1] (got {q})")
    count = hist.get("count", 0)
    if count <= 0:
        return 0.0
    target = q * count
    finite = sorted(
        (float(label), n)
        for label, n in hist.get("buckets", {}).items() if label != "+Inf"
    )
    cumulative = 0
    for bound, n in finite:
        cumulative += n
        if cumulative >= target:
            return bound
    return float("inf")


def format_histogram(name: str, hist: dict) -> str:
    """One deterministic line describing a histogram snapshot value."""
    count = hist.get("count", 0)
    total = hist.get("sum", 0.0)
    mean = total / count if count else 0.0
    p50 = histogram_quantile(hist, 0.50)
    p95 = histogram_quantile(hist, 0.95)

    def bound(value: float) -> str:
        return "+Inf" if value == float("inf") else f"{value:g}"

    return (f"{name}: n={count} sum={total:.3f} mean={mean:.3f} "
            f"p50<={bound(p50)} p95<={bound(p95)}")


def text_summary(tracer: Tracer, metrics: MetricsRegistry) -> str:
    """Human-readable one-screen digest of a traced trial."""
    lines = ["trace summary:"]
    counts = tracer.counts_by_category()
    if counts:
        per_cat = ", ".join(f"{cat}={n}" for cat, n in counts.items())
        lines.append(f"  events: {len(tracer)} ({per_cat})")
    else:
        lines.append("  events: 0")
    snapshot = metrics.snapshot()
    if snapshot:
        lines.append(f"  metrics: {len(snapshot)}")
        for name, value in snapshot.items():
            if isinstance(value, dict):
                lines.append(f"    {format_histogram(name, value)}")
            else:
                lines.append(f"    {name}: {value:g}")
    return "\n".join(lines)


__all__ = [
    "TRACE_PID",
    "chrome_trace_events",
    "chrome_trace_json",
    "format_histogram",
    "histogram_quantile",
    "metrics_json",
    "text_summary",
    "write_chrome_trace",
]
