"""Result-cache rules (CSH8xx).

The content-addressed trial cache (:mod:`repro.cache`) has the same
single-writer discipline as the runlog: entries are keyed by a digest of
the trial's inputs plus a code fingerprint, written atomically by the
parent process, and validated on read.  A hand-rolled write against the
cache layout — ``*.cache.json`` entry files or the ``repro-cache.json``
marker — bypasses the key derivation, the schema version, and the
atomic-replace protocol, and can poison every later warm run with a
stale or malformed payload.  CSH801 flags write-shaped calls that
mention those paths anywhere outside the cache package itself.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileContext, Rule, call_name
from repro.lint.rules.obs import _opens_for_write

_CACHE_MARKERS = (".cache.json", "repro-cache.json")
_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


def _mentions_cache_path(node: ast.Call) -> bool:
    return any(
        isinstance(sub, ast.Constant) and isinstance(sub.value, str)
        and any(marker in sub.value for marker in _CACHE_MARKERS)
        for sub in ast.walk(node)
    )


class CacheDirectWriteRule(Rule):
    """CSH801: direct cache-entry write outside repro.cache."""

    id = "CSH801"
    severity = Severity.WARNING
    title = "direct cache-entry write bypassing repro.cache"
    rationale = (
        "repro.cache.TrialCache is the only sanctioned writer of "
        "*.cache.json entries and the repro-cache.json marker: it owns "
        "the content-addressed key derivation, the entry schema version, "
        "and the atomic tmp-then-replace protocol. A direct "
        "write_text/write_bytes/open(..., 'w'/'a') against those paths "
        "can plant an entry whose key does not match its payload, and a "
        "later warm run will replay it as if it were a real result. Go "
        "through TrialCache.put() instead."
    )

    def applies_to(self, context: FileContext) -> bool:
        # The cache package implements the layout; everyone else puts.
        return "/repro/cache/" not in context.norm_path

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            # Same computed-receiver handling as OBS502: take the
            # attribute name straight off the func node when present.
            if isinstance(node.func, ast.Attribute):
                tail = node.func.attr
            else:
                name = call_name(node)
                if name is None:
                    continue
                tail = name.rsplit(".", 1)[-1]
            is_write = tail in _WRITE_METHODS or (
                tail == "open" and _opens_for_write(node)
            )
            if not is_write or not _mentions_cache_path(node):
                continue
            yield self.finding(
                context, node,
                f"direct {tail}() on a cache-entry path; go through "
                f"repro.cache.TrialCache so keys, schema, and atomic "
                f"writes hold",
            )


__all__ = ["CacheDirectWriteRule"]
