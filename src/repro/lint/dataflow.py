"""Forward taint/provenance framework over a :class:`ProjectModel`.

This is deliberately *not* symbolic execution.  Values are abstracted to
sets of string labels ("wallclock", "rng.unaudited", "pickle.lambda",
...), and the only transfer functions are assignment, call, and return:

* each function gets a **summary** — the label set of its return value,
  where a parameter's contribution is recorded as a placeholder marker
  so call sites can substitute the labels of the actual argument;
* summaries are computed to a **fixed point** over the approximate call
  graph (labels only ever grow, and the label universe is finite, so
  iteration terminates);
* a final **reporting pass** re-walks every function with the converged
  summaries and lets the analysis inspect calls and attribute stores.

Precision choices, all biased toward *no false positives*:

* unknown names/attributes/calls carry no labels (benefit of the doubt);
* branches are not joined path-sensitively — assignments union into the
  variable's label set in source order, so a label acquired on any path
  sticks (conservative, monotone);
* objects are coarse: a constructor call unions its argument labels and
  the class's own labels into one set for the whole instance, and an
  attribute load propagates the instance's labels.  That is what lets a
  tainted value ride a dataclass field across modules without per-field
  tracking.

Per-line ``# simlint: disable=DF7xx`` suppressions work exactly as for
file rules; a finding that is a false positive in practice can always be
waived at the line that triggers it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import AbstractSet, Callable, Dict, FrozenSet, List, Optional, Set

from repro.lint.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
)

Labels = FrozenSet[str]
EMPTY: Labels = frozenset()

#: Marker prefix for "this return value carries parameter N's labels".
_PARAM_MARK = "param#"


def param_marker(index: int) -> str:
    return f"{_PARAM_MARK}{index}"


def is_param_marker(label: str) -> bool:
    return label.startswith(_PARAM_MARK)


def concrete(labels: Labels) -> Labels:
    """Labels with parameter markers stripped (for sink checks)."""
    return frozenset(l for l in labels if not is_param_marker(l))


@dataclass(frozen=True)
class FunctionSummary:
    """What a call to the function contributes to its result."""

    #: Labels of the return value; may include parameter markers.
    returns: Labels = EMPTY

    def apply(self, arg_labels: List[Labels]) -> Labels:
        """Substitute call-site argument labels for parameter markers."""
        out: Set[str] = set()
        for label in self.returns:
            if is_param_marker(label):
                index = int(label[len(_PARAM_MARK):])
                if 0 <= index < len(arg_labels):
                    out |= arg_labels[index]
            else:
                out.add(label)
        return frozenset(out)


class DataflowAnalysis:
    """Hooks one analysis plugs into the shared engine.

    Subclasses override the hooks they need; the defaults are inert.
    One engine run serves exactly one analysis — rules that want
    different source/propagation semantics run their own engine pass
    (cheap: the parse and the project model are shared).
    """

    #: If true, a call the project cannot resolve propagates the union of
    #: its argument labels to its result (right for value-deriving taint
    #: like wall-clock time; wrong for object provenance like RNG-ness).
    propagate_through_unknown_calls: bool = False

    def param_labels(self, func: FunctionInfo, name: str,
                     index: int) -> Labels:
        """Labels a parameter carries on function entry (beyond its marker)."""
        return EMPTY

    def call_labels(self, resolved: Optional[str], node: ast.Call,
                    arg_labels: List[Labels],
                    engine: "DataflowEngine") -> Optional[Labels]:
        """Source/sanitizer hook: labels produced by this call.

        Return ``None`` to fall through to the default handling
        (project-function summary substitution / constructor union /
        unknown-call policy).
        """
        return None

    def visit_call(self, func: FunctionInfo, node: ast.Call,
                   resolved: Optional[str], evaluate: Callable[[ast.AST], Labels],
                   engine: "DataflowEngine") -> None:
        """Reporting-pass hook for every call expression."""

    def visit_attr_store(self, func: FunctionInfo, node: ast.Attribute,
                         target_labels: Labels, value_labels: Labels,
                         engine: "DataflowEngine") -> None:
        """Reporting-pass hook for ``obj.attr = value`` stores."""


class DataflowEngine:
    """Summary computation and reporting for one analysis."""

    #: Hard cap on fixed-point sweeps; the label lattice is tiny, so
    #: convergence is a few iterations — the cap only guards pathological
    #: resolution cycles.
    MAX_ITERATIONS = 12

    def __init__(self, project: ProjectModel, analysis: DataflowAnalysis):
        self.project = project
        self.analysis = analysis
        self.summaries: Dict[str, FunctionSummary] = {}
        #: class qualname -> labels every instance carries (from the class
        #: itself plus everything ever stored into its attributes).
        self.class_labels: Dict[str, Set[str]] = {}
        self._reporting = False
        self._report: Optional[Callable[[ast.AST, str], None]] = None
        self._current: Optional[FunctionInfo] = None

    # -- public API -------------------------------------------------------

    def compute(self) -> None:
        """Run summary evaluation to a fixed point."""
        for _ in range(self.MAX_ITERATIONS):
            if not self._sweep():
                break

    def run_reports(self, report: Callable[[FunctionInfo, ast.AST, str],
                                           None]) -> None:
        """Re-walk every function, invoking the analysis's sink hooks."""
        self._reporting = True
        try:
            for func in self.project.iter_functions():
                self._current = func
                self._report = (
                    lambda node, message, _f=func: report(_f, node, message))
                self._evaluate_function(func)
        finally:
            self._reporting = False
            self._report = None
            self._current = None

    def report(self, node: ast.AST, message: str) -> None:
        """Emit one finding at ``node`` (reporting pass only)."""
        if self._report is not None:
            self._report(node, message)

    # -- fixed point ------------------------------------------------------

    def _sweep(self) -> bool:
        changed = False
        for func in self.project.iter_functions():
            self._current = func
            summary = self._evaluate_function(func)
            if self.summaries.get(func.qualname) != summary:
                self.summaries[func.qualname] = summary
                changed = True
        self._current = None
        return changed

    def current_path(self) -> str:
        """Display path of the function currently being walked."""
        if self._current is None:
            return "?"
        return self.project.function_module(self._current).path

    def instance_labels(self, class_qual: str) -> Labels:
        return frozenset(self.class_labels.get(class_qual, ()))

    def _merge_class_labels(self, class_qual: str, labels: Labels) -> None:
        added = concrete(labels)
        if not added:
            return
        current = self.class_labels.setdefault(class_qual, set())
        current |= added

    # -- per-function evaluation ------------------------------------------

    def _evaluate_function(self, func: FunctionInfo) -> FunctionSummary:
        module = self.project.function_module(func)
        walker = _FunctionWalker(self, func, module)
        return walker.run()


class _FunctionWalker:
    """One forward pass over a function body with a label environment."""

    def __init__(self, engine: DataflowEngine, func: FunctionInfo,
                 module: ModuleInfo):
        self.engine = engine
        self.analysis = engine.analysis
        self.project = engine.project
        self.func = func
        self.module = module
        self.env: Dict[str, Set[str]] = {}
        self.returns: Set[str] = set()
        #: Function/class defs local to this function (pickle hazards and
        #: label carriers for names that reference them).
        self.local_defs: Dict[str, ast.AST] = {}

    def run(self) -> FunctionSummary:
        node = self.func.node
        params = self.func.params
        for index, name in enumerate(params):
            labels: Set[str] = {param_marker(index)}
            labels |= self.analysis.param_labels(self.func, name, index)
            self.env[name] = labels
        for name in self.func.keyword_only_params:
            labels = set(self.analysis.param_labels(self.func, name, -1))
            self.env[name] = labels
        for stmt in node.body:  # type: ignore[attr-defined]
            self._statement(stmt)
        return FunctionSummary(returns=frozenset(self.returns))

    # -- statements -------------------------------------------------------

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.local_defs[stmt.name] = stmt
            return  # nested defs are walked by their own FunctionInfo, if any
        if isinstance(stmt, ast.ClassDef):
            self.local_defs[stmt.name] = stmt
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns |= self.evaluate(stmt.value)
            return
        if isinstance(stmt, ast.Assign):
            labels = self.evaluate(stmt.value)
            for target in stmt.targets:
                self._bind(target, labels)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.evaluate(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            labels = self.evaluate(stmt.value) | self._load(stmt.target)
            self._bind(stmt.target, labels)
            return
        if isinstance(stmt, (ast.Expr,)):
            self.evaluate(stmt.value)
            return
        if isinstance(stmt, ast.For):
            self._bind(stmt.target, self.evaluate(stmt.iter))
            for sub in stmt.body + stmt.orelse:
                self._statement(sub)
            return
        if isinstance(stmt, ast.While):
            self.evaluate(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self._statement(sub)
            return
        if isinstance(stmt, ast.If):
            self.evaluate(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self._statement(sub)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                labels = self.evaluate(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, labels)
            for sub in stmt.body:
                self._statement(sub)
            return
        if isinstance(stmt, ast.Try):
            for sub in stmt.body + stmt.orelse + stmt.finalbody:
                self._statement(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._statement(sub)
            return
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.evaluate(stmt.exc)
            return
        # Remaining statement kinds (pass, import, global, assert, delete)
        # either bind nothing or are handled at module level.
        for value in ast.iter_child_nodes(stmt):
            if isinstance(value, ast.expr):
                self.evaluate(value)

    def _bind(self, target: ast.AST, labels: AbstractSet[str]) -> None:
        labels = set(labels)
        if isinstance(target, ast.Name):
            # Union, not overwrite: a label acquired on any path sticks.
            self.env.setdefault(target.id, set()).update(labels)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, labels)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, labels)
        elif isinstance(target, ast.Attribute):
            receiver = self._load(target.value)
            # Stores onto self/instances feed the coarse class label set.
            class_qual = self._receiver_class(target.value)
            if class_qual is not None:
                self.engine._merge_class_labels(class_qual, frozenset(labels))
            if self.engine._reporting:
                self.analysis.visit_attr_store(
                    self.func, target, frozenset(receiver),
                    frozenset(labels), self.engine)
        elif isinstance(target, ast.Subscript):
            self._bind(target.value, labels)

    def _receiver_class(self, node: ast.AST) -> Optional[str]:
        if (isinstance(node, ast.Name) and node.id == "self"
                and self.func.class_name is not None):
            return self.func.class_name
        return None

    def _load(self, node: ast.AST) -> Set[str]:
        return set(self.evaluate(node))

    # -- expressions ------------------------------------------------------

    def evaluate(self, node: ast.AST) -> Labels:
        """Label set of an expression (memoless, resolution-backed)."""
        if isinstance(node, ast.Name):
            if node.id in self.local_defs:
                return self._local_def_labels(self.local_defs[node.id])
            return frozenset(self.env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            base = self.evaluate(node.value)
            extra: Labels = EMPTY
            if (isinstance(node.value, ast.Name) and node.value.id == "self"
                    and self.func.class_name is not None):
                extra = self.engine.instance_labels(self.func.class_name)
            return frozenset(concrete(base) | extra) | (base - concrete(base))
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Lambda):
            self.evaluate(node.body)
            return self._lambda_labels(node)
        if isinstance(node, (ast.BinOp,)):
            return self.evaluate(node.left) | self.evaluate(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.evaluate(node.operand)
        if isinstance(node, ast.BoolOp):
            out: Set[str] = set()
            for value in node.values:
                out |= self.evaluate(value)
            return frozenset(out)
        if isinstance(node, ast.Compare):
            self.evaluate(node.left)
            for comparator in node.comparators:
                self.evaluate(comparator)
            return EMPTY  # a comparison yields a bool, not the operands
        if isinstance(node, ast.IfExp):
            self.evaluate(node.test)
            return self.evaluate(node.body) | self.evaluate(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for element in node.elts:
                out |= self.evaluate(element)
            return frozenset(out)
        if isinstance(node, ast.Dict):
            out = set()
            for key in node.keys:
                if key is not None:
                    out |= self.evaluate(key)
            for value in node.values:
                out |= self.evaluate(value)
            return frozenset(out)
        if isinstance(node, ast.Subscript):
            self.evaluate(node.slice)
            return self.evaluate(node.value)
        if isinstance(node, ast.Starred):
            return self.evaluate(node.value)
        if isinstance(node, ast.JoinedStr):
            out = set()
            for value in node.values:
                out |= self.evaluate(value)
            return frozenset(out)
        if isinstance(node, ast.FormattedValue):
            return self.evaluate(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for generator in node.generators:
                self._bind(generator.target, set(self.evaluate(generator.iter)))
            return self.evaluate(node.elt)
        if isinstance(node, ast.DictComp):
            for generator in node.generators:
                self._bind(generator.target, set(self.evaluate(generator.iter)))
            self.evaluate(node.key)
            return self.evaluate(node.value)
        if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
            value = getattr(node, "value", None)
            return self.evaluate(value) if value is not None else EMPTY
        if isinstance(node, ast.NamedExpr):
            labels = self.evaluate(node.value)
            self._bind(node.target, set(labels))
            return labels
        return EMPTY

    def _lambda_labels(self, node: ast.Lambda) -> Labels:
        labels = self.analysis.call_labels("<lambda>", _fake_call(node), [],
                                           self.engine)
        return labels if labels is not None else EMPTY

    def _local_def_labels(self, node: ast.AST) -> Labels:
        kind = "<local-class>" if isinstance(node, ast.ClassDef) else "<local-def>"
        labels = self.analysis.call_labels(kind, _fake_call(node), [],
                                           self.engine)
        return labels if labels is not None else EMPTY

    def _call(self, node: ast.Call) -> Labels:
        resolved = self.project.resolve_call(self.module, node, self.func)
        arg_labels = [self.evaluate(arg) for arg in node.args]
        keyword_labels = {
            kw.arg: self.evaluate(kw.value) for kw in node.keywords
        }
        all_args: Set[str] = set()
        for labels in arg_labels:
            all_args |= labels
        for labels in keyword_labels.values():
            all_args |= labels
        receiver: Labels = EMPTY
        if isinstance(node.func, ast.Attribute):
            receiver = self.evaluate(node.func.value)

        # Calls to function/class objects defined local to this function
        # are themselves pickle-relevant; surface them through the hook.
        if (isinstance(node.func, ast.Name)
                and node.func.id in self.local_defs):
            local = self.local_defs[node.func.id]
            if isinstance(local, ast.ClassDef):
                resolved = "<local-class>"

        if self.engine._reporting:
            self.analysis.visit_call(self.func, node, resolved,
                                     self.evaluate, self.engine)

        hook = self.analysis.call_labels(
            resolved, node, arg_labels, self.engine)
        if hook is not None:
            return hook

        if resolved is not None:
            if resolved in self.project.functions:
                summary = self.engine.summaries.get(
                    resolved, FunctionSummary())
                return summary.apply(arg_labels)
            class_info = self.project.class_of(resolved)
            if class_info is not None:
                return self._construct(class_info, node, arg_labels,
                                       keyword_labels, all_args)
        if self.analysis.propagate_through_unknown_calls:
            return frozenset(concrete(all_args) | concrete(receiver))
        return EMPTY

    def _construct(self, class_info: ClassInfo, node: ast.Call,
                   arg_labels: List[Labels],
                   keyword_labels: Dict[Optional[str], Labels],
                   all_args: Set[str]) -> Labels:
        """Instance labels: class labels + coarse union of ctor args."""
        instance = set(self.engine.instance_labels(class_info.qualname))
        instance |= concrete(frozenset(all_args))
        self.engine._merge_class_labels(class_info.qualname,
                                        frozenset(instance))
        return frozenset(instance)


def _fake_call(node: ast.AST) -> ast.Call:
    """Wrap a non-call node so hooks get a located Call-shaped argument."""
    call = ast.Call(func=ast.Name(id="<synthetic>", ctx=ast.Load()),
                    args=[], keywords=[])
    call.lineno = getattr(node, "lineno", 1)
    call.col_offset = getattr(node, "col_offset", 0)
    return call


__all__ = [
    "DataflowAnalysis",
    "DataflowEngine",
    "EMPTY",
    "FunctionSummary",
    "Labels",
    "concrete",
    "is_param_marker",
    "param_marker",
]
