"""Memory-capacity model.

The paper varies usable RAM (0.5–2 GB on the Nexus4) by dedicating RAM
disks, and observes ~2× PLT at 512 MB versus 2 GB.  Less memory hurts in
two ways that we fold into a single *cycle multiplier* applied to compute
tasks:

* page-cache and app-heap pressure raise the cache/TLB miss rate, and
* Android's low-memory killer and Chrome's tab/resource eviction force
  recomputation (re-decoding images, re-parsing scripts).

The multiplier is 1.0 while the workload's working set fits comfortably in
the available memory and grows smoothly (piecewise-linearly in the pressure
ratio) as it stops fitting, calibrated to the paper's 2× endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1024.0 ** 3


@dataclass
class MemorySpec:
    """Installed memory and the share reserved by the OS and daemons."""

    size_gb: float
    os_reserved_gb: float = 0.30

    def __post_init__(self) -> None:
        if self.size_gb <= 0:
            raise ValueError("memory size must be positive")
        if not 0 <= self.os_reserved_gb < self.size_gb:
            raise ValueError("OS reservation must be smaller than the memory")

    @property
    def available_gb(self) -> float:
        """Memory available to the application."""
        return self.size_gb - self.os_reserved_gb


class MemoryModel:
    """Maps (available memory, working set) to a compute-cycle multiplier.

    The curve is anchored at three points:

    * pressure ≤ ``comfort`` → multiplier 1.0 (fully cached),
    * pressure = 1.0 (working set == available) → ``knee_penalty``,
    * pressure ≥ ``thrash`` → ``max_penalty`` (swap-storm regime),

    with linear interpolation between anchors.  The defaults reproduce the
    paper's Fig 3b: a Chrome page-load working set of ~0.45 GB gives
    multiplier ≈ 1 at 2 GB and ≈ 2 at 0.5 GB.
    """

    def __init__(
        self,
        spec: MemorySpec,
        comfort: float = 0.55,
        knee_penalty: float = 1.55,
        thrash: float = 3.0,
        max_penalty: float = 3.2,
    ):
        if not 0 < comfort < 1 < thrash:
            raise ValueError("need comfort < 1 < thrash")
        if not 1 <= knee_penalty <= max_penalty:
            raise ValueError("need 1 <= knee_penalty <= max_penalty")
        self.spec = spec
        self.comfort = comfort
        self.knee_penalty = knee_penalty
        self.thrash = thrash
        self.max_penalty = max_penalty

    def pressure(self, working_set_gb: float) -> float:
        """Working set as a fraction of available memory."""
        if working_set_gb < 0:
            raise ValueError("working set must be non-negative")
        available = max(self.spec.available_gb, 1e-9)
        return working_set_gb / available

    def cycle_multiplier(self, working_set_gb: float) -> float:
        """Compute-cycle inflation for the given working set."""
        p = self.pressure(working_set_gb)
        if p <= self.comfort:
            return 1.0
        if p <= 1.0:
            span = (p - self.comfort) / (1.0 - self.comfort)
            return 1.0 + span * (self.knee_penalty - 1.0)
        if p <= self.thrash:
            span = (p - 1.0) / (self.thrash - 1.0)
            return self.knee_penalty + span * (self.max_penalty - self.knee_penalty)
        return self.max_penalty


__all__ = ["GB", "MemoryModel", "MemorySpec"]
