"""Trial running: the paper's repeat-20-times-report-mean/std methodology.

A *trial function* builds a fresh simulation environment from a seed and
returns one scalar or record.  :class:`TrialRunner` runs it across seeded
trials and summarizes.  Determinism: trial ``i`` of experiment ``name``
always uses the same derived seed, so every figure regenerates
bit-identically.
"""

from __future__ import annotations

import zlib
from typing import Callable, Sequence, TypeVar

from repro.analysis.stats import Summary, summarize

T = TypeVar("T")


def derive_seed(experiment: str, trial: int) -> int:
    """Stable 32-bit seed for (experiment, trial)."""
    return zlib.crc32(f"{experiment}:{trial}".encode()) & 0x7FFFFFFF


class TrialRunner:
    """Runs seeded repetitions of a trial function.

    The paper repeats each workload 20 times; simulation trials converge
    much faster, so the default is smaller — pass ``trials=20`` for
    full-fidelity runs.
    """

    def __init__(self, trials: int = 5, experiment: str = "exp"):
        if trials < 1:
            raise ValueError("need at least one trial")
        self.trials = trials
        self.experiment = experiment

    def run(self, trial_fn: Callable[[int], T]) -> list[T]:
        """Execute all trials; returns their results in trial order."""
        return [
            trial_fn(derive_seed(self.experiment, index))
            for index in range(self.trials)
        ]

    def summary(self, trial_fn: Callable[[int], float]) -> Summary:
        """Run trials returning scalars and summarize them."""
        return summarize(self.run(trial_fn))


def trial_summary(values: Sequence[float]) -> Summary:
    """Convenience re-export of :func:`repro.analysis.stats.summarize`."""
    return summarize(values)


__all__ = ["TrialRunner", "derive_seed", "trial_summary"]
