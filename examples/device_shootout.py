#!/usr/bin/env python3
"""Fig 2 end-to-end: all seven Table 1 phones across the three apps.

Reproduces the paper's opening measurement: Web browsing collapses on
low-end hardware while video streaming barely notices, and telephony
sits in between.

Run:  python examples/device_shootout.py
"""

from repro.analysis import render_table
from repro.core.studies import (
    RtcStudy,
    RtcStudyConfig,
    VideoStudy,
    VideoStudyConfig,
    WebStudy,
    WebStudyConfig,
)
from repro.device import TABLE1_DEVICES
from repro.rtc import CallConfig
from repro.video import VideoSpec


def main() -> None:
    web = WebStudy(WebStudyConfig(n_pages=5, trials=1))
    video = VideoStudy(VideoStudyConfig(clip=VideoSpec(duration_s=45),
                                        trials=1))
    rtc = RtcStudy(RtcStudyConfig(call=CallConfig(call_duration_s=10),
                                  trials=1))

    web_rows = {spec.name: summary
                for spec, summary in web.qoe_across_devices()}
    video_rows = {p.label: p for p in video.qoe_across_devices()}
    rtc_rows = {p.label: p for p in rtc.qoe_across_devices()}

    rows = []
    for spec in TABLE1_DEVICES:
        rows.append([
            spec.name,
            f"${spec.cost_usd}",
            f"{web_rows[spec.name].mean:5.2f}",
            f"{video_rows[spec.name].startup.mean:5.2f}",
            f"{video_rows[spec.name].stall_ratio.mean:5.3f}",
            f"{rtc_rows[spec.name].frame_rate.mean:4.1f}",
        ])
    print(render_table(
        ["Device", "Cost", "PLT (s)", "Video startup (s)",
         "Stall ratio", "Call fps"],
        rows,
    ))
    print(
        "\nTakeaway (paper §2.2): PLT varies ~4-5x across the price range,"
        "\nvideo stalls stay at zero everywhere (hardware decoders +"
        "\nparallel post-processing), and call frame rate degrades"
        "\nmoderately on the cheapest phones."
    )


if __name__ == "__main__":
    main()
