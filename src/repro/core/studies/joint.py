"""§6 future-work studies: joint network×device, TLS overheads, browsers.

The paper closes by calling for exactly these follow-ups:

* "studying the joint impact of network conditions and device-side
  parameters" — :func:`joint_network_device_grid` sweeps link bandwidth ×
  CPU clock and reports where the bottleneck crosses from the network to
  the device;
* "TCP and TLS overheads in the network stack" — :func:`tls_overhead`
  loads the corpus with TLS on and off across clocks, isolating the
  crypto share of PLT;
* "software parameters such as … browser versions" —
  :func:`browsers_vs_clock` repeats the clock sweep under the Chrome,
  Firefox, and Opera-Mini cost profiles (the paper verified the first two
  behave alike; Opera Mini's proxy mode trades compute for round trips).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.stats import Summary, summarize
from repro.cache import TrialCache, cached_map
from repro.device import Device, DeviceSpec, NEXUS4
from repro.netstack import HostStack, HttpClient, Link, LinkSpec
from repro.parallel import Executor, SerialExecutor, drop_quarantined
from repro.sim import Environment
from repro.web import BrowserEngine
from repro.web.costmodel import browser_profile
from repro.workloads import generate_corpus
from repro.workloads.pages import PageSpec
from repro.workloads.regexcorpus import RegexWorkloadFactory


@dataclass(frozen=True)
class JointPoint:
    """One (bandwidth, clock) grid cell."""

    bandwidth_mbps: float
    clock_mhz: int
    plt: Summary
    compute_time: float
    network_time: float

    @property
    def device_bound(self) -> bool:
        """Whether the device (not the network) dominates the load."""
        return self.compute_time > self.network_time


def _corpus(n_pages: int) -> list[PageSpec]:
    return generate_corpus(n_pages, factory=RegexWorkloadFactory())


def _load(page: PageSpec, spec: DeviceSpec, link_spec: LinkSpec,
          clock_mhz: Optional[int], tls: bool = True,
          browser_name: str = "chrome63"):
    env = Environment()
    device = Device(env, spec, governor="OD", pinned_mhz=clock_mhz)
    link = Link(env, link_spec)
    stack = HostStack(env, device)
    http = HttpClient(env, link, stack, tls=tls)
    browser = BrowserEngine(env, device, link, stack=stack, http=http,
                            cost=browser_profile(browser_name))
    return env.run(env.process(browser.load(page)))


@dataclass(frozen=True)
class _GridLoadTask:
    """Picklable per-page load for one grid cell (executor fan-out unit)."""

    spec: DeviceSpec
    link_spec: LinkSpec
    clock_mhz: Optional[int]
    tls: bool = True
    browser_name: str = "chrome63"

    def __call__(self, page: PageSpec):
        return _load(page, self.spec, self.link_spec, self.clock_mhz,
                     tls=self.tls, browser_name=self.browser_name)


def joint_network_device_grid(
    spec: DeviceSpec = NEXUS4,
    bandwidths_mbps: Sequence[float] = (2.0, 8.0, 48.5),
    clocks_mhz: Sequence[int] = (384, 810, 1512),
    n_pages: int = 4,
    executor: Optional[Executor] = None,
    cache: Optional[TrialCache] = None,
) -> list[JointPoint]:
    """PLT over the bandwidth × clock grid.

    On fast links the device dominates (the paper's regime); on slow
    links the crossover moves and upgrading the CPU stops paying.
    """
    executor = executor or SerialExecutor()
    pages = _corpus(n_pages)
    points = []
    for mbps in bandwidths_mbps:
        link_spec = LinkSpec(goodput_bps=mbps * 1e6)
        for mhz in clocks_mhz:
            # drop_quarantined: supervised executors may retire a page
            # load after repeated host faults; the cell averages whatever
            # loads survived (n=0 renders "n/a", times fall back to 0).
            results = drop_quarantined(cached_map(
                executor, _GridLoadTask(spec, link_spec, mhz), pages,
                experiment=f"joint:{mbps}:{mhz}", cache=cache))
            n = len(results) or 1
            points.append(JointPoint(
                bandwidth_mbps=mbps,
                clock_mhz=mhz,
                plt=summarize([r.plt for r in results]),
                compute_time=sum(r.compute_time for r in results) / n,
                network_time=sum(r.network_time for r in results) / n,
            ))
    return points


@dataclass(frozen=True)
class TlsPoint:
    """TLS-on vs TLS-off PLT at one clock."""

    clock_mhz: int
    plt_tls: Summary
    plt_plain: Summary

    @property
    def tls_overhead_frac(self) -> float:
        """Share of the TLS-on PLT attributable to TLS."""
        if self.plt_tls.mean <= 0:
            return 0.0
        return 1.0 - self.plt_plain.mean / self.plt_tls.mean


def tls_overhead(
    spec: DeviceSpec = NEXUS4,
    clocks_mhz: Sequence[int] = (384, 810, 1512),
    n_pages: int = 4,
    executor: Optional[Executor] = None,
    cache: Optional[TrialCache] = None,
) -> list[TlsPoint]:
    """PLT with and without TLS across clocks.

    Handshake crypto and per-byte record processing are CPU work that
    scales with the clock like the rest of the load, so TLS shows up as a
    roughly constant ~10 % tax on PLT at every operating point — in
    absolute seconds, several times larger on a slow clock (the §6
    observation that stack overheads deserve device-side attention).
    """
    executor = executor or SerialExecutor()
    pages = _corpus(n_pages)
    link_spec = LinkSpec()
    points = []
    for mhz in clocks_mhz:
        tls_on = drop_quarantined(cached_map(
            executor, _GridLoadTask(spec, link_spec, mhz, tls=True), pages,
            experiment=f"tls:{mhz}:on", cache=cache))
        tls_off = drop_quarantined(cached_map(
            executor, _GridLoadTask(spec, link_spec, mhz, tls=False), pages,
            experiment=f"tls:{mhz}:off", cache=cache))
        points.append(TlsPoint(
            clock_mhz=mhz,
            plt_tls=summarize([r.plt for r in tls_on]),
            plt_plain=summarize([r.plt for r in tls_off]),
        ))
    return points


def browsers_vs_clock(
    spec: DeviceSpec = NEXUS4,
    browsers: Sequence[str] = ("chrome63", "firefox57", "operamini"),
    clocks_mhz: Sequence[int] = (384, 1512),
    n_pages: int = 4,
    executor: Optional[Executor] = None,
    cache: Optional[TrialCache] = None,
) -> dict[str, dict[int, Summary]]:
    """PLT per browser profile across clocks.

    The paper reports Chrome/Firefox/Opera-Mini are qualitatively alike;
    the profiles reproduce that (same ordering and similar slowdown
    factors), with Opera Mini's proxy mode least clock-sensitive.
    """
    executor = executor or SerialExecutor()
    pages = _corpus(n_pages)
    link_spec = LinkSpec()
    table: dict[str, dict[int, Summary]] = {}
    for browser_name in browsers:
        table[browser_name] = {}
        for mhz in clocks_mhz:
            results = drop_quarantined(cached_map(
                executor,
                _GridLoadTask(spec, link_spec, mhz,
                              browser_name=browser_name),
                pages, experiment=f"browsers:{browser_name}:{mhz}",
                cache=cache,
            ))
            table[browser_name][mhz] = summarize([r.plt for r in results])
    return table


__all__ = [
    "JointPoint",
    "TlsPoint",
    "browsers_vs_clock",
    "joint_network_device_grid",
    "tls_overhead",
]
