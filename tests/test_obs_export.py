"""Trace export: Chrome trace_event shape, determinism, zero overhead."""

from __future__ import annotations

import json

import pytest

from repro.core.tracing import TRACEABLE, run_traced_trial
from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    chrome_trace_json,
    format_histogram,
    histogram_quantile,
    install,
    metrics_json,
    text_summary,
    tracer_of,
)
from repro.sim import Environment
from repro.web import BrowserEngine
from repro.device import Device, NEXUS4
from repro.netstack import Link, LinkSpec
from repro.workloads import generate_corpus


# -- Chrome trace_event shape ----------------------------------------------

def test_chrome_events_have_metadata_swimlanes_and_sorted_data():
    env = Environment()
    tracer = Tracer(env)
    tracer.complete("b.span", "net", start=1.0, end=2.0, args={"k": 1})
    tracer.complete("a.span", "sim", start=0.0, end=0.5)
    tracer.instant("c.point", "net")
    events = chrome_trace_events(tracer)

    meta = [e for e in events if e["ph"] == "M"]
    assert meta[0] == {"args": {"name": "repro simulation"},
                       "name": "process_name", "ph": "M", "pid": 1, "tid": 0}
    # One thread row per category, sorted, tids 1..n.
    assert [(e["args"]["name"], e["tid"]) for e in meta[1:]] == [
        ("net", 1), ("sim", 2)]

    data = [e for e in events if e["ph"] != "M"]
    assert [e["ts"] for e in data] == sorted(e["ts"] for e in data)
    span = next(e for e in data if e["name"] == "b.span")
    assert (span["ph"], span["ts"], span["dur"]) == ("X", 1e6, 1e6)
    assert span["args"] == {"k": 1}
    inst = next(e for e in data if e["name"] == "c.point")
    assert (inst["ph"], inst["s"], inst["ts"]) == ("i", "t", 0.0)


def test_chrome_trace_json_is_valid_and_canonical():
    env = Environment()
    tracer = Tracer(env)
    tracer.instant("x.y", "sim")
    text = chrome_trace_json(tracer)
    payload = json.loads(text)
    assert payload["displayTimeUnit"] == "ms"
    assert payload["metadata"]["clock"] == "simulated-seconds"
    assert len(payload["traceEvents"]) == 3  # process + thread meta + instant
    assert " " not in text.split('"traceEvents"')[0]  # compact separators


def test_text_summary_lists_categories_and_metrics():
    traced = run_traced_trial("fig2a", seed=0)
    summary = text_summary(traced.tracer, traced.metrics)
    assert summary.startswith("trace summary:")
    assert "events:" in summary and "metrics:" in summary
    assert "sim.steps" in summary and "web.fetch_ms" in summary


# -- histogram rendering ----------------------------------------------------

def test_histogram_quantile_uses_le_bucket_bounds():
    hist = {"count": 10, "sum": 30.0,
            "buckets": {"1": 2, "5": 6, "10": 1, "+Inf": 1}}
    assert histogram_quantile(hist, 0.0) == 1.0  # smallest bucket bound
    assert histogram_quantile(hist, 0.2) == 1.0
    assert histogram_quantile(hist, 0.5) == 5.0
    assert histogram_quantile(hist, 0.9) == 10.0
    assert histogram_quantile(hist, 1.0) == float("inf")


def test_histogram_quantile_edge_cases():
    assert histogram_quantile({"count": 0, "buckets": {}}, 0.5) == 0.0
    with pytest.raises(ValueError, match="quantile must lie"):
        histogram_quantile({"count": 1, "buckets": {"+Inf": 1}}, 1.5)
    # All mass beyond the last finite bound estimates to inf.
    overflow = {"count": 3, "sum": 90.0, "buckets": {"1": 0, "+Inf": 3}}
    assert histogram_quantile(overflow, 0.5) == float("inf")


def test_format_histogram_line_is_deterministic():
    hist = {"count": 4, "sum": 10.0, "buckets": {"1": 1, "5": 2, "+Inf": 1}}
    line = format_histogram("plt.ms", hist)
    assert line == "plt.ms: n=4 sum=10.000 mean=2.500 p50<=5 p95<=+Inf"
    empty = format_histogram("plt.ms", {"count": 0, "sum": 0.0,
                                        "buckets": {}})
    assert empty == "plt.ms: n=0 sum=0.000 mean=0.000 p50<=0 p95<=0"


def test_text_summary_renders_histograms_via_format_histogram():
    registry = MetricsRegistry()
    hist = registry.histogram("plt.ms", buckets=(1.0, 5.0))
    for value in (0.5, 2.0, 3.0, 7.0):
        hist.observe(value)
    registry.counter("net.tx").inc(3.0)
    summary = text_summary(Tracer(Environment()), registry)
    assert format_histogram("plt.ms", hist.as_dict()) in summary
    assert "net.tx: 3" in summary


# -- determinism across same-seed runs -------------------------------------

def test_traced_trial_exports_are_byte_identical_across_runs():
    first = run_traced_trial("fig2a", seed=3)
    second = run_traced_trial("fig2a", seed=3)
    assert chrome_trace_json(first.tracer) == chrome_trace_json(second.tracer)
    assert metrics_json(first.metrics) == metrics_json(second.metrics)
    assert first.value == second.value
    assert first.steps == second.steps


def test_different_seeds_produce_different_traces():
    a = run_traced_trial("fig2a", seed=0)
    b = run_traced_trial("fig2a", seed=1)
    assert chrome_trace_json(a.tracer) != chrome_trace_json(b.tracer)


def test_fig2a_trace_covers_at_least_four_subsystems():
    traced = run_traced_trial("fig2a", seed=0)
    assert {"sim", "net", "web", "device"} <= set(traced.tracer.categories())
    # And the headline instruments all reported.
    snapshot = traced.metrics.snapshot()
    for name in ("sim.steps", "net.link.tx_bytes", "net.http.requests",
                 "web.fetch_ms", "device.dvfs.transitions"):
        assert name in snapshot, name
    assert snapshot["sim.steps"] == traced.steps > 0


def test_every_registered_traceable_trial_runs_and_traces():
    for name in TRACEABLE:
        traced = run_traced_trial(name, seed=0)
        assert len(traced.tracer) > 0, name
        assert traced.sim_time_s > 0.0, name
        assert traced.metric_name


# -- zero overhead when disabled --------------------------------------------

def _load_once(with_obs: bool):
    env = Environment()
    if with_obs:
        install(env)
    device = Device(env, NEXUS4, governor="OD")
    browser = BrowserEngine(env, device, Link(env, LinkSpec()))
    page = generate_corpus(1)[0]
    result = env.run(env.process(browser.load(page)))
    return env, result


def test_figures_are_bit_identical_with_tracing_disabled():
    env_plain, plain = _load_once(with_obs=False)
    env_traced, traced = _load_once(with_obs=True)
    assert plain.plt == traced.plt
    assert env_plain.now == env_traced.now
    assert env_plain.steps_processed == env_traced.steps_processed


def test_uninstrumented_environment_allocates_no_obs_events():
    env, _ = _load_once(with_obs=False)
    assert env.tracer is None and env.metrics is None
    assert tracer_of(env).enabled is False
    # The shared null tracer has no storage, so nothing can have leaked.
    assert not hasattr(tracer_of(env), "spans")


def test_traced_fig2a_has_sane_wall_cost():
    # Not a benchmark — a regression tripwire: one traced page load must
    # stay far from pathological (event storms, quadratic span handling).
    import time

    start = time.monotonic()  # simlint: disable=DET001
    traced = run_traced_trial("fig2a", seed=0)
    elapsed = time.monotonic() - start  # simlint: disable=DET001
    assert elapsed < 30.0, f"traced fig2a took {elapsed:.1f}s"
    # Event volume stays bounded relative to kernel steps: every span or
    # instant is tied to real simulation activity, not emitted in a loop.
    assert len(traced.tracer) < 10 * traced.steps
