"""Video streaming substrate (the paper's YouTube workload).

A DASH-like player on top of the device and network models:

* device-aware ABR (YouTube serves device-specific formats — no FullHD to
  an Intex),
* hardware-codec decode (CPU-independent, present on every Table 1 phone),
* CPU post-processing (demux, audio, compositing) parallelized across
  cores — the Android media framework, unlike the browser, scales with
  core count,
* 120 s read-ahead prefetch, which masks slow-clock network degradation.

QoE metrics match §2.1: start-up latency (network-centric) and stall
ratio (device-centric).
"""

from repro.video.spec import Format, VideoSpec, FORMAT_LADDER
from repro.video.abr import DeviceAwareAbr
from repro.video.player import PlayerConfig, StreamingPlayer, StreamingResult

__all__ = [
    "DeviceAwareAbr",
    "FORMAT_LADDER",
    "Format",
    "PlayerConfig",
    "StreamingPlayer",
    "StreamingResult",
    "VideoSpec",
]
