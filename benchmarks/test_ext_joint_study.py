"""Extension bench (§6 future work): joint network×device grid + TLS tax.

Not a paper figure — the study the paper's conclusion calls for, run on
the same substrate.
"""

from repro.analysis import render_table
from repro.core.studies import joint_network_device_grid, tls_overhead


def run_extension():
    grid = joint_network_device_grid(
        bandwidths_mbps=(2.0, 8.0, 48.5), clocks_mhz=(384, 1512), n_pages=3
    )
    tls = tls_overhead(clocks_mhz=(384, 1512), n_pages=3)
    return grid, tls


def test_ext_joint(benchmark, fig_printer):
    grid, tls = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    body = render_table(
        ["Bandwidth (Mbps)", "Clock (MHz)", "PLT (s)", "Bound by"],
        [[p.bandwidth_mbps, p.clock_mhz, f"{p.plt.mean:.2f}",
          "device" if p.device_bound else "network"] for p in grid],
    )
    body += "\n\n" + render_table(
        ["Clock (MHz)", "PLT TLS (s)", "PLT plain (s)", "TLS share"],
        [[p.clock_mhz, f"{p.plt_tls.mean:.2f}", f"{p.plt_plain.mean:.2f}",
          f"{p.tls_overhead_frac:.1%}"] for p in tls],
    )
    fig_printer("Extension: joint network x device impact and TLS tax", body)

    by_cell = {(p.bandwidth_mbps, p.clock_mhz): p for p in grid}
    # The paper's regime (fast LAN) is device-bound; a 2 Mbps path is not.
    assert by_cell[(48.5, 384)].device_bound
    assert not by_cell[(2.0, 1512)].device_bound
    # TLS taxes every clock point.
    assert all(p.tls_overhead_frac > 0.03 for p in tls)
