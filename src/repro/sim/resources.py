"""Shared-resource primitives built on the event kernel.

* :class:`Resource` — a counted resource (e.g. CPU cores) with FIFO queueing.
* :class:`Store` — a buffer of discrete objects (e.g. a packet queue).
* :class:`Container` — a continuous reservoir (e.g. seconds of buffered video).

All requests are events; processes ``yield`` them and are resumed when the
request is granted.  Requests also work as context managers so the common
pattern reads::

    with resource.request() as req:
        yield req
        ...   # holding the resource
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.core import Environment, Event, SimulationError


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._request(self)

    def cancel(self) -> None:
        """Withdraw the claim (release if already granted)."""
        self.resource.release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.cancel()


class Resource:
    """``capacity`` identical slots, granted in FIFO order."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when granted."""
        return Request(self)

    def _request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def release(self, request: Request) -> None:
        """Return a slot (or withdraw a queued claim). Idempotent."""
        try:
            self.users.remove(request)
        except ValueError:
            try:
                self.queue.remove(request)
            except ValueError:
                pass
            return
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()


class StoreGet(Event):
    """Pending retrieval from a :class:`Store`."""

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._get(self)


class StorePut(Event):
    """Pending insertion into a :class:`Store`."""

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put(self)


class Store:
    """FIFO buffer of Python objects with optional capacity bound."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; fires when there is room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Retrieve the oldest item; fires when one is available."""
        return StoreGet(self)

    def _put(self, event: StorePut) -> None:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append(event)

    def _get(self, event: StoreGet) -> None:
        if self.items:
            event.succeed(self.items.popleft())
            self._serve_putters()
        else:
            self._getters.append(event)

    def _serve_getters(self) -> None:
        while self._getters and self.items:
            self._getters.popleft().succeed(self.items.popleft())

    def _serve_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            put = self._putters.popleft()
            self.items.append(put.item)
            put.succeed()
            self._serve_getters()


class ContainerGet(Event):
    """Pending withdrawal of ``amount`` from a :class:`Container`."""

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._get(self)


class ContainerPut(Event):
    """Pending deposit of ``amount`` into a :class:`Container`."""

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._put(self)


class Container:
    """A continuous-level reservoir bounded by ``capacity``.

    Used, e.g., for the video playback buffer: the downloader ``put``s
    seconds of content, the renderer ``get``s them.
    """

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if init < 0 or init > capacity:
            raise ValueError("init must lie in [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: Deque[ContainerGet] = deque()
        self._putters: Deque[ContainerPut] = deque()

    @property
    def level(self) -> float:
        """Current contents."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Deposit ``amount``; fires when it fits under ``capacity``."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Withdraw ``amount``; fires when the level covers it."""
        return ContainerGet(self, amount)

    def _put(self, event: ContainerPut) -> None:
        self._putters.append(event)
        self._settle()

    def _get(self, event: ContainerGet) -> None:
        self._getters.append(event)
        self._settle()

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and self._level + self._putters[0].amount <= self.capacity:
                put = self._putters.popleft()
                self._level += put.amount
                put.succeed()
                progress = True
            if self._getters and self._level >= self._getters[0].amount:
                get = self._getters.popleft()
                self._level -= get.amount
                get.succeed()
                progress = True


__all__ = [
    "Container",
    "ContainerGet",
    "ContainerPut",
    "Request",
    "Resource",
    "SimulationError",
    "Store",
    "StoreGet",
    "StorePut",
]
