"""Device-layer fault injectors: thermal throttling and memory pressure.

Thermal throttling follows a deterministic schedule (SoC thermal governors
are threshold-driven, not random); memory pressure is stochastic episodes
of competing-app allocations, drawn from the injector's seeded stream.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.device import Device
from repro.faults.plan import FaultTrace, MemoryPressureSpec, ThermalThrottleSpec
from repro.sim import Environment, Event


class ThermalThrottleInjector:
    """Walk a ``(t, cap_fraction)`` schedule, capping the DVFS ladder."""

    name = "thermal"

    def __init__(self, env: Environment, device: Device,
                 spec: ThermalThrottleSpec, *,
                 rng: random.Random, trace: FaultTrace):
        self.env = env
        self.device = device
        self.spec = spec
        self.rng = rng  # unused (deterministic schedule); kept for API symmetry
        self.trace = trace
        env.process(self._run())

    def _run(self) -> Iterator[Event]:
        previous = 0.0
        for t_s, cap in self.spec.schedule:
            yield self.env.timeout(t_s - previous)
            previous = t_s
            self.device.cpu.set_thermal_cap_fraction(
                None if cap >= 1.0 else cap
            )
            self.trace.record(self.env, self.name,
                              "lift" if cap >= 1.0 else "cap",
                              f"fraction={cap}")


class MemoryPressureInjector:
    """Stochastic eviction episodes raising the device's working set."""

    name = "mem-pressure"

    def __init__(self, env: Environment, device: Device,
                 spec: MemoryPressureSpec, *,
                 rng: random.Random, trace: FaultTrace):
        self.env = env
        self.device = device
        self.spec = spec
        self.rng = rng
        self.trace = trace
        env.process(self._run())

    def _run(self) -> Iterator[Event]:
        spec = self.spec
        if spec.start_s > 0:
            yield self.env.timeout(spec.start_s)
        low, high = spec.pressure_gb
        while True:
            yield self.env.timeout(
                self.rng.expovariate(1.0 / spec.mean_interval_s)
            )
            pressure = self.rng.uniform(low, high)
            self.device.set_fault_pressure(pressure)
            self.trace.record(self.env, self.name, "evict",
                              f"pressure_gb={pressure:.6f}")


__all__ = ["MemoryPressureInjector", "ThermalThrottleInjector"]
