"""Video-telephony QoE studies (Figs 2c, 5a–5d)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.stats import Summary, summarize
from repro.cache import TrialCache, cached_map
from repro.core.background import BackgroundLoad, make_rng
from repro.core.experiments import derive_seed
from repro.device import Device, DeviceSpec, GOVERNOR_CODES, NEXUS4, TABLE1_DEVICES
from repro.netstack import Link, LinkSpec
from repro.parallel import Executor, SerialExecutor, drop_quarantined
from repro.rtc import CallConfig, CallResult, VideoCall
from repro.sim import Environment


@dataclass
class RtcStudyConfig:
    """Scale knobs for the call experiments."""

    call: CallConfig = field(default_factory=lambda: CallConfig(call_duration_s=20.0))
    trials: int = 3
    link: LinkSpec = field(default_factory=LinkSpec)
    background_jitter: bool = True
    #: Trial dispatch layer; None means in-process serial execution.
    executor: Optional[Executor] = None
    #: Content-addressed result cache; None checks the executor for an
    #: attached one (see :mod:`repro.cache`).
    cache: Optional[TrialCache] = None


@dataclass
class CallPoint:
    """One figure x-position: setup delay and frame rate."""

    label: object
    setup_delay: Summary
    frame_rate: Summary


class RtcStudy:
    """Parameterized call sweeps on the simulated testbed."""

    def __init__(self, config: Optional[RtcStudyConfig] = None):
        self.config = config or RtcStudyConfig()
        self.executor = self.config.executor or SerialExecutor()

    def cache_params(self) -> dict:
        """Config facets a call result depends on (cache key input)."""
        return {"call": self.config.call, "link": self.config.link,
                "background_jitter": self.config.background_jitter}

    def call_once(self, spec: DeviceSpec, seed: int,
                  **device_kwargs) -> CallResult:
        """One call on a fresh device."""
        env = Environment()
        device = Device(env, spec, **device_kwargs)
        if self.config.background_jitter:
            BackgroundLoad(env, device, make_rng(seed))
        call = VideoCall(env, device, Link(env, self.config.link),
                         self.config.call)
        return env.run(env.process(call.run()))

    def _point(self, spec: DeviceSpec, label: object, experiment: str,
               **device_kwargs) -> CallPoint:
        seeds = [derive_seed(experiment, t)
                 for t in range(self.config.trials)]
        # Quarantined trials (supervised executors only) shrink n rather
        # than failing the sweep — same degradation as sim-level faults.
        results = drop_quarantined(cached_map(
            self.executor,
            _CallTask(study=self, spec=spec, device_kwargs=device_kwargs),
            seeds, experiment=experiment, cache=self.config.cache,
        ))
        return CallPoint(
            label=label,
            setup_delay=summarize([r.setup_delay_s for r in results]),
            frame_rate=summarize([r.frame_rate for r in results]),
        )

    def qoe_across_devices(
        self, devices: Sequence[DeviceSpec] = TABLE1_DEVICES
    ) -> list[CallPoint]:
        """Frame rate per Table 1 device (Fig 2c)."""
        return [
            self._point(spec, spec.name, f"fig2c:{spec.name}", governor="OD")
            for spec in devices
        ]

    def vs_clock(self, spec: DeviceSpec = NEXUS4,
                 ladder: Optional[Sequence[int]] = None) -> list[CallPoint]:
        """Fig 5a: the DVFS ladder sweep."""
        ladder = ladder or spec.clusters[0].freqs_mhz
        return [
            self._point(spec, mhz, f"fig5a:{mhz}", pinned_mhz=mhz)
            for mhz in ladder
        ]

    def vs_memory(self, spec: DeviceSpec = NEXUS4,
                  sizes_gb: Sequence[float] = (0.5, 1.0, 1.5, 2.0)
                  ) -> list[CallPoint]:
        """Fig 5b: memory sweep."""
        return [
            self._point(spec, gb, f"fig5b:{gb}", governor="OD", memory_gb=gb)
            for gb in sizes_gb
        ]

    def vs_cores(self, spec: DeviceSpec = NEXUS4,
                 cores: Sequence[int] = (1, 2, 3, 4)) -> list[CallPoint]:
        """Fig 5c: core-count sweep."""
        return [
            self._point(spec, n, f"fig5c:{n}", governor="OD", online_cores=n)
            for n in cores
        ]

    def vs_governor(self, spec: DeviceSpec = NEXUS4,
                    governors: Sequence[str] = GOVERNOR_CODES
                    ) -> list[CallPoint]:
        """Fig 5d: governor sweep (PF IN US OD PW)."""
        return [
            self._point(spec, code, f"fig5d:{code}", governor=code)
            for code in governors
        ]


@dataclass
class _CallTask:
    """Picklable per-trial task: one full call session."""

    study: RtcStudy
    spec: DeviceSpec
    device_kwargs: dict

    def __call__(self, seed: int) -> CallResult:
        return self.study.call_once(self.spec, seed, **self.device_kwargs)


__all__ = ["CallPoint", "RtcStudy", "RtcStudyConfig"]
