"""Population-scale QoE fleet simulation (``python -m repro population``).

Every study in :mod:`repro.core.studies` sweeps one device knob at a
time; the paper's distributional claim — that low-end hardware drags
web/video/RTC QoE down by multiples *across the market* — lives in
population CDFs over heterogeneous device/network mixes.  This package
composes the existing machinery at that scale:

* :mod:`repro.population.market` — device tiers (Table 1 phones plus a
  synthesized legacy tier), network profiles, and the workload mix.
* :mod:`repro.population.config` — :class:`PopulationConfig` and the
  seeded :class:`SessionSampler` (``derive_seed``/``make_rng`` only).
* :mod:`repro.population.aggregate` — the streaming
  count/mean/M2 + fixed-bucket-histogram aggregator: memory stays
  O(buckets) however many sessions run.
* :mod:`repro.population.fleet` — :class:`FleetRunner` dispatching
  sessions through :mod:`repro.parallel` executors with runlog,
  quarantine, and :mod:`repro.cache` integration, and the resulting
  :class:`FleetReport`.
* :mod:`repro.population.report` — text/JSON/HTML renderers.

Determinism contract: for a fixed cache state, the aggregate (and its
JSON) is byte-identical for any ``--jobs`` value — results are folded in
a canonical order via a bounded reorder buffer, never in completion
order.  See ``docs/population.md``.
"""

from repro.population.aggregate import (
    ALL_TIER,
    FleetAggregator,
    METRIC_BUCKETS,
    StreamingStat,
    WORKLOAD_METRICS,
)
from repro.population.config import PopulationConfig, SessionSampler, SessionSpec
from repro.population.fleet import FleetReport, FleetRunner, SessionResult
from repro.population.market import (
    DEFAULT_NETWORKS,
    DEFAULT_WORKLOAD_MIX,
    DeviceTier,
    NetworkProfile,
    WORKLOADS,
    default_market,
    legacy_tier_devices,
)
from repro.population.report import render_html, render_text

__all__ = [
    "ALL_TIER",
    "DEFAULT_NETWORKS",
    "DEFAULT_WORKLOAD_MIX",
    "DeviceTier",
    "FleetAggregator",
    "FleetReport",
    "FleetRunner",
    "METRIC_BUCKETS",
    "NetworkProfile",
    "PopulationConfig",
    "SessionResult",
    "SessionSampler",
    "SessionSpec",
    "StreamingStat",
    "WORKLOADS",
    "WORKLOAD_METRICS",
    "default_market",
    "legacy_tier_devices",
    "render_html",
    "render_text",
]
