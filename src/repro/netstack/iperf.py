"""iperf-style bulk TCP throughput measurement (paper §4.1, Fig 6).

The paper runs a 5-minute downstream iperf from the LAN server to the
phone, 20 times per clock step.  The simulation is deterministic, so the
default run is shorter (the estimate converges within seconds); duration
and repetitions are parameters for full-fidelity runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device import Device
from repro.netstack.hoststack import HostStack, PacketCostModel
from repro.netstack.link import Link, LinkSpec
from repro.netstack.tcp import BURST_CAP_BYTES, TcpConnection
from repro.sim import Environment


@dataclass(frozen=True)
class IperfResult:
    """Outcome of one iperf run."""

    duration_s: float
    bytes_received: float

    @property
    def throughput_bps(self) -> float:
        return self.bytes_received * 8.0 / self.duration_s

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / 1e6


def _sink(env: Environment, conn: TcpConnection, stop_at: float):
    """Receive bursts back-to-back until the measurement window closes."""
    yield from conn.connect()
    first = True
    while env.now < stop_at:
        yield from conn.receive(BURST_CAP_BYTES, first_byte_latency=first)
        first = False


def run_iperf(
    device_spec,
    clock_mhz: float | None = None,
    duration_s: float = 20.0,
    link_spec: LinkSpec = LinkSpec(),
    cost: PacketCostModel = PacketCostModel(),
    governor: str = "PF",
) -> IperfResult:
    """Measure downstream TCP throughput on ``device_spec``.

    ``clock_mhz`` pins the CPU (the Fig 6 sweep); otherwise ``governor``
    runs.  Returns the goodput measured over ``duration_s``.
    """
    env = Environment()
    device = Device(env, device_spec, governor=governor, pinned_mhz=clock_mhz)
    link = Link(env, link_spec)
    stack = HostStack(env, device, cost)
    conn = TcpConnection(env, link, stack)
    env.process(_sink(env, conn, duration_s))
    env.run(until=duration_s)
    return IperfResult(duration_s=duration_s, bytes_received=conn.bytes_downloaded)


__all__ = ["IperfResult", "run_iperf"]
