"""Unit tests for device-aware format selection."""

import pytest

from repro.device import Device, NEXUS4, PIXEL2, by_name
from repro.sim import Environment
from repro.video import DeviceAwareAbr, FORMAT_LADDER, Format
from repro.video.spec import VideoSpec


def select_for(spec):
    env = Environment()
    return DeviceAwareAbr().select(Device(env, spec, governor="PF"))


def test_ladder_sorted_by_bitrate():
    rates = [f.bitrate_bps for f in FORMAT_LADDER]
    assert rates == sorted(rates)


def test_pixel2_gets_full_hd():
    assert select_for(PIXEL2).name == "1080p"


def test_intex_capped_by_display():
    assert select_for(by_name("Intex Amaze+")).height <= 720


def test_nexus4_capped_by_display():
    assert select_for(NEXUS4).height <= 768


def test_bandwidth_cap():
    env = Environment()
    device = Device(env, PIXEL2, governor="PF")
    fmt = DeviceAwareAbr().select(device, bandwidth_bps=2e6)
    assert fmt.bitrate_bps <= 0.8 * 2e6


def test_codec_capability_respected():
    env = Environment()
    device = Device(env, by_name("Gionee F103"), governor="PF")
    fmt = DeviceAwareAbr().select(device)
    codec = device.accelerators.codec
    assert codec.supports(fmt.width, fmt.height, fmt.fps)


def test_empty_ladder_rejected():
    with pytest.raises(ValueError):
        DeviceAwareAbr(ladder=())


def test_format_properties():
    fmt = Format("1080p", 1920, 1080, 30.0, 4.8e6)
    assert fmt.pixels_per_frame == 1920 * 1080
    assert fmt.bytes_per_second == pytest.approx(600_000)


def test_video_spec_segments():
    assert VideoSpec(duration_s=300, segment_s=2).n_segments == 150
    assert VideoSpec(duration_s=301, segment_s=2).n_segments == 151
    with pytest.raises(ValueError):
        VideoSpec(duration_s=0)
