"""Observability rules (OBS5xx).

Tracing is only trustworthy when spans are balanced: an exception between
a raw ``begin_span`` and its ``end_span`` leaves a half-open span that
either vanishes from the export or reports a bogus duration.  The
context-manager API (``with tracer.span(...)``) closes the span on every
exit path and annotates it with the exception type, so raw pairs are
flagged everywhere outside the tracer's own implementation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileContext, Rule, call_name

_RAW_PAIR = frozenset({"begin_span", "end_span"})


class RawSpanPairRule(Rule):
    """OBS501: raw begin_span/end_span outside the context-manager API."""

    id = "OBS501"
    severity = Severity.WARNING
    title = "raw begin_span/end_span instead of the span() context manager"
    rationale = (
        "A raw begin_span/end_span pair is not exception-safe: any raise "
        "between the two leaves a dangling open span, so the exported trace "
        "silently drops it or reports a wrong duration. `with "
        "tracer.span(name, cat):` closes the span on every exit path and "
        "records the exception type in the span args."
    )

    def applies_to(self, context: FileContext) -> bool:
        # The tracer implements the pairing; everyone else must use span().
        return "/obs/" not in context.norm_path

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            tail = name.rsplit(".", 1)[-1]
            if tail not in _RAW_PAIR:
                continue
            yield self.finding(
                context, node,
                f"raw {tail}() call; use `with tracer.span(name, cat):` so "
                f"the span is closed on every exit path",
            )


__all__ = ["RawSpanPairRule"]
