"""Fig 1: page performance vs device evolution, 2011–2018."""

from repro.analysis import render_table
from repro.core.studies import evolution_timeline


def run_timeline():
    return evolution_timeline(n_pages=2)


def test_fig1(benchmark, fig_printer):
    points = benchmark.pedantic(run_timeline, rounds=1, iterations=1)
    table = render_table(
        ["Year", "PLT (s)", "Clock (GHz)", "Cores", "Memory (GB)",
         "OS", "Page size (MB)"],
        [[p.year, f"{p.plt_s:.1f}", p.clock_ghz, p.cores, p.memory_gb,
          p.os_version, f"{p.page_size_mb:.1f}"] for p in points],
    )
    fig_printer("Fig 1: PLT and device parameters over 2011-2018", table)
    early = (points[0].plt_s + points[1].plt_s) / 2
    late = (points[-2].plt_s + points[-1].plt_s) / 2
    # The paper: PLT grows ~4× despite hardware improving on every axis.
    assert late > 2 * early
    assert points[-1].clock_ghz > points[0].clock_ghz
