"""Web-browsing QoE studies (Figs 2a, 3a–3d; §3.1).

Each method sweeps one device parameter while holding everything else at
defaults, exactly as §3 prescribes ("the effect of a given resource is
isolated by changing its value while keeping the remaining setup
constant"), loading the Alexa-like corpus repeatedly with per-trial
background jitter and reporting mean ± std.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.stats import Summary, summarize
from repro.cache import TrialCache, cached_map
from repro.core.background import BackgroundLoad, make_rng
from repro.core.experiments import derive_seed
from repro.device import Device, DeviceSpec, GOVERNOR_CODES, NEXUS4, TABLE1_DEVICES
from repro.netstack import Link, LinkSpec
from repro.parallel import Executor, SerialExecutor, drop_quarantined
from repro.sim import Environment
from repro.web import BrowserEngine, PageLoadResult
from repro.workloads import generate_corpus
from repro.workloads.pages import CATEGORIES, PageSpec
from repro.workloads.regexcorpus import RegexWorkloadFactory


@dataclass
class WebStudyConfig:
    """Scale and environment of the study.

    The paper loads the top 50 pages 20 times; simulation defaults are
    smaller for CI speed — raise ``n_pages``/``trials`` for full scale.
    """

    n_pages: int = 10
    trials: int = 3
    categories: Sequence[str] = CATEGORIES
    link: LinkSpec = field(default_factory=LinkSpec)
    background_jitter: bool = True
    #: Trial dispatch layer; None means in-process serial execution.
    executor: Optional[Executor] = None
    #: Content-addressed result cache; None checks the executor for an
    #: attached one (see :mod:`repro.cache`).
    cache: Optional[TrialCache] = None


@dataclass
class ClockSweepPoint:
    """One x-position of Fig 3a with its §3.1 decomposition."""

    clock_mhz: int
    plt: Summary
    compute_time: Summary
    network_time: Summary
    scripting_share: float
    layout_paint_share: float


class WebStudy:
    """Shared page corpus + parameterized page-load sweeps."""

    def __init__(self, config: Optional[WebStudyConfig] = None):
        self.config = config or WebStudyConfig()
        self.executor = self.config.executor or SerialExecutor()
        self._factory = RegexWorkloadFactory()
        self.corpus: list[PageSpec] = generate_corpus(
            self.config.n_pages, categories=tuple(self.config.categories),
            factory=self._factory,
        )

    def cache_params(self) -> dict:
        """Config facets a page-load result depends on (cache key input).

        The executor and scale knobs stay out: the pages themselves
        travel in the task, and how trials are dispatched can never
        change what one trial computes.
        """
        return {"link": self.config.link,
                "background_jitter": self.config.background_jitter}

    # -- one load ---------------------------------------------------------

    def load_page(self, spec: DeviceSpec, page: PageSpec, seed: int,
                  **device_kwargs) -> PageLoadResult:
        """Load one page on a fresh simulated device; returns the result."""
        env = Environment()
        device = Device(env, spec, **device_kwargs)
        if self.config.background_jitter:
            BackgroundLoad(env, device, make_rng(seed))
        browser = BrowserEngine(env, device, Link(env, self.config.link))
        return env.run(env.process(browser.load(page)))

    def _results(self, spec: DeviceSpec, experiment: str,
                 pages: Optional[Sequence[PageSpec]] = None,
                 **device_kwargs) -> list[PageLoadResult]:
        task = _PageLoadTask(study=self, spec=spec,
                             pages=tuple(pages or self.corpus),
                             device_kwargs=device_kwargs)
        seeds = [derive_seed(experiment, trial)
                 for trial in range(self.config.trials)]
        out: list[PageLoadResult] = []
        # cached_map() returns trial-order results whatever the completion
        # order, so the flattened list matches the serial loop exactly —
        # and replays any trial whose exact (params, seed, code) result
        # is already stored.  A supervised executor may quarantine a
        # trial after repeated host-level faults; the sweep then
        # summarizes the trials that survived (smaller n), mirroring how
        # sim-level failures degrade.
        mapped = cached_map(self.executor, task, seeds,
                            experiment=experiment, cache=self.config.cache)
        for trial_results in drop_quarantined(mapped):
            out.extend(trial_results)
        return out

    def plt_summary(self, spec: DeviceSpec, experiment: str,
                    pages: Optional[Sequence[PageSpec]] = None,
                    **device_kwargs) -> Summary:
        """Mean ± std PLT across pages × trials for one configuration."""
        results = self._results(spec, experiment, pages, **device_kwargs)
        return summarize([r.plt for r in results])

    # -- Fig 2a -------------------------------------------------------------

    def qoe_across_devices(
        self, devices: Sequence[DeviceSpec] = TABLE1_DEVICES
    ) -> list[tuple[DeviceSpec, Summary]]:
        """PLT per Table 1 device at the default governor (Fig 2a)."""
        return [
            (spec, self.plt_summary(spec, f"fig2a:{spec.name}", governor="OD"))
            for spec in devices
        ]

    # -- Fig 3a -------------------------------------------------------------

    def plt_vs_clock(
        self,
        spec: DeviceSpec = NEXUS4,
        ladder: Optional[Sequence[int]] = None,
    ) -> list[ClockSweepPoint]:
        """PLT and critical-path decomposition across the DVFS ladder."""
        ladder = ladder or spec.clusters[0].freqs_mhz
        points = []
        for mhz in ladder:
            results = self._results(spec, f"fig3a:{mhz}", pinned_mhz=mhz)
            # Every trial of a point can be quarantined under host faults;
            # the shares then render as 0 next to an "n/a (n=0)" summary
            # instead of dividing by zero.
            n = len(results) or 1
            points.append(ClockSweepPoint(
                clock_mhz=mhz,
                plt=summarize([r.plt for r in results]),
                compute_time=summarize([r.compute_time for r in results]),
                network_time=summarize([r.network_time for r in results]),
                scripting_share=(
                    sum(r.scripting_share for r in results) / n
                ),
                layout_paint_share=(
                    sum(r.layout_paint_share for r in results) / n
                ),
            ))
        return points

    # -- Fig 3b/3c/3d ---------------------------------------------------------

    def plt_vs_memory(
        self, spec: DeviceSpec = NEXUS4,
        sizes_gb: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
    ) -> list[tuple[float, Summary]]:
        """PLT for RAM-disk-restricted memory sizes (Fig 3b)."""
        return [
            (gb, self.plt_summary(spec, f"fig3b:{gb}", governor="OD",
                                  memory_gb=gb))
            for gb in sizes_gb
        ]

    def plt_vs_cores(
        self, spec: DeviceSpec = NEXUS4,
        cores: Sequence[int] = (1, 2, 3, 4),
    ) -> list[tuple[int, Summary]]:
        """PLT with cores hot-unplugged (Fig 3c)."""
        return [
            (n, self.plt_summary(spec, f"fig3c:{n}", governor="OD",
                                 online_cores=n))
            for n in cores
        ]

    def plt_vs_governor(
        self, spec: DeviceSpec = NEXUS4,
        governors: Sequence[str] = GOVERNOR_CODES,
    ) -> list[tuple[str, Summary]]:
        """PLT per frequency governor (Fig 3d; PF IN US OD PW)."""
        return [
            (code, self.plt_summary(spec, f"fig3d:{code}", governor=code))
            for code in governors
        ]

    # -- §3.1: category sensitivity -------------------------------------------

    def category_clock_sensitivity(
        self, spec: DeviceSpec = NEXUS4,
        high_mhz: Optional[int] = None, low_mhz: Optional[int] = None,
    ) -> dict[str, float]:
        """Per-category PLT(low clock)/PLT(high clock) slowdown factors.

        The paper finds news/sports pages ≈6× more affected because they
        are script-heavy.
        """
        high_mhz = high_mhz or spec.max_clock_mhz
        low_mhz = low_mhz or spec.min_clock_mhz
        sensitivity: dict[str, float] = {}
        for category in self.config.categories:
            pages = [p for p in self.corpus if p.category == category]
            if not pages:
                continue
            fast = self.plt_summary(spec, f"cat:{category}:hi", pages,
                                    pinned_mhz=high_mhz)
            slow = self.plt_summary(spec, f"cat:{category}:lo", pages,
                                    pinned_mhz=low_mhz)
            sensitivity[category] = slow.mean / fast.mean
        return sensitivity

    def category_plt_deltas(
        self, spec: DeviceSpec = NEXUS4,
        high_mhz: Optional[int] = None, low_mhz: Optional[int] = None,
    ) -> dict[str, float]:
        """Absolute PLT penalty (seconds added by the slow clock) per
        category — the script-heavy categories pay severalfold more."""
        high_mhz = high_mhz or spec.max_clock_mhz
        low_mhz = low_mhz or spec.min_clock_mhz
        deltas: dict[str, float] = {}
        for category in self.config.categories:
            pages = [p for p in self.corpus if p.category == category]
            if not pages:
                continue
            fast = self.plt_summary(spec, f"catd:{category}:hi", pages,
                                    pinned_mhz=high_mhz)
            slow = self.plt_summary(spec, f"catd:{category}:lo", pages,
                                    pinned_mhz=low_mhz)
            deltas[category] = slow.mean - fast.mean
        return deltas


@dataclass
class _PageLoadTask:
    """Picklable per-trial task: load every page of a corpus slice once."""

    study: WebStudy
    spec: DeviceSpec
    pages: tuple[PageSpec, ...]
    device_kwargs: dict

    def __call__(self, seed: int) -> list[PageLoadResult]:
        return [
            self.study.load_page(self.spec, page, seed, **self.device_kwargs)
            for page in self.pages
        ]


__all__ = ["ClockSweepPoint", "WebStudy", "WebStudyConfig"]
