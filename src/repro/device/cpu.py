"""CPU model: cores, clusters, DVFS frequency ladders, and task execution.

The CPU is the contended resource at the heart of the reproduction.  All
application work — browser parsing/scripting, video post-processing, packet
processing — is expressed as *tasks* measured in reference cycles.  A task
runs on a core at the core's cluster frequency scaled by the cluster's IPC
(instructions per cycle relative to a reference core), so::

    execution_time = cycles / (freq_hz * ipc)

Tasks are scheduled in quanta; at each quantum boundary a task yields the
core if other tasks are waiting, which approximates the kernel's round-robin
CFS behaviour closely enough for second-scale QoE metrics.

Frequency is controlled per cluster by a governor (see
:mod:`repro.device.governors`); utilization accounting here feeds the
governor's sampling loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from repro.obs import metrics_of, tracer_of
from repro.sim import Environment, Event, Process, Resource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.device.energy import EnergyMeter

#: Scheduler quantum in seconds.  Small enough that second-scale metrics are
#: insensitive to it, large enough to keep the event count manageable.
DEFAULT_QUANTUM = 0.020

MHZ = 1_000_000.0


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of one CPU cluster (e.g. the "big" cluster).

    ``freqs_mhz`` is the DVFS ladder in ascending order; ``ipc`` expresses
    micro-architectural efficiency relative to a reference core (a 2012-era
    in-order core ≈ 1.0, a Snapdragon 835 big core ≈ 2.2).
    """

    name: str
    n_cores: int
    freqs_mhz: Sequence[int]
    ipc: float = 1.0

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError("cluster must have at least one core")
        if not self.freqs_mhz:
            raise ValueError("frequency ladder must be non-empty")
        if list(self.freqs_mhz) != sorted(self.freqs_mhz):
            raise ValueError("frequency ladder must be ascending")
        if self.ipc <= 0:
            raise ValueError("ipc must be positive")

    @property
    def min_mhz(self) -> int:
        return self.freqs_mhz[0]

    @property
    def max_mhz(self) -> int:
        return self.freqs_mhz[-1]


class Cluster:
    """Runtime state of one cluster: current frequency and busy accounting."""

    def __init__(self, env: Environment, spec: ClusterSpec, online_cores: int):
        if not 0 <= online_cores <= spec.n_cores:
            raise ValueError("online_cores out of range")
        self.env = env
        self.spec = spec
        self.online_cores = online_cores
        self._freq_index = len(spec.freqs_mhz) - 1
        self._requested_index = self._freq_index
        self._thermal_cap_index: Optional[int] = None
        self._busy = 0  # number of cores currently executing a task
        self._busy_time = 0.0  # integrated core-busy seconds
        self._last_change = env.now
        self.pool = Resource(env, capacity=max(online_cores, 1))
        self._observers: list[Callable[["Cluster"], None]] = []
        self._tracer = tracer_of(env)
        self._m_transitions = metrics_of(env).counter(
            "device.dvfs.transitions")
        if online_cores > 0:
            self._reserve_offline(spec.n_cores - online_cores)

    def _reserve_offline(self, count: int) -> None:
        # Offline cores are modelled by shrinking the pool capacity.
        self.pool.capacity = self.online_cores

    def add_observer(self, callback: Callable[["Cluster"], None]) -> None:
        """Register a callback invoked on every busy/frequency transition."""
        self._observers.append(callback)

    def _notify(self) -> None:
        for callback in self._observers:
            callback(self)

    @property
    def freq_index(self) -> int:
        return self._freq_index

    @property
    def freq_mhz(self) -> int:
        """Current cluster frequency in MHz."""
        return self.spec.freqs_mhz[self._freq_index]

    @property
    def freq_hz(self) -> float:
        return self.freq_mhz * MHZ

    @property
    def busy_cores(self) -> int:
        """Number of cores currently running a task."""
        return self._busy

    @property
    def rate_hz(self) -> float:
        """Effective instruction rate of one core (freq × IPC)."""
        return self.freq_hz * self.spec.ipc

    @property
    def thermal_cap_index(self) -> Optional[int]:
        """Highest ladder step currently allowed by thermal throttling."""
        return self._thermal_cap_index

    def set_thermal_cap_index(self, index: Optional[int]) -> None:
        """Cap the DVFS ladder at step ``index`` (``None`` lifts the cap).

        The cap models a thermal governor: whatever frequency the cpufreq
        governor requests is clamped to the cap, and the current operating
        point is pulled down immediately when the cap tightens.
        """
        if index is not None:
            index = max(0, min(index, len(self.spec.freqs_mhz) - 1))
        self._thermal_cap_index = index
        # Re-apply the governor's last request so the operating point both
        # drops when a cap tightens and recovers when it lifts (static
        # governors never re-sample, so recovery must happen here).
        self.set_freq_index(self._requested_index)

    def set_freq_index(self, index: int) -> None:
        """Pin the cluster to ladder step ``index`` (clamped)."""
        index = max(0, min(index, len(self.spec.freqs_mhz) - 1))
        self._requested_index = index
        if self._thermal_cap_index is not None:
            index = min(index, self._thermal_cap_index)
        if index != self._freq_index:
            self._account()
            self._freq_index = index
            self._m_transitions.inc()
            self._tracer.instant(
                "device.dvfs.step", "device",
                args={"cluster": self.spec.name, "mhz": self.freq_mhz},
            )
            self._notify()

    def set_freq_mhz(self, mhz: float) -> None:
        """Pin the cluster to the smallest ladder step ≥ ``mhz``."""
        for index, step in enumerate(self.spec.freqs_mhz):
            if step >= mhz:
                self.set_freq_index(index)
                return
        self.set_freq_index(len(self.spec.freqs_mhz) - 1)

    def _account(self) -> None:
        now = self.env.now
        self._busy_time += self._busy * (now - self._last_change)
        self._last_change = now

    def mark_busy(self, delta: int) -> None:
        """Adjust the busy-core count (called by the task executor)."""
        self._account()
        self._busy += delta
        if self._busy < 0:
            raise RuntimeError("busy core count went negative")
        self._notify()

    def busy_time(self) -> float:
        """Total integrated core-busy seconds since creation."""
        self._account()
        return self._busy_time

    def utilization_since(self, busy_snapshot: float, t_snapshot: float) -> float:
        """Busiest-core utilization in [0, 1] since a prior snapshot.

        cpufreq governors act on the most-loaded CPU of the policy, so the
        estimate assumes the busiest core absorbs as much of the integrated
        busy time as fits in the window.  Exact for the 1–2-thread loads
        that dominate this reproduction.
        """
        window = self.env.now - t_snapshot
        if window <= 0 or self.online_cores == 0:
            return 0.0
        used = self.busy_time() - busy_snapshot
        return min(1.0, used / window)


class CpuTask:
    """Handle for a running task; the ``done`` event fires at completion."""

    def __init__(self, process: Process):
        self.done: Event = process
        self._process = process

    @property
    def finished(self) -> bool:
        return not self._process.is_alive


class CPU:
    """A multi-core, possibly heterogeneous (big.LITTLE) CPU.

    ``clusters`` are ordered little → big; foreground tasks prefer the
    biggest cluster with a free core, which mirrors Android's scheduler
    steering interactive threads to big cores.
    """

    def __init__(
        self,
        env: Environment,
        clusters: Iterable[ClusterSpec],
        quantum: float = DEFAULT_QUANTUM,
        online_cores: Optional[int] = None,
    ):
        self.env = env
        specs = list(clusters)
        if not specs:
            raise ValueError("CPU needs at least one cluster")
        total = sum(spec.n_cores for spec in specs)
        if online_cores is None:
            online_cores = total
        if not 1 <= online_cores <= total:
            raise ValueError(f"online_cores must lie in [1, {total}]")
        self.quantum = quantum
        self.clusters: list[Cluster] = []
        remaining = online_cores
        # Bring big cores online first (hot-unplug removes little cores last
        # on most Android boards; for our purposes the choice only needs to
        # be deterministic and keep the fastest core available).
        counts: list[int] = []
        for spec in reversed(specs):
            take = min(spec.n_cores, remaining)
            counts.append(take)
            remaining -= take
        for spec, count in zip(specs, reversed(counts)):
            self.clusters.append(Cluster(env, spec, count))
        self._cycle_multiplier = 1.0
        self._tracer = tracer_of(env)

    @property
    def online_cores(self) -> int:
        """Total cores currently online across clusters."""
        return sum(cluster.online_cores for cluster in self.clusters)

    @property
    def max_rate_hz(self) -> float:
        """Best single-core instruction rate at the ladder top."""
        return max(
            cluster.spec.max_mhz * MHZ * cluster.spec.ipc
            for cluster in self.clusters
        )

    def set_cycle_multiplier(self, factor: float) -> None:
        """Inflate all task cycle counts by ``factor`` (memory pressure)."""
        if factor < 1.0:
            raise ValueError("cycle multiplier cannot deflate work")
        self._cycle_multiplier = factor

    def set_thermal_cap_fraction(self, fraction: Optional[float]) -> None:
        """Cap every cluster's ladder at ``fraction`` of its top frequency.

        ``None`` (or 1.0) lifts the cap.  The cap index is the highest
        ladder step at or below ``fraction × max_mhz`` (at least the bottom
        step, so a tiny fraction pins the ladder floor rather than going
        offline).
        """
        if fraction is None:
            for cluster in self.clusters:
                cluster.set_thermal_cap_index(None)
            return
        if not 0 < fraction <= 1:
            raise ValueError(f"cap fraction must lie in (0, 1], got {fraction!r}")
        for cluster in self.clusters:
            threshold = fraction * cluster.spec.max_mhz
            cap = 0
            for index, step in enumerate(cluster.spec.freqs_mhz):
                if step <= threshold:
                    cap = index
            cluster.set_thermal_cap_index(cap if fraction < 1.0 else None)

    def set_all_freq_index(self, index: int) -> None:
        for cluster in self.clusters:
            cluster.set_freq_index(index)

    def set_all_freq_mhz(self, mhz: float) -> None:
        for cluster in self.clusters:
            cluster.set_freq_mhz(mhz)

    def _pick_cluster(self) -> Cluster:
        """Cluster whose pool a new task should join.

        Prefer the fastest cluster with an idle core; fall back to the
        fastest cluster overall (its FIFO queue) when everything is busy.
        """
        candidates = [c for c in self.clusters if c.online_cores > 0]
        for cluster in sorted(candidates, key=lambda c: -c.rate_hz):
            if cluster.pool.count < cluster.pool.capacity:
                return cluster
        return max(candidates, key=lambda c: c.rate_hz)

    def submit(self, cycles: float, mem_stall: float = 0.0) -> CpuTask:
        """Run ``cycles`` of work; returns a handle whose ``done`` fires.

        ``mem_stall`` is frequency-independent stall time (DRAM-bound work)
        added on top of the cycle-derived execution time.
        """
        if cycles < 0 or mem_stall < 0:
            raise ValueError("work must be non-negative")
        return CpuTask(self.env.process(self._execute(cycles, mem_stall)))

    def run(self, cycles: float, mem_stall: float = 0.0):
        """Generator form of :meth:`submit`, for use inside processes."""
        return self._execute(cycles, mem_stall)

    # Work below one cycle / one nanosecond of stall is considered done —
    # guards against floating-point residue spinning the quantum loop.
    _MIN_CYCLES = 1.0
    _MIN_STALL = 1e-9

    def _execute(self, cycles: float, mem_stall: float):
        # Highest-rate obs hook in the codebase: the span carries no args,
        # so the disabled path is one no-op call with no allocation.
        with self._tracer.span("device.cpu.task", "device"):
            remaining = cycles * self._cycle_multiplier
            stall_left = mem_stall
            while (remaining >= self._MIN_CYCLES
                   or stall_left >= self._MIN_STALL):
                cluster = self._pick_cluster()
                with cluster.pool.request() as grant:
                    yield grant
                    cluster.mark_busy(+1)
                    try:
                        while (remaining >= self._MIN_CYCLES
                               or stall_left >= self._MIN_STALL):
                            rate = cluster.rate_hz
                            compute_left = remaining / rate
                            slice_time = min(self.quantum,
                                             compute_left + stall_left)
                            yield self.env.timeout(slice_time)
                            stall_used = min(stall_left, slice_time)
                            stall_left -= stall_used
                            remaining = max(
                                0.0,
                                remaining - (slice_time - stall_used) * rate
                            )
                            if (cluster.pool.queue
                                    and remaining >= self._MIN_CYCLES):
                                break  # yield the core to a waiter, requeue
                    finally:
                        cluster.mark_busy(-1)

    def busy_time(self) -> float:
        """Integrated core-busy seconds across all clusters."""
        return sum(cluster.busy_time() for cluster in self.clusters)


__all__ = ["CPU", "Cluster", "ClusterSpec", "CpuTask", "DEFAULT_QUANTUM", "MHZ"]
