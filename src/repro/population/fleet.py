"""Fleet execution: thousands of sampled sessions, one streaming pass.

:class:`FleetRunner` mirrors :class:`~repro.core.experiments.
RobustTrialRunner` semantics — runlog ``run_start`` / ``trial_complete``
/ ``run_end`` events, the same crash/timeout/deadlock/error taxonomy,
supervised-executor quarantine folding, and content-addressed caching of
per-session results — but folds everything into a
:class:`~repro.population.aggregate.FleetAggregator` instead of keeping
records, so memory stays O(buckets) at any session count.

Determinism across worker counts: the cache hit/miss partition is fixed
by the store's contents, not by ``--jobs``, so the canonical fold order
is (1) hits in session-index order, then (2) executed sessions in
pending order — restored from the executor's arbitrary completion order
by a reorder buffer bounded by the supervisor's in-flight window.  Same
seed + same cache state → byte-identical aggregate JSON for any worker
count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cache import (
    KIND_PICKLE,
    TrialCache,
    TrialKeyer,
    decode_result,
    encode_result,
    resolve_cache,
)
from repro.core.background import BackgroundLoad, make_rng
from repro.core.experiments import (
    TRIAL_CRASH,
    TRIAL_DEADLOCK,
    TRIAL_ERROR,
    TRIAL_OK,
    TRIAL_TIMEOUT,
)
from repro.device import Device
from repro.netstack import Link
from repro.obs.export import histogram_quantile
from repro.obs.runlog import AnyRunLog, NULL_RUNLOG, RUNLOG_VERSION, RunLog
from repro.parallel import (
    Executor,
    QuarantinedTask,
    SerialExecutor,
    SupervisionReport,
    TASK_HANG,
    WORKER_CRASH,
)
from repro.population.aggregate import ALL_TIER, FleetAggregator
from repro.population.config import PopulationConfig, SessionSampler, SessionSpec
from repro.rtc import CallConfig, VideoCall
from repro.sim import Environment, Interrupt, SimDeadlock, StepBudgetExceeded
from repro.video import StreamingPlayer, VideoSpec
from repro.web import BrowserEngine
from repro.workloads import generate_corpus
from repro.workloads.pages import PageSpec
from repro.workloads.regexcorpus import RegexWorkloadFactory

#: Aggregate JSON schema version (``FleetReport.to_json``).
AGGREGATE_VERSION = 1


@dataclass(frozen=True)
class SessionResult:
    """Outcome of one simulated session (the only thing workers return)."""

    index: int
    tier: str
    workload: str
    network: str
    status: str
    metrics: Dict[str, float]
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == TRIAL_OK


def _simulate(config: PopulationConfig, corpus: Tuple[PageSpec, ...],
              spec: SessionSpec) -> Dict[str, float]:
    """Run one session on a fresh simulated device; returns its QoE metrics."""
    env = Environment()
    device = Device(env, spec.device, governor="OD")
    if config.background_jitter:
        BackgroundLoad(env, device, make_rng(spec.seed))
    link = Link(env, spec.link)
    if spec.workload == "web":
        browser = BrowserEngine(env, device, link)
        result = env.run(env.process(browser.load(corpus[spec.page_index])))
        return {"plt_s": result.plt}
    if spec.workload == "video":
        player = StreamingPlayer(env, device, link,
                                 VideoSpec(duration_s=config.video_s))
        stream = env.run(env.process(player.run()))
        return {"startup_s": stream.startup_latency_s,
                "stall_ratio": stream.stall_ratio}
    call = VideoCall(env, device, link,
                     CallConfig(call_duration_s=config.call_s))
    outcome = env.run(env.process(call.run()))
    return {"setup_delay_s": outcome.setup_delay_s,
            "frame_rate_fps": outcome.frame_rate}


def run_session(config: PopulationConfig, corpus: Tuple[PageSpec, ...],
                spec: SessionSpec) -> SessionResult:
    """One session under the trial failure taxonomy — never raises."""
    status = TRIAL_OK
    metrics: Dict[str, float] = {}
    error = ""
    try:
        metrics = _simulate(config, corpus, spec)
    except Interrupt as fault:
        status, error = TRIAL_CRASH, f"interrupted: {fault.cause!r}"
    except SimDeadlock as deadlock:
        status, error = TRIAL_DEADLOCK, str(deadlock)
    except StepBudgetExceeded as budget:
        status, error = TRIAL_TIMEOUT, str(budget)
    except Exception as exc:  # noqa: BLE001 - taxonomy boundary
        status, error = TRIAL_ERROR, f"{type(exc).__name__}: {exc}"
    return SessionResult(index=spec.index, tier=spec.tier,
                         workload=spec.workload, network=spec.network,
                         status=status, metrics=metrics, error=error)


@dataclass(frozen=True)
class _SessionTask:
    """Picklable unit of work: sample session ``index`` and simulate it.

    Carries the runner whole, like :class:`~repro.core.experiments.
    _TrialTask`: pickling it ships only configuration and the page
    corpus (the runlog reduces to the null object, executors carry no
    live pool state), and the worker re-derives everything else from
    the session index.
    """

    runner: "FleetRunner"

    def __call__(self, index: int) -> SessionResult:
        runner = self.runner
        spec = SessionSampler(runner.config).sample(index)
        return run_session(runner.config, runner.corpus, spec)


@dataclass
class FleetReport:
    """Aggregated outcome of one fleet run (no per-session state)."""

    config: PopulationConfig
    aggregate: dict
    quarantined: int = 0
    supervision: Optional[SupervisionReport] = None

    @property
    def experiment(self) -> str:
        return self.config.experiment

    @property
    def sessions(self) -> int:
        return int(self.aggregate.get("sessions", 0))

    @property
    def completed(self) -> int:
        return int(self.aggregate.get("completed", 0))

    @property
    def failures(self) -> Dict[str, int]:
        return dict(self.aggregate.get("failures", {}))

    def series(self, workload: str, metric: str) -> Dict[str, dict]:
        """Per-tier entries for one metric (empty when none observed)."""
        return dict(self.aggregate.get("series", {})
                    .get(workload, {}).get(metric, {}))

    def quantile(self, workload: str, metric: str, q: float,
                 tier: str = ALL_TIER) -> float:
        """Bucket-resolution quantile of one tier's metric distribution."""
        entry = self.series(workload, metric).get(tier)
        if entry is None:
            return 0.0
        return histogram_quantile(entry["hist"], q)

    def cdf(self, workload: str, metric: str,
            tier: str = ALL_TIER) -> List[Tuple[float, float]]:
        """Bucket-bound CDF points ``(bound, P(value <= bound))``.

        Covers the finite bucket bounds; mass beyond the last bound (the
        ``+Inf`` overflow bucket) keeps the final probability below 1.
        """
        entry = self.series(workload, metric).get(tier)
        if entry is None:
            return []
        hist = entry["hist"]
        count = hist.get("count", 0)
        if count <= 0:
            return []
        finite = sorted(
            (float(label), n)
            for label, n in hist.get("buckets", {}).items()
            if label != "+Inf"
        )
        points: List[Tuple[float, float]] = []
        cumulative = 0
        for bound, n in finite:
            cumulative += n
            points.append((bound, cumulative / count))
        return points

    def to_json(self) -> str:
        """Canonical aggregate JSON — byte-identical across worker counts."""
        import json

        return json.dumps(
            {
                "aggregate_version": AGGREGATE_VERSION,
                "experiment": self.experiment,
                "seed": self.config.seed,
                "sessions": self.config.sessions,
                "aggregate": self.aggregate,
            },
            sort_keys=True, separators=(",", ": "), indent=1,
        ) + "\n"


class FleetRunner:
    """Samples, dispatches, and streams a whole fleet into one aggregate.

    Same wiring discipline as :class:`~repro.core.experiments.
    RobustTrialRunner`: the runlog and cache are taken from the
    constructor or the executor's attachments; only the parent process
    touches either.
    """

    def __init__(self, config: PopulationConfig,
                 executor: Optional[Executor] = None,
                 runlog: Optional[RunLog] = None,
                 cache: Optional[TrialCache] = None):
        self.config = config
        self.executor = executor or SerialExecutor()
        self.runlog = runlog
        self.cache = cache
        # Built once in the parent and shipped inside the pickled task, so
        # every worker loads the identical pages.
        self.corpus: Tuple[PageSpec, ...] = tuple(generate_corpus(
            config.n_pages, factory=RegexWorkloadFactory()))

    def cache_params(self) -> dict:
        """The facets a session result depends on (the cache-key protocol).

        The executor, runlog, and cache are infrastructure — which of
        them ran a session must never change its key.
        """
        return {"config": self.config, "corpus": self.corpus}

    def _resolve_runlog(self) -> AnyRunLog:
        if self.runlog is not None:
            return self.runlog
        attached = getattr(self.executor, "runlog", None)
        return NULL_RUNLOG if attached is None else attached

    def run(self) -> FleetReport:
        """Execute every session; returns the streamed aggregate."""
        config = self.config
        experiment = config.experiment
        runlog = self._resolve_runlog()
        sampler = SessionSampler(config)
        task = _SessionTask(runner=self)
        aggregator = FleetAggregator()
        quarantined = 0
        keyer = TrialKeyer.create(
            resolve_cache(self.cache, self.executor), task,
            experiment=experiment)

        def fold(result: SessionResult) -> None:
            aggregator.observe(tier=result.tier, workload=result.workload,
                               network=result.network, status=result.status,
                               metrics=result.metrics)
            runlog.emit("trial_complete", trial=result.index,
                        status=result.status, tier=result.tier,
                        workload=result.workload)

        runlog.emit("run_start", experiment=experiment,
                    trials=config.sessions, pending=config.sessions,
                    resumed=0, runlog_version=RUNLOG_VERSION,
                    config={"jobs": getattr(self.executor, "jobs", 1),
                            "seed": config.seed})
        # Phase 1: replay cache hits in index order.  The partition is a
        # function of the store's contents alone, so it is identical for
        # every worker count.
        pending: List[int] = []
        keys: Dict[int, str] = {}
        for index in range(config.sessions):
            result = self._cached_result(keyer, index, runlog, keys)
            if result is None:
                pending.append(index)
            else:
                fold(result)
        # Phase 2: dispatch the misses; fold strictly in pending order via
        # a reorder buffer.  The buffer holds at most the supervisor's
        # in-flight window (O(jobs)), preserving O(buckets) peak state.
        buffer: Dict[int, SessionResult] = {}
        next_fold = 0
        for sub_index, outcome in self.executor.run_tasks(task, pending):
            index = pending[sub_index]
            if isinstance(outcome, QuarantinedTask):
                result = self._quarantined_result(sampler, index, outcome)
                quarantined += 1
            else:
                result = outcome
                self._store_result(keyer, result, keys, runlog)
            buffer[sub_index] = result
            while next_fold in buffer:
                fold(buffer.pop(next_fold))
                next_fold += 1
        runlog.emit("run_end", completed=aggregator.completed,
                    failures=sum(aggregator.failures.values()),
                    quarantined=quarantined)
        return FleetReport(
            config=config,
            aggregate=aggregator.snapshot(),
            quarantined=quarantined,
            supervision=getattr(self.executor, "last_supervision", None),
        )

    # -- result cache ------------------------------------------------------

    def _cached_result(self, keyer: Optional[TrialKeyer], index: int,
                       runlog: AnyRunLog,
                       keys: Dict[int, str]) -> Optional[SessionResult]:
        """The stored result for one session, or ``None`` to execute it."""
        if keyer is None:
            return None
        key = keyer.key(index, index)
        if key is None:
            return None
        keys[index] = key
        entry = keyer.cache.get(key)
        if entry is not None and entry.get("kind") == KIND_PICKLE:
            try:
                result = decode_result(entry["payload"])
            except Exception:
                result = None
            if isinstance(result, SessionResult) and result.index == index:
                runlog.emit("cache_hit", experiment=self.config.experiment,
                            index=index, key=key)
                return result
            # Torn or stale payload: re-book the optimistic hit as a miss.
            keyer.cache.stats.hits -= 1
            keyer.cache.stats.misses += 1
        elif entry is not None:
            keyer.cache.stats.hits -= 1
            keyer.cache.stats.misses += 1
        runlog.emit("cache_miss", experiment=self.config.experiment,
                    index=index, key=key)
        return None

    def _store_result(self, keyer: Optional[TrialKeyer],
                      result: SessionResult, keys: Dict[int, str],
                      runlog: AnyRunLog) -> None:
        """Store one executed session (ok only — failures re-run cheaply)."""
        if keyer is None or not result.ok:
            return
        key = keys.get(result.index)
        if key is None:
            return
        keyer.cache.put(key, experiment=self.config.experiment,
                        trial=result.index, kind=KIND_PICKLE,
                        payload=encode_result(result),
                        fingerprint=keyer.fingerprint)
        runlog.emit("cache_store", experiment=self.config.experiment,
                    index=result.index, key=key)

    def _quarantined_result(self, sampler: SessionSampler, index: int,
                            quarantined: QuarantinedTask) -> SessionResult:
        """Classify a supervisor-quarantined session into the taxonomy.

        The session's composition is re-sampled in the parent (cheap and
        deterministic) so mix counts stay complete even though the
        worker never reported back.
        """
        spec = sampler.sample(index)
        status = {
            WORKER_CRASH: TRIAL_CRASH,
            TASK_HANG: TRIAL_TIMEOUT,
        }.get(quarantined.kind, TRIAL_ERROR)
        return SessionResult(
            index=index, tier=spec.tier, workload=spec.workload,
            network=spec.network, status=status, metrics={},
            error=(f"quarantined after {quarantined.attempts} faulted "
                   f"dispatches ({quarantined.kind}): {quarantined.error}"),
        )


__all__ = [
    "AGGREGATE_VERSION",
    "FleetReport",
    "FleetRunner",
    "SessionResult",
    "run_session",
]
