"""Skype-like call quality adaptation.

The paper observes (§3.3) that Skype's ABR is aggressive: it lowers the
*call video quality* when the software perceives poor throughput — and a
slow CPU looks exactly like poor throughput to it.  The model captures
that with a capability probe at call setup: the client estimates the
achievable frame rate per format from its current CPU speed and picks the
highest format whose estimate clears a floor, so slow clocks negotiate
low-resolution video (as the paper reports) yet still run below the
30 fps target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.device import Device


@dataclass(frozen=True)
class RtcFormat:
    """One call video format (each direction)."""

    name: str
    width: int
    height: int
    bitrate_bps: float

    @property
    def pixels(self) -> int:
        return self.width * self.height


#: Call ladder; 360p is Skype's video floor.
RTC_LADDER = (
    RtcFormat("360p", 640, 360, 0.5e6),
    RtcFormat("480p", 854, 480, 0.9e6),
    RtcFormat("720p", 1280, 720, 1.8e6),
)

#: Reference pixel count (720p) for the pipeline cost scale.
_REF_PIXELS = 1280 * 720


@dataclass(frozen=True)
class RtcCostModel:
    """Per-direction, per-frame CPU cost of the media pipeline.

    ``sw_encode_ops_per_pixel`` applies on phones whose codec block is not
    usable from the app (vendor OMX integration gaps on low-end chipsets
    force software encoding — the classic Skype-on-cheap-Android path).
    """

    base_ops: float = 18e6
    pixel_ops: float = 30e6  # scaled by pixels/REF_PIXELS
    sw_encode_ops_per_pixel: float = 70.0

    def direction_ops(self, fmt: RtcFormat, sw_encode: bool) -> float:
        ops = self.base_ops + self.pixel_ops * fmt.pixels / _REF_PIXELS
        if sw_encode:
            ops += self.sw_encode_ops_per_pixel * fmt.pixels
        return ops


class SkypeLikeAbr:
    """Capability probe: pick the best format the CPU can sustain."""

    def __init__(self, cost: RtcCostModel = RtcCostModel(),
                 min_estimated_fps: float = 15.0,
                 target_fps: float = 30.0,
                 ladder: Sequence[RtcFormat] = RTC_LADDER):
        self.cost = cost
        self.min_estimated_fps = min_estimated_fps
        self.target_fps = target_fps
        self.ladder = tuple(sorted(ladder, key=lambda f: f.pixels))

    def needs_sw_encode(self, device: Device) -> bool:
        codec = device.accelerators.codec
        return codec is None or not codec.rtc_usable

    def estimate_fps(self, device: Device, fmt: RtcFormat) -> float:
        """Frame rate the send pipeline sustains at the current clock."""
        ops = self.cost.direction_ops(fmt, self.needs_sw_encode(device))
        return min(self.target_fps * 2, device.current_rate_hz / ops)

    def select(self, device: Device) -> RtcFormat:
        """Highest format within the display and the capability floor."""
        choice = self.ladder[0]
        for fmt in self.ladder:
            if fmt.height > device.spec.display_height:
                continue
            if self.estimate_fps(device, fmt) >= self.min_estimated_fps:
                choice = fmt
        return choice


__all__ = ["RTC_LADDER", "RtcCostModel", "RtcFormat", "SkypeLikeAbr"]
