"""Plain-text rendering of tables and figure series.

The benchmark harness prints every reproduced table/figure as text so the
"rows/series the paper reports" are visible in CI logs without plotting
dependencies.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a header rule."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def ascii_bars(labels: Sequence[str], values: Sequence[float],
               width: int = 40, unit: str = "") -> str:
    """Horizontal bar chart (one figure panel) in plain text."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max(values) if values else 1.0
    peak = peak or 1.0
    label_width = max((len(l) for l in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(f"{label.rjust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def ascii_series(points: Mapping[str, Sequence[tuple[float, float]]],
                 width: int = 40) -> str:
    """Multiple (x, y) series as aligned columns (figure line plots)."""
    lines = []
    for name, series in points.items():
        lines.append(f"series: {name}")
        peak = max((y for _, y in series), default=1.0) or 1.0
        for x, y in series:
            bar = "#" * max(1, round(width * y / peak)) if y > 0 else ""
            lines.append(f"  {x:>10.6g} | {bar} {y:.3f}")
    return "\n".join(lines)


__all__ = ["ascii_bars", "ascii_series", "render_table"]
