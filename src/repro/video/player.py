"""The streaming player: prefetching downloader + decode/post pipeline.

Architecture (Android media framework at model granularity):

* a **downloader** process streams segments over one persistent TCP
  connection, pausing when the buffer holds ``read_ahead_s`` (YouTube's
  120 s) of content — §3.2's reason why slow clocks never stall playback;
* a **playback** process consumes one second of content per tick: the
  hardware codec decodes (CPU-free, throughput-capped), while CPU
  post-processing (demux, audio decode, color convert, compositing) is
  split across ``min(cores, 4)`` worker tasks — the thread-level
  parallelism the paper credits for video's resilience;
* start-up covers app/player initialization (partly parallel), the
  manifest fetch, ABR selection, decoder bring-up, and the initial buffer.

Single-core penalty: with one online core the pipeline's concurrency
assumptions break (MediaCodec callbacks, render thread, downloader all
time-share one CPU), which shows up in the paper as +4 s start-up and a
~15 % stall ratio (Fig 4c).  Throughput arithmetic alone cannot produce
that — a single core at max clock has more per-core headroom than four
cores at 384 MHz, yet only the former stalls — so the scheduling thrash
is modelled explicitly as calibrated contention multipliers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.device import Device
from repro.netstack import HostStack, Link, TcpConnection
from repro.obs import metrics_of, tracer_of
from repro.sim import Container, Environment
from repro.video.abr import DeviceAwareAbr
from repro.video.spec import Format, VideoSpec


@dataclass(frozen=True)
class PlayerConfig:
    """Player tunables (defaults calibrated to Figs 2b/4)."""

    read_ahead_s: float = 120.0
    startup_buffer_s: float = 1.0
    rebuffer_target_s: float = 5.0
    #: App/player init: serial part and a part parallel over ≤3 workers.
    init_serial_ops: float = 1.2e9
    init_parallel_ops: float = 2.0e9
    #: Per-second-of-content CPU post-processing: fixed + per-pixel parts.
    postproc_base_ops: float = 0.60e9
    postproc_pixel_ops: float = 36.2  # per (pixel/frame × fps) per second
    #: Share of post-processing that cannot be parallelized (compositor).
    serial_share: float = 0.26
    #: Single-core scheduling-thrash multipliers (see module docstring).
    single_core_init_factor: float = 2.5
    single_core_pipeline_factor: float = 1.55

    def postproc_ops(self, fmt: Format) -> float:
        """CPU ops to post-process one second of content."""
        return (self.postproc_base_ops
                + self.postproc_pixel_ops * fmt.pixels_per_frame * fmt.fps)


@dataclass
class StreamingResult:
    """QoE outcome of one streaming session (§2.1 metrics)."""

    format: Format
    startup_latency_s: float = 0.0
    stall_time_s: float = 0.0
    playback_wall_s: float = 0.0
    content_played_s: float = 0.0
    bytes_downloaded: float = 0.0
    buffer_full_at_s: Optional[float] = None
    energy_j: float = 0.0

    @property
    def stall_ratio(self) -> float:
        """Stall time as a fraction of total playback wall time."""
        if self.playback_wall_s <= 0:
            return 0.0
        return min(self.stall_time_s / self.playback_wall_s, 1.0)


class StreamingPlayer:
    """Streams one clip on one device over the simulated LAN."""

    def __init__(
        self,
        env: Environment,
        device: Device,
        link: Link,
        video: VideoSpec = VideoSpec(),
        config: PlayerConfig = PlayerConfig(),
        abr: Optional[DeviceAwareAbr] = None,
        stack: Optional[HostStack] = None,
    ):
        self.env = env
        self.device = device
        self.link = link
        self.video = video
        self.config = config
        self.abr = abr or DeviceAwareAbr()
        self.stack = stack or HostStack(env, device)
        self._buffer = Container(env, capacity=config.read_ahead_s + video.segment_s)
        self._download_done = False
        self._tracer = tracer_of(env)
        metrics = metrics_of(env)
        self._m_stalls = metrics.counter("video.stalls")
        self._m_stall_s = metrics.counter("video.stall_s")
        self._m_segments = metrics.counter("video.segments")
        self._m_buffer = metrics.gauge("video.buffer_s")

    # -- internals -------------------------------------------------------

    @property
    def _single_core(self) -> bool:
        return self.device.cpu.online_cores == 1

    def _downloader(self, conn: TcpConnection, fmt: Format,
                    result: StreamingResult):
        """Process: fetch segments, honoring the read-ahead horizon."""
        seg_bytes = fmt.bytes_per_second * self.video.segment_s
        remaining = self.video.n_segments
        first = True
        while remaining > 0:
            if self._buffer.level > self.config.read_ahead_s:
                if result.buffer_full_at_s is None:
                    result.buffer_full_at_s = self.env.now
                yield self.env.timeout(self.video.segment_s / 2)
                continue
            # Range request on the persistent connection.
            yield from conn.send(300)
            yield from conn.receive(seg_bytes, first_byte_latency=first)
            first = False
            result.bytes_downloaded += seg_bytes
            yield self._buffer.put(self.video.segment_s)
            self._m_segments.inc()
            self._m_buffer.set(self._buffer.level)
            remaining -= 1
        self._download_done = True

    def _init_app(self):
        """Process: app/player initialization (serial + parallel parts)."""
        factor = (self.config.single_core_init_factor
                  if self._single_core else 1.0)
        workers = min(self.device.cpu.online_cores, 3)
        yield from self.device.run(self.config.init_serial_ops * factor)
        chunk = self.config.init_parallel_ops * factor / workers
        tasks = [self.device.submit(chunk) for _ in range(workers)]
        yield self.env.all_of([t.done for t in tasks])

    def _tick(self, fmt: Format):
        """Process: decode and post-process one second of content."""
        config = self.config
        factor = (config.single_core_pipeline_factor
                  if self._single_core else 1.0)
        total = config.postproc_ops(fmt) * factor
        serial_ops = total * config.serial_share
        parallel_ops = total - serial_ops
        workers = min(self.device.cpu.online_cores, 4)
        tasks = [self.device.submit(serial_ops)]
        tasks += [self.device.submit(parallel_ops / workers)
                  for _ in range(workers)]
        codec = self.device.accelerators.codec
        done = [t.done for t in tasks]
        if codec is not None:
            decode_s = codec.decode_time(fmt.width, fmt.height, int(fmt.fps))
            done.append(self.env.timeout(decode_s))
        else:
            # No hardware codec: software decode on the CPU (expensive).
            sw = self.device.submit(60.0 * fmt.pixels_per_frame * fmt.fps / 30.0)
            done.append(sw.done)
        yield self.env.all_of(done)

    # -- session ------------------------------------------------------------

    def run(self):
        """Process: play the whole clip; returns a :class:`StreamingResult`."""
        env = self.env
        config = self.config
        session_start = env.now
        fmt = self.abr.select(self.device)
        self._tracer.instant(
            "video.abr.select", "video",
            args={"format": fmt.name, "bitrate_bps": fmt.bitrate_bps},
        )
        result = StreamingResult(format=fmt)
        working_set = (0.28
                       + config.read_ahead_s * fmt.bytes_per_second * 1.2e-9
                       + 0.08)
        self.device.set_working_set(working_set)

        # App start + manifest + decoder bring-up.
        init_done = env.process(self._init_app())
        conn = TcpConnection(env, self.link, self.stack, tls=True)
        yield from conn.connect()
        yield from conn.request(400, self.video.manifest_bytes)
        yield init_done
        codec = self.device.accelerators.codec
        if codec is not None:
            yield env.timeout(codec.init_time_s)

        env.process(self._downloader(conn, fmt, result))
        # Wait for the initial buffer, then show the first frame.
        yield self._buffer.get(config.startup_buffer_s)
        yield from self._tick(fmt)
        result.startup_latency_s = env.now
        playback_started = env.now
        self._tracer.complete("video.startup", "video", session_start)

        content_left = self.video.duration_s - config.startup_buffer_s - 1.0
        while content_left > 0:
            step = min(1.0, content_left)
            before = env.now
            yield self._buffer.get(step)
            waited = env.now - before
            if waited > 1e-9:
                # Buffer ran dry: the wait is a rebuffering interval.
                self._m_stalls.inc()
                self._m_stall_s.inc(waited)
                self._tracer.complete("video.rebuffer", "video", before,
                                      args={"waited_s": waited})
            self._m_buffer.set(self._buffer.level)
            yield from self._tick(fmt)
            # Wall time beyond the content consumed is a stall: either the
            # buffer ran dry (waited) or the pipeline fell behind realtime.
            elapsed = env.now - before
            result.stall_time_s += max(elapsed - step, 0.0)
            result.content_played_s += step
            content_left -= step
            # Pace playback: a faster-than-realtime pipeline still displays
            # at 1× speed.
            if elapsed < step:
                yield env.timeout(step - elapsed)
        result.playback_wall_s = env.now - playback_started
        result.energy_j = self.device.energy.energy_j
        return result


__all__ = ["PlayerConfig", "StreamingPlayer", "StreamingResult"]
