"""§3.1: news/sports pages are the most clock-sensitive categories."""

from repro.analysis import ascii_bars
from repro.core.studies import WebStudy, WebStudyConfig


def run_categories():
    study = WebStudy(WebStudyConfig(n_pages=10, trials=1))
    return study.category_clock_sensitivity()


def test_sec31_categories(benchmark, fig_printer):
    sensitivity = benchmark.pedantic(run_categories, rounds=1, iterations=1)
    body = ascii_bars(list(sensitivity), list(sensitivity.values()), unit="x")
    fig_printer("Sec 3.1: PLT slowdown (384 vs 1512 MHz) by page category",
                body)
    assert sensitivity["news"] > sensitivity["business"]
    assert sensitivity["sports"] > sensitivity["health"]
    assert max(sensitivity.values()) > 2.8
