"""Background OS activity: the jitter source behind the paper's error bars.

Android services, sync adapters, and kernel housekeeping steal CPU in
short bursts.  On a fast phone a 20 M-op burst is invisible (<4 ms); on an
Intex it is ~30 ms and occasionally lands on the core running the
browser's main thread — which is why the paper's low-end PLT standard
deviation (>3 s) dwarfs the Pixel2's.

Each trial seeds its own :class:`random.Random`, making runs repeatable
while still spreading across trials.
"""

from __future__ import annotations

import random

from repro.device import Device
from repro.sim import Environment


def make_rng(seed: int) -> random.Random:
    """The single audited construction point for study RNGs.

    Every study routes its per-trial randomness through here so seed
    plumbing stays greppable and lintable (simlint DET005 flags inline
    ``random.Random(...)`` construction inside ``core/studies/``).
    """
    return random.Random(seed)


class BackgroundLoad:
    """Periodic CPU bursts from OS services."""

    def __init__(
        self,
        env: Environment,
        device: Device,
        rng: random.Random,
        mean_interval_s: float = 0.8,
        burst_ops_range: tuple[float, float] = (8e6, 60e6),
    ):
        if mean_interval_s <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.device = device
        self.rng = rng
        self.mean_interval_s = mean_interval_s
        self.burst_ops_range = burst_ops_range
        self.bursts = 0
        env.process(self._run())

    def _run(self):
        low, high = self.burst_ops_range
        while True:
            yield self.env.timeout(self.rng.expovariate(1.0 / self.mean_interval_s))
            self.device.submit(self.rng.uniform(low, high))
            self.bursts += 1


__all__ = ["BackgroundLoad", "make_rng"]
