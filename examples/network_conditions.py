#!/usr/bin/env python3
"""§6 future work: when does the device stop being the bottleneck?

The paper fixes a fast LAN so device effects dominate, and closes by
asking about the *joint* impact of network conditions and device
parameters.  This example runs that study: a bandwidth × clock grid for
Web page loads, plus the TLS tax at each clock.

Run:  python examples/network_conditions.py
"""

from repro.analysis import render_table
from repro.core.studies import joint_network_device_grid, tls_overhead


def main() -> None:
    print("Bandwidth x clock grid (Nexus4, Web PLT):\n")
    grid = joint_network_device_grid(
        bandwidths_mbps=(2.0, 8.0, 48.5),
        clocks_mhz=(384, 810, 1512),
        n_pages=4,
    )
    rows = [
        [f"{p.bandwidth_mbps:g}", p.clock_mhz, f"{p.plt.mean:5.2f}",
         f"{p.compute_time:4.2f}", f"{p.network_time:4.2f}",
         "device" if p.device_bound else "network"]
        for p in grid
    ]
    print(render_table(
        ["Mbps", "MHz", "PLT (s)", "CP compute", "CP network", "bound by"],
        rows,
    ))

    by_cell = {(p.bandwidth_mbps, p.clock_mhz): p.plt.mean for p in grid}
    fast_link_gain = by_cell[(48.5, 384)] / by_cell[(48.5, 1512)]
    slow_link_gain = by_cell[(2.0, 384)] / by_cell[(2.0, 1512)]
    print(f"\nA 4x clock upgrade buys {fast_link_gain:.1f}x on the testbed "
          f"LAN but only {slow_link_gain:.1f}x on a 2 Mbps path —")
    print("the paper's device-centric findings assume the network is not "
          "the bottleneck, and the grid shows exactly where that holds.")

    print("\nTLS tax per clock (Nexus4):\n")
    tls = tls_overhead(clocks_mhz=(384, 810, 1512), n_pages=4)
    print(render_table(
        ["MHz", "PLT with TLS (s)", "PLT plain (s)", "TLS share"],
        [[p.clock_mhz, f"{p.plt_tls.mean:.2f}", f"{p.plt_plain.mean:.2f}",
          f"{p.tls_overhead_frac:.1%}"] for p in tls],
    ))
    delta_low = tls[0].plt_tls.mean - tls[0].plt_plain.mean
    delta_high = tls[-1].plt_tls.mean - tls[-1].plt_plain.mean
    print(f"\nTLS costs ~10 % of PLT at every clock, but in seconds that is "
          f"{delta_low:.2f} s at 384 MHz vs {delta_high:.2f} s at 1512 MHz.")


if __name__ == "__main__":
    main()
