"""Process-layer fault injection: crash/abort of sim processes.

Crashes use the kernel's own :class:`repro.sim.Interrupt` mechanism, so
from the target's perspective a fault is indistinguishable from any other
interrupt — which is exactly how `RobustTrialRunner` classifies it into
the trial error taxonomy.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from repro.faults.plan import CrashSpec, FaultTrace
from repro.sim import Environment, Event, Process


class CrashInjector:
    """Interrupt the trial's foreground processes at a stochastic instant."""

    name = "crash"

    def __init__(self, env: Environment, processes: Sequence[Process],
                 spec: CrashSpec, *,
                 rng: random.Random, trace: FaultTrace):
        self.env = env
        self.processes = tuple(processes)
        self.spec = spec
        self.rng = rng
        self.trace = trace
        env.process(self._run())

    def _run(self) -> Iterator[Event]:
        spec = self.spec
        # Draw the coin and the instant up front so the number of draws per
        # trial is fixed — replays stay aligned whatever the outcome.
        fire = self.rng.random() < spec.probability
        low, high = spec.window_s
        at_s = self.rng.uniform(low, high)
        if not fire:
            return
        yield self.env.timeout(at_s)
        crashed = 0
        for process in self.processes:
            if process.is_alive:
                process.interrupt(spec.cause)
                crashed += 1
        self.trace.record(self.env, self.name, "crash",
                          f"targets={crashed} cause={spec.cause}")


__all__ = ["CrashInjector"]
