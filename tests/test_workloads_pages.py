"""Unit tests for the page corpus generator."""

import pytest

from repro.jsruntime import CpuCostModel
from repro.workloads import generate_corpus, generate_page
from repro.workloads.pages import CATEGORIES, SCRIPT_HEAVY


def test_generation_is_deterministic(regex_factory):
    first = generate_page(5, "news", regex_factory)
    second = generate_page(5, "news", regex_factory)
    assert first.total_bytes == second.total_bytes
    assert len(first.objects) == len(second.objects)
    assert [o.url for o in first.objects] == [o.url for o in second.objects]


def test_different_seeds_differ(regex_factory):
    a = generate_page(1, "news", regex_factory)
    b = generate_page(2, "news", regex_factory)
    assert a.total_bytes != b.total_bytes


def test_unknown_category_rejected(regex_factory):
    with pytest.raises(ValueError):
        generate_page(1, "gaming", regex_factory)


def test_root_is_html(small_corpus):
    for page in small_corpus:
        assert page.root.kind == "html"
        assert page.root.parent is None


def test_page_sizes_match_2018_medians(small_corpus):
    for page in small_corpus:
        assert 0.8e6 < page.total_bytes < 5e6
        assert 30 < len(page.objects) < 150


def test_dependency_graph_is_acyclic(small_corpus):
    for page in small_corpus:
        for obj in page.objects[1:]:
            assert obj.parent is not None
            assert obj.parent < obj.index  # parents generated first


def test_script_heavy_categories_have_more_scripting(regex_factory):
    cost = CpuCostModel()
    news = generate_page(3, "news", regex_factory).scripting_ops(cost)
    business = generate_page(3, "business", regex_factory).scripting_ops(cost)
    assert news > 1.5 * business


def test_news_sports_regex_share(regex_factory):
    """§4.2: list-heavy categories spend a large share in regex work."""
    cost = CpuCostModel()
    for category in SCRIPT_HEAVY:
        page = generate_page(7, category, regex_factory)
        total = page.scripting_ops(cost)
        regex = sum(cost.script_regex_ops(s) for s in page.scripts)
        assert regex / total > 0.15
    page = generate_page(7, "health", regex_factory)
    total = page.scripting_ops(cost)
    regex = sum(cost.script_regex_ops(s) for s in page.scripts)
    assert regex / total < 0.10


def test_blocking_scripts_exist(small_corpus):
    for page in small_corpus:
        blockers = [o for o in page.objects if o.blocking]
        assert blockers
        for blocker in blockers:
            assert blocker.kind == "js"
            assert blocker.script is not None


def test_chained_blockers_are_scanner_invisible(small_corpus):
    for page in small_corpus:
        for obj in page.objects:
            if obj.blocking and obj.parent != 0:
                assert not obj.scanner_visible


def test_corpus_cycles_categories(regex_factory):
    corpus = generate_corpus(10, factory=regex_factory)
    assert [p.category for p in corpus] == list(CATEGORIES) * 2


def test_working_set_includes_browser_baseline(small_corpus):
    for page in small_corpus:
        assert page.working_set_gb > 0.28


def test_scale_factors_shrink_pages(regex_factory):
    full = generate_page(9, "news", regex_factory)
    past = generate_page(9, "news", regex_factory,
                         bytes_factor=0.2, ops_factor=0.1,
                         chain_intensity=0.1)
    cost = CpuCostModel()
    assert past.total_bytes < 0.5 * full.total_bytes
    assert past.scripting_ops(cost) < 0.3 * full.scripting_ops(cost)


def test_bad_scale_factor_rejected(regex_factory):
    with pytest.raises(ValueError):
        generate_page(1, "news", regex_factory, bytes_factor=0)


def test_lazy_images_below_fold_only(small_corpus):
    for page in small_corpus:
        for obj in page.objects:
            if obj.lazy:
                assert obj.kind == "img"
                assert obj.discovery_frac > 0.7
