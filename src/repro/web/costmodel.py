"""Browser activity cost constants.

All compute is in reference ops (1 op = 1 cycle on an IPC-1.0 core), with
frequency-independent memory-stall seconds layered on top.  Values are
calibrated so that an average corpus page on a Nexus4 at 1512 MHz spends
≈3 s of compute and ≈2 s of network on the critical path (PLT ≈ 5 s,
Fig 3a's right edge), with scripting ≈51 % of compute at high clock —
rising toward 60 % at low clock because parse/style/layout carry a larger
memory-stall share (stalls do not scale with frequency).

Layout + paint together land near 4 % of compute time, matching §3.1.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Rate used to convert "fraction of time at reference" into stall seconds.
REFERENCE_RATE = 2.0e9


@dataclass(frozen=True)
class BrowserCostModel:
    """Per-activity compute/stall constants."""

    parse_ops_per_byte: float = 7_000.0
    parse_stall_frac: float = 0.35
    style_ops_per_byte: float = 4_000.0
    style_stall_frac: float = 0.35
    script_stall_frac: float = 0.015
    layout_stall_frac: float = 0.30
    img_decode_ops_per_byte: float = 700.0
    issue_request_ops: float = 8.0e6
    #: IO-thread cost of handling a completed fetch (header parsing,
    #: MIME sniffing, cache insertion, security checks).
    receive_ops: float = 10.0e6

    def parse_work(self, html_bytes: float) -> tuple[float, float]:
        """(ops, stall seconds) to parse ``html_bytes`` of HTML."""
        ops = self.parse_ops_per_byte * html_bytes
        return ops, self.parse_stall_frac * ops / REFERENCE_RATE

    def style_work(self, css_bytes: float) -> tuple[float, float]:
        """(ops, stall seconds) for style resolution over the CSSOM."""
        ops = self.style_ops_per_byte * css_bytes
        return ops, self.style_stall_frac * ops / REFERENCE_RATE

    def script_stall(self, ops: float) -> float:
        """Stall seconds accompanying ``ops`` of script execution."""
        return self.script_stall_frac * ops / REFERENCE_RATE

    def layout_stall(self, ops: float) -> float:
        """Stall seconds accompanying layout/paint work."""
        return self.layout_stall_frac * ops / REFERENCE_RATE

    def decode_work(self, img_bytes: float) -> float:
        """Ops to decode a compressed image."""
        return self.img_decode_ops_per_byte * img_bytes


#: Browser engine profiles.  The paper ran Chrome 63 and confirmed that
#: Firefox and Opera Mini behave "qualitatively the same"; these presets
#: capture their well-known cost differences at 2018 vintage: Gecko's
#: slower style/layout pipeline, and Opera Mini's proxy mode trading
#: client compute for server round trips (heavier per-request handling,
#: lighter scripting — pages arrive pre-rendered as OBML).
BROWSER_PROFILES: dict[str, BrowserCostModel] = {
    "chrome63": BrowserCostModel(),
    "firefox57": BrowserCostModel(
        parse_ops_per_byte=7_800.0,
        style_ops_per_byte=5_200.0,
        issue_request_ops=9.0e6,
        receive_ops=11.0e6,
    ),
    "operamini": BrowserCostModel(
        parse_ops_per_byte=3_000.0,
        style_ops_per_byte=1_500.0,
        img_decode_ops_per_byte=350.0,
        issue_request_ops=10.0e6,
        receive_ops=12.0e6,
    ),
}


def browser_profile(name: str) -> BrowserCostModel:
    """Look up a browser cost profile by name."""
    try:
        return BROWSER_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown browser {name!r}; choose from {sorted(BROWSER_PROFILES)}"
        ) from None


__all__ = ["BROWSER_PROFILES", "REFERENCE_RATE", "BrowserCostModel",
           "browser_profile"]
