"""Tests for the regex corpus and the historical dataset."""

import random

import pytest

from repro.regexlib import Regex
from repro.workloads.history import (
    all_years,
    generate_device_population,
    year_medians,
)
from repro.workloads.regexcorpus import (
    PATTERN_LIBRARY,
    RegexWorkloadFactory,
    synth_text,
    synth_url,
    synth_url_list,
)

# -- regex corpus -----------------------------------------------------------


def test_all_library_patterns_compile():
    for name, pattern, mode in PATTERN_LIBRARY:
        regex = Regex(pattern)
        assert regex.pattern == pattern
        assert mode in ("test", "search", "findall")


def test_library_patterns_match_their_subjects():
    """Each pattern finds something in the subject kind it targets."""
    rng = random.Random(7)
    url_list = synth_url_list(rng, 40)
    assert Regex(r"(?:doubleclick|adservice|analytics|tracker|pixel)\.").test(url_list)
    assert Regex(r"https?://([\w.-]+)(/[\w./%-]*)?").search(synth_url(rng))
    text = synth_text(rng, 120)
    assert Regex(r"\d{4}-\d{2}-\d{2}").search(text)
    assert Regex(r"[\w.+-]+@[\w-]+\.[a-zA-Z]{2,6}").search(text)


def test_synth_url_shape():
    rng = random.Random(1)
    for _ in range(20):
        url = synth_url(rng)
        assert url.startswith("https://")
        assert "/" in url[8:]


def test_factory_calls_are_measured():
    factory = RegexWorkloadFactory()
    rng = random.Random(3)
    calls = factory.make_calls(rng, 6, list_heavy=True)
    assert len(calls) == 6
    for call in calls:
        assert call.pike_ops > 0
        assert call.repeats >= 1


def test_factory_list_heavy_biases_repeats():
    factory = RegexWorkloadFactory()
    heavy = factory.make_calls(random.Random(5), 30, list_heavy=True)
    light = factory.make_calls(random.Random(5), 30, list_heavy=False)
    assert (sum(c.repeats for c in heavy) / len(heavy)
            > sum(c.repeats for c in light) / len(light))


def test_factory_deterministic_for_same_rng_seed():
    factory = RegexWorkloadFactory()
    a = factory.make_calls(random.Random(9), 5, True)
    b = factory.make_calls(random.Random(9), 5, True)
    assert [c.pattern for c in a] == [c.pattern for c in b]
    assert [c.repeats for c in a] == [c.repeats for c in b]


# -- history ------------------------------------------------------------------


def test_eight_years():
    years = all_years()
    assert [y.year for y in years] == list(range(2011, 2019))


def test_medians_grow_over_time():
    years = all_years()
    for attr in ("clock_ghz", "memory_gb", "os_version", "page_bytes_factor"):
        series = [getattr(y, attr) for y in years]
        assert series == sorted(series), attr


def test_unknown_year_rejected():
    with pytest.raises(ValueError):
        year_medians(2025)


def test_device_spec_buildable():
    spec = year_medians(2013).device_spec()
    assert spec.n_cores == 4
    assert spec.max_clock_mhz == 1200


def test_population_size_and_spread():
    population = generate_device_population(per_year=60)
    assert len(population) == 8 * 60
    years = {d.year for d in population}
    assert years == set(range(2011, 2019))


def test_population_medians_recover_input():
    population = generate_device_population(per_year=200)
    for medians in all_years():
        clocks = sorted(d.clock_ghz for d in population
                        if d.year == medians.year)
        observed = clocks[len(clocks) // 2]
        assert observed == pytest.approx(medians.clock_ghz, abs=0.15)
