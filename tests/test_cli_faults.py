"""CLI error paths and the faults study's journal/resume round trip."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.studies import FaultStudy, FaultStudyConfig
from repro.video import VideoSpec


# -- error paths: nonzero exit, one-line message, no traceback --------------

def test_unknown_figure_exits_nonzero(capsys):
    with pytest.raises(SystemExit) as exc_info:
        main(["figZZ"])
    assert exc_info.value.code == 2
    err = capsys.readouterr().err
    assert "figZZ" in err
    assert "Traceback" not in err


def test_trials_zero_is_rejected_with_one_line_message(capsys):
    assert main(["fig6", "--trials", "0"]) == 2
    err = capsys.readouterr().err
    assert err.strip().startswith("error:")
    assert len(err.strip().splitlines()) == 1
    assert "Traceback" not in err


def test_resume_requires_journal(capsys):
    assert main(["faults", "--resume"]) == 2
    err = capsys.readouterr().err
    assert "error: --resume requires --journal" in err
    assert "Traceback" not in err


def test_crash_probability_out_of_range_is_rejected(capsys):
    assert main(["faults", "--crash-probability", "1.5"]) == 2
    assert "error:" in capsys.readouterr().err


@pytest.mark.parametrize("jobs", ["0", "-1", "-4"])
def test_nonpositive_jobs_is_rejected_with_one_line_message(capsys, jobs):
    assert main(["faults", "--jobs", jobs]) == 2
    err = capsys.readouterr().err
    assert err.strip().startswith("error: --jobs must be at least 1")
    assert len(err.strip().splitlines()) == 1
    assert "Traceback" not in err


def test_supervision_flags_require_parallel_jobs(capsys):
    assert main(["faults", "--task-timeout", "30"]) == 2
    assert "--jobs 2 or more" in capsys.readouterr().err
    assert main(["faults", "--jobs", "2", "--task-timeout", "0"]) == 2
    assert "positive" in capsys.readouterr().err
    assert main(["faults", "--jobs", "2", "--max-task-retries", "-1"]) == 2
    assert "negative" in capsys.readouterr().err


def test_command_exception_prints_one_line_error(capsys, monkeypatch):
    import repro.cli as cli

    def explode(args):
        raise RuntimeError("study blew up")

    monkeypatch.setitem(cli._COMMANDS, "fig6", explode)
    assert main(["fig6"]) == 1
    err = capsys.readouterr().err
    assert err.strip() == "error: study blew up"
    assert "Traceback" not in err


def test_list_includes_faults(capsys):
    assert main(["list"]) == 0
    names = capsys.readouterr().out.split()
    assert "faults" in names
    assert "lint" in names
    assert "report" in names
    assert "perf" in names


# -- run-level observability through the CLI --------------------------------

FAST_FAULTS = ["faults", "--trials", "1", "--pages", "4", "--media-s", "15"]


def test_parallel_run_prints_supervision_summary_on_stderr(capsys):
    assert main(FAST_FAULTS + ["--jobs", "2"]) == 0
    captured = capsys.readouterr()
    assert "supervision: 0 rebuilds, 0 retries, 0 quarantined" in captured.err
    assert "supervision" not in captured.out


def test_serial_run_prints_no_supervision_summary(capsys):
    assert main(FAST_FAULTS) == 0
    assert "supervision" not in capsys.readouterr().err


def test_journaled_run_writes_runlog_and_progress_to_stderr(tmp_path,
                                                            capsys):
    from repro.obs.runlog import read_runlog

    assert main(FAST_FAULTS + ["--journal", str(tmp_path), "--progress"]) == 0
    captured = capsys.readouterr()
    # --journal on a faults run implies a sibling runlog.
    events = read_runlog(tmp_path / "run.jsonl")
    assert events[0]["event"] == "run_start"
    assert events[-1]["event"] == "run_end"
    assert any(e["event"] == "trial_complete" for e in events)
    # Progress rendering never contaminates stdout.
    assert "trials" in captured.err
    assert "trials" not in captured.out


def test_explicit_runlog_flag_controls_the_path(tmp_path):
    from repro.obs.runlog import read_runlog

    path = tmp_path / "nested" / "events.jsonl"
    path.parent.mkdir()
    assert main(FAST_FAULTS + ["--runlog", str(path)]) == 0
    events = read_runlog(path)
    assert {e["event"] for e in events} >= {"run_start", "run_end"}


def test_report_and_perf_dispatch_through_the_cli(tmp_path, capsys):
    assert main(FAST_FAULTS + ["--journal", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["report", str(tmp_path)]) == 0
    assert capsys.readouterr().out.startswith("run report")

    from repro.obs.perfstore import PerfStore

    store = PerfStore(tmp_path / "BENCH_obs.json")
    store.append("bench.wall_s", 1.0)
    store.append("bench.wall_s", 1.1)
    assert main(["perf", "check", str(store.path)]) == 0
    assert "within the" in capsys.readouterr().out


# -- journal/resume round trip through the study ----------------------------

def _tiny_study(tmp_path) -> FaultStudy:
    return FaultStudy(FaultStudyConfig(
        n_pages=1, trials=2, clip=VideoSpec(duration_s=5.0),
        journal_dir=tmp_path, max_attempts=1,
    ))


def test_interrupted_then_resume_reexecutes_only_missing(tmp_path):
    study = _tiny_study(tmp_path)
    first = study.plt_vs_burst_loss(p_bads=(0.3,))
    (journal,) = tmp_path.glob("*.json")
    assert journal.name == "faults_web_ge_0.3.json"

    # Simulate an interrupt: drop the journal's second trial.
    import json

    payload = json.loads(journal.read_text())
    assert len(payload["records"]) == 2
    payload["records"] = payload["records"][:1]
    journal.write_text(json.dumps(payload))

    resumed_study = _tiny_study(tmp_path)
    loads = []
    original = resumed_study.load_page_with_faults

    def counting(*args, **kwargs):
        loads.append(args)
        return original(*args, **kwargs)

    resumed_study.load_page_with_faults = counting
    second = resumed_study.plt_vs_burst_loss(p_bads=(0.3,), resume=True)
    assert len(loads) == 1            # one page x the single missing trial
    assert second[0].report.resumed == 1
    assert second[0].metric == first[0].metric
