"""RobustTrialRunner: graceful degradation, retries, journal/resume."""

from __future__ import annotations

import json
import time

import pytest

from repro.core.experiments import (
    RobustTrialRunner,
    TrialError,
    TrialRecord,
    derive_retry_seed,
    derive_seed,
)
from repro.core.background import make_rng
from repro.sim import Environment, Interrupt, SimDeadlock, StepBudgetExceeded


def crashy_trial(seed: int) -> float:
    """~30% of seeds crash via the kernel's Interrupt mechanism."""
    rng = make_rng(seed)
    if rng.random() < 0.3:
        raise Interrupt("fault:crash")
    return rng.uniform(1.0, 2.0)


# -- graceful degradation ---------------------------------------------------

def test_thirty_percent_crash_rate_completes_with_failure_counts():
    runner = RobustTrialRunner(trials=30, experiment="degrade",
                               max_attempts=1)
    report = runner.run(crashy_trial)
    assert len(report.records) == 30
    assert report.completed + report.failures == 30
    assert report.failures > 0          # ~30% rate must hit at least once
    assert report.completed > 0
    assert report.failure_counts() == {"crash": report.failures}
    summary = report.summary()
    assert summary.n == report.completed
    assert summary.failures == report.failures
    assert f"[{report.failures} failed]" in str(summary)
    assert all(1.0 <= value <= 2.0 for value in report.values)


def test_report_is_deterministic():
    def run_once():
        runner = RobustTrialRunner(trials=10, experiment="det",
                                   max_attempts=2)
        report = runner.run(crashy_trial)
        rows = []
        for record in report.records:
            row = record.as_dict()
            # The only intentionally non-deterministic field: attempt wall
            # duration is host timing, everything else must replay exactly.
            assert row.pop("duration_wall_s") >= 0.0
            rows.append(row)
        return rows

    assert run_once() == run_once()


# -- retry with derived reseed ----------------------------------------------

def test_retry_uses_derived_reseed():
    assert derive_retry_seed("exp", 3, 0) == derive_seed("exp", 3)
    assert derive_retry_seed("exp", 3, 1) != derive_seed("exp", 3)
    assert derive_retry_seed("exp", 3, 1) != derive_retry_seed("exp", 3, 2)


def test_retry_can_rescue_a_stochastic_crash():
    seen: list[int] = []

    def crash_on_first_attempt(seed: int) -> float:
        seen.append(seed)
        if len(seen) == 1:
            raise Interrupt("fault:crash")
        return 1.0

    runner = RobustTrialRunner(trials=1, experiment="rescue",
                               max_attempts=2)
    report = runner.run(crash_on_first_attempt)
    assert report.failures == 0
    assert report.records[0].attempts == 2
    assert seen == [derive_retry_seed("rescue", 0, 0),
                    derive_retry_seed("rescue", 0, 1)]


def test_attempts_exhausted_keeps_last_failure():
    def always_crash(seed: int) -> float:
        raise Interrupt("boom")

    runner = RobustTrialRunner(trials=2, experiment="doomed",
                               max_attempts=3)
    report = runner.run(always_crash)
    assert report.failures == 2
    assert all(record.attempts == 3 for record in report.records)
    assert report.values == []
    assert report.summary().n == 0


# -- error taxonomy ---------------------------------------------------------

def test_taxonomy_classification():
    def classified(seed: int) -> float:
        trial = seed_to_trial[seed]
        if trial == 0:
            raise Interrupt("fault:crash")
        if trial == 1:
            env = Environment()

            def stuck(env):
                yield env.event()

            env.process(stuck(env))
            env.run()  # raises SimDeadlock
        if trial == 2:
            raise StepBudgetExceeded("budget", now=1.0, steps=10)
        if trial == 3:
            raise ValueError("bad input")
        return 1.0

    runner = RobustTrialRunner(trials=5, experiment="taxonomy",
                               max_attempts=1)
    seed_to_trial = {derive_seed("taxonomy", t): t for t in range(5)}
    report = runner.run(classified)
    statuses = [record.status for record in report.records]
    assert statuses == ["crash", "deadlock", "timeout", "error", "ok"]
    assert report.failure_counts() == {
        "crash": 1, "deadlock": 1, "timeout": 1, "error": 1,
    }


def test_wall_budget_timeout_is_not_retried():
    calls: list[int] = []

    def slow_trial(seed: int) -> float:
        calls.append(seed)
        time.sleep(0.05)
        return 1.0

    runner = RobustTrialRunner(trials=1, experiment="slow",
                               max_attempts=3, wall_budget_s=0.001)
    report = runner.run(slow_trial)
    assert report.records[0].status == "timeout"
    assert "wall budget" in report.records[0].error
    assert len(calls) == 1  # retrying a too-slow trial doubles the damage


def test_step_budget_is_threaded_to_two_parameter_trial_fns():
    received: list[object] = []

    def budgeted(seed: int, step_budget) -> float:
        received.append(step_budget)
        return 1.0

    RobustTrialRunner(trials=1, step_budget=777).run(budgeted)
    assert received == [777]

    def unbudgeted(seed: int) -> float:
        return 1.0

    report = RobustTrialRunner(trials=1, step_budget=777).run(unbudgeted)
    assert report.failures == 0


def test_non_numeric_trial_value_is_classified_not_raised():
    def stringy(seed: int):
        return "not a number"

    runner = RobustTrialRunner(trials=1, experiment="stringy",
                               max_attempts=1)
    report = runner.run(stringy)          # must not raise
    (record,) = report.records
    assert record.status == "error"
    assert "non-numeric trial result" in record.error
    assert "str" in record.error
    assert report.failure_counts() == {"error": 1}


def test_non_numeric_trial_value_is_retried():
    attempts: list[int] = []

    def flaky_type(seed: int):
        attempts.append(seed)
        return None if len(attempts) == 1 else 1.0

    runner = RobustTrialRunner(trials=1, experiment="flakytype",
                               max_attempts=2)
    report = runner.run(flaky_type)
    assert report.failures == 0
    assert report.records[0].attempts == 2


# -- journal / resume -------------------------------------------------------

def test_journal_written_and_resume_skips_completed(tmp_path):
    journal = tmp_path / "journal.json"
    runner = RobustTrialRunner(trials=6, experiment="journal",
                               max_attempts=1, journal_path=journal)
    first = runner.run(lambda seed: float(seed % 7))
    assert journal.exists()
    payload = json.loads(journal.read_text())
    assert payload["experiment"] == "journal"
    assert len(payload["records"]) == 6

    # Simulate an interrupted run: drop the last three records.
    payload["records"] = payload["records"][:3]
    journal.write_text(json.dumps(payload))

    executed: list[int] = []

    def observed(seed: int) -> float:
        executed.append(seed)
        return float(seed % 7)

    second = runner.run(observed, resume=True)
    assert second.resumed == 3
    assert [derive_seed("journal", t) for t in (3, 4, 5)] == executed

    def rows(report):
        # duration_wall_s is host timing — non-deterministic by design.
        return [{k: v for k, v in r.as_dict().items()
                 if k != "duration_wall_s"} for r in report.records]

    assert rows(second) == rows(first)


def test_resume_reexecutes_failed_trials(tmp_path):
    journal = tmp_path / "journal.json"
    runner = RobustTrialRunner(trials=4, experiment="refail",
                               max_attempts=1, journal_path=journal)

    def fail_on_even_trials(seed: int) -> float:
        trial = {derive_seed("refail", t): t for t in range(4)}[seed]
        if trial % 2 == 0:
            raise ValueError("flaky")
        return 1.0

    first = runner.run(fail_on_even_trials)
    assert first.failures == 2

    second = runner.run(lambda seed: 2.0, resume=True)
    assert second.resumed == 2        # only the ok trials are kept
    assert second.failures == 0
    by_trial = {record.trial: record for record in second.records}
    assert by_trial[0].value == 2.0   # previously failed: re-executed
    assert by_trial[1].value == 1.0   # previously ok: kept


def test_resume_without_journal_runs_everything(tmp_path):
    runner = RobustTrialRunner(trials=3, experiment="nofile",
                               journal_path=tmp_path / "missing.json")
    report = runner.run(lambda seed: 1.0, resume=True)
    assert report.resumed == 0
    assert report.completed == 3


def test_journal_experiment_mismatch_raises(tmp_path):
    journal = tmp_path / "journal.json"
    RobustTrialRunner(trials=1, experiment="alpha",
                      journal_path=journal).run(lambda seed: 1.0)
    other = RobustTrialRunner(trials=1, experiment="beta",
                              journal_path=journal)
    with pytest.raises(TrialError, match="belongs to experiment"):
        other.run(lambda seed: 1.0, resume=True)


def test_journal_trials_count_mismatch_raises(tmp_path):
    journal = tmp_path / "journal.json"
    RobustTrialRunner(trials=4, experiment="shape",
                      journal_path=journal).run(lambda seed: 1.0)
    shrunk = RobustTrialRunner(trials=2, experiment="shape",
                               journal_path=journal)
    with pytest.raises(TrialError, match="written for 4 trials, not 2"):
        shrunk.run(lambda seed: 1.0, resume=True)


def test_resume_with_all_trials_satisfied_rewrites_journal(tmp_path):
    journal = tmp_path / "journal.json"
    runner = RobustTrialRunner(trials=3, experiment="fullres",
                               max_attempts=1, journal_path=journal)
    runner.run(lambda seed: 1.0)
    pristine = journal.read_bytes()

    # Pollute the file with a stale extra key; a resume that satisfies every
    # trial from the journal must still rewrite it in canonical form.
    payload = json.loads(journal.read_text())
    payload["stale_debug_field"] = True
    journal.write_text(json.dumps(payload))

    report = runner.run(lambda seed: 1.0, resume=True)
    assert report.resumed == 3
    assert journal.read_bytes() == pristine


def test_corrupt_journal_raises_trial_error(tmp_path):
    journal = tmp_path / "journal.json"
    journal.write_text("{not json")
    runner = RobustTrialRunner(trials=1, experiment="corrupt",
                               journal_path=journal)
    with pytest.raises(TrialError, match="unreadable journal"):
        runner.run(lambda seed: 1.0, resume=True)


# -- record round trip and validation ---------------------------------------

def test_trial_record_round_trip():
    record = TrialRecord(trial=2, seed=99, status="ok", value=1.5,
                         attempts=2)
    assert TrialRecord.from_dict(record.as_dict()) == record


def test_constructor_validation():
    with pytest.raises(ValueError):
        RobustTrialRunner(trials=0)
    with pytest.raises(ValueError):
        RobustTrialRunner(max_attempts=0)
    with pytest.raises(ValueError):
        RobustTrialRunner(step_budget=0)
    with pytest.raises(ValueError):
        RobustTrialRunner(wall_budget_s=0.0)
