"""Lint driver: file discovery, rule execution, suppression, filtering."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.findings import (
    Finding,
    Severity,
    is_suppressed,
    parse_suppressions,
)
from repro.lint.rules import ALL_RULES, FileContext, Rule

#: Rule id used for files the engine itself cannot parse.
PARSE_ERROR_RULE = "E000"


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    def count_at_least(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity >= severity)

    def by_severity(self) -> Dict[str, int]:
        counts = {str(s): 0 for s in Severity}
        for finding in self.findings:
            counts[str(finding.severity)] += 1
        return counts

    def as_dict(self) -> dict:
        return {
            "version": 1,
            "summary": {
                "files": self.files_checked,
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "by_severity": self.by_severity(),
            },
            "findings": [f.as_dict() for f in self.findings],
        }


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    seen = set()
    unique = []
    for path in out:
        key = str(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    rules: Sequence[Rule] = ALL_RULES,
) -> List[Rule]:
    """Resolve ``--select``/``--ignore`` ids against the registry.

    Raises :class:`ValueError` for ids that match no registered rule, so
    the CLI can map typos to a usage error (exit code 2).
    """
    known = {rule.id for rule in rules}
    chosen = list(rules)
    if select is not None:
        wanted = {rule_id.strip().upper() for rule_id in select if rule_id.strip()}
        unknown = sorted(wanted - known)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        chosen = [rule for rule in chosen if rule.id in wanted]
    if ignore is not None:
        dropped = {rule_id.strip().upper() for rule_id in ignore if rule_id.strip()}
        unknown = sorted(dropped - known)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        chosen = [rule for rule in chosen if rule.id not in dropped]
    return chosen


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    root: Optional[Path] = None,
) -> LintReport:
    """Lint a single file; report findings with paths relative to root."""
    report = LintReport(files_checked=1)
    display = str(path)
    if root is not None:
        try:
            display = str(path.relative_to(root))
        except ValueError:
            pass
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as error:
        report.findings.append(Finding(
            path=display, line=1, col=0, rule=PARSE_ERROR_RULE,
            severity=Severity.ERROR, message=f"cannot read file: {error}",
        ))
        return report
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as error:
        report.findings.append(Finding(
            path=display, line=error.lineno or 1, col=error.offset or 0,
            rule=PARSE_ERROR_RULE, severity=Severity.ERROR,
            message=f"syntax error: {error.msg}",
        ))
        return report

    context = FileContext(path=display, source=source, tree=tree)
    suppressions = parse_suppressions(source)
    for rule in rules:
        if not rule.applies_to(context):
            continue
        for finding in rule.check(context):
            if is_suppressed(finding, suppressions):
                report.suppressed += 1
            else:
                report.findings.append(finding)
    return report


def run_lint(
    paths: Sequence[Path],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    min_severity: Severity = Severity.INFO,
    root: Optional[Path] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` with the chosen rules."""
    rules = select_rules(select, ignore)
    report = LintReport()
    for path in discover_files([Path(p) for p in paths]):
        file_report = lint_file(path, rules, root=root)
        report.files_checked += file_report.files_checked
        report.suppressed += file_report.suppressed
        report.findings.extend(
            f for f in file_report.findings if f.severity >= min_severity
        )
    report.findings.sort()
    return report


__all__ = [
    "LintReport",
    "PARSE_ERROR_RULE",
    "discover_files",
    "lint_file",
    "run_lint",
    "select_rules",
]
