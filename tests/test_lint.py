"""simlint: per-rule fixtures, suppression, reporters, and CLI contract."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    ALL_PROJECT_RULES,
    ALL_RULES,
    Severity,
    run_lint,
    rules_by_id,
)
from repro.lint.cli import main as lint_main
from repro.lint.engine import PARSE_ERROR_RULE, select_rules
from repro.lint.reporters import render_json, render_text


def lint_source(tmp_path: Path, source: str, *, select=None,
                name: str = "snippet.py"):
    """Write ``source`` to a temp module and lint it."""
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return run_lint([target], select=select)


def rule_ids(report):
    return sorted({finding.rule for finding in report.findings})


# -- rule fixtures: one flagged and one clean snippet per rule id ----------

FLAGGED = {
    "DET001": """
        import time

        def now_s():
            return time.time()
        """,
    "DET002": """
        import random

        def jitter():
            return random.random()
        """,
    "DET003": """
        def total(values):
            acc = 0.0
            for v in set(values):
                acc += v
            return acc
        """,
    "DET004": """
        def stable_order(items):
            return sorted(items, key=lambda item: id(item))
        """,
    "SIM101": """
        def proc(env):
            yield 5
            yield env.timeout(1)
        """,
    "SIM102": """
        import time

        def proc(env):
            time.sleep(0.1)
            yield env.timeout(1)
        """,
    "SIM103": """
        def rewind(env):
            env.now = 0.0
        """,
    "UNIT201": """
        def budget(rtt_ms, timeout_s):
            return rtt_ms + timeout_s
        """,
    "CAT301": """
        from repro.device.catalog import DeviceSpec

        ROW = DeviceSpec(
            name="Phone",
            soc="SoC",
            clusters=(),
            memory_gb=500.0,
            os_version="6.0",
            gpu="Mali",
            cost_usd=700,
        )
        """,
    "OBS501": """
        def traced_fetch(tracer, fetch):
            handle = tracer.begin_span("net.fetch", "net")
            body = fetch()
            tracer.end_span(handle)
            return body
        """,
    "OBS502": """
        def log_event(out_dir, line):
            (out_dir / "run.jsonl").write_text(line)
        """,
    "PAR601": """
        from concurrent.futures import ProcessPoolExecutor

        def fan_out(fn, items):
            with ProcessPoolExecutor(max_workers=4) as pool:
                return list(pool.map(fn, items))
        """,
    "PAR602": """
        import signal

        def install(handler):
            signal.signal(signal.SIGINT, handler)
        """,
    "CSH801": """
        def plant(root, key, payload):
            (root / "objects" / key[:2] / (key + ".cache.json")
             ).write_text(payload)
        """,
}

CLEAN = {
    "DET001": """
        def now_s(env):
            return env.now
        """,
    "DET002": """
        import random

        def jitter(seed):
            return random.Random(seed).random()
        """,
    "DET003": """
        def total(values):
            return sum(sorted(set(values)))
        """,
    "DET004": """
        def stable_order(items):
            return sorted(items, key=lambda item: item.name)
        """,
    "SIM101": """
        def proc(env):
            yield env.timeout(1)
            result = yield env.process(sub(env))
            return result
        """,
    "SIM102": """
        def proc(env):
            yield env.timeout(0.1)
        """,
    "SIM103": """
        def finish(env, event):
            event.succeed(env.now)
        """,
    "UNIT201": """
        def budget(rtt_ms, timeout_s):
            return rtt_ms / 1000.0 + timeout_s
        """,
    "CAT301": """
        from repro.device.catalog import DeviceSpec

        ROW = DeviceSpec(
            name="Phone",
            soc="SoC",
            clusters=(),
            memory_gb=2.0,
            os_version="6.0",
            gpu="Mali",
            release="Jan 2017",
            cost_usd=700,
        )
        """,
    "OBS501": """
        def traced_fetch(tracer, fetch):
            with tracer.span("net.fetch", "net"):
                return fetch()
        """,
    "OBS502": """
        from repro.obs.runlog import RunLog, read_runlog

        def log_event(out_dir, event):
            with RunLog(out_dir / "run.jsonl") as runlog:
                runlog.emit("run_start", **event)
            return read_runlog(out_dir / "run.jsonl")
        """,
    "PAR601": """
        from repro.parallel import get_executor

        def fan_out(fn, items, jobs):
            return get_executor(jobs).map(fn, items)
        """,
    "PAR602": """
        import signal

        def names():
            return [signal.SIGINT, signal.SIGTERM]
        """,
    "CSH801": """
        import json

        def stored(cache, key, result):
            cache.put(key, experiment="e", trial=0, kind="pickle",
                      payload=result, fingerprint="f")
            return json.loads(cache._entry_path(key).read_text())
        """,
}

# DET005 and FLT401 are path/import-scoped; exercised separately below.
_PATH_SCOPED = {"DET005", "FLT401"}


@pytest.mark.parametrize("rule_id", sorted(FLAGGED))
def test_rule_flags_violation(tmp_path, rule_id):
    report = lint_source(tmp_path, FLAGGED[rule_id], select=[rule_id])
    assert rule_ids(report) == [rule_id]


@pytest.mark.parametrize("rule_id", sorted(CLEAN))
def test_rule_accepts_clean_code(tmp_path, rule_id):
    report = lint_source(tmp_path, CLEAN[rule_id], select=[rule_id])
    assert report.findings == []


def test_det005_flags_inline_rng_only_in_studies(tmp_path):
    source = """
        import random

        def trial(seed):
            return random.Random(seed)
        """
    flagged = lint_source(tmp_path, source, select=["DET005"],
                          name="core/studies/fake.py")
    assert rule_ids(flagged) == ["DET005"]
    elsewhere = lint_source(tmp_path, source, select=["DET005"],
                            name="workloads/fake.py")
    assert elsewhere.findings == []


def test_obs501_exempts_the_obs_package(tmp_path):
    source = FLAGGED["OBS501"]
    report = lint_source(tmp_path, source, select=["OBS501"],
                         name="repro/obs/tracer.py")
    assert report.findings == []


def test_obs502_exempts_the_runlog_module(tmp_path):
    report = lint_source(tmp_path, FLAGGED["OBS502"], select=["OBS502"],
                         name="repro/obs/runlog.py")
    assert report.findings == []


def test_obs502_ignores_reads_and_flags_write_modes(tmp_path):
    reads = """
        def load(out_dir):
            with open(out_dir / "run.jsonl") as fh:
                return fh.read()
        """
    assert lint_source(tmp_path, reads, select=["OBS502"]).findings == []
    explicit_read = """
        def load(out_dir):
            return open(out_dir / "run.jsonl", "r").read()
        """
    assert lint_source(tmp_path, explicit_read,
                       select=["OBS502"]).findings == []
    appended = """
        def append(path, line):
            with open(path / "run.jsonl", mode="a") as fh:
                fh.write(line)
        """
    assert rule_ids(lint_source(tmp_path, appended,
                                select=["OBS502"])) == ["OBS502"]
    path_open = """
        def append(path, line):
            with (path / "run.jsonl").open("w") as fh:
                fh.write(line)
        """
    assert rule_ids(lint_source(tmp_path, path_open,
                                select=["OBS502"])) == ["OBS502"]


def test_obs502_ignores_other_jsonl_files(tmp_path):
    source = """
        def append(path, line):
            (path / "events.jsonl").write_text(line)
        """
    assert lint_source(tmp_path, source, select=["OBS502"]).findings == []


def test_csh801_exempts_the_cache_package(tmp_path):
    report = lint_source(tmp_path, FLAGGED["CSH801"], select=["CSH801"],
                         name="repro/cache/store.py")
    assert report.findings == []


def test_csh801_flags_marker_writes_and_ignores_reads(tmp_path):
    marker = """
        def stamp(root):
            with open(root / "repro-cache.json", "w") as fh:
                fh.write("{}")
        """
    assert rule_ids(lint_source(tmp_path, marker,
                                select=["CSH801"])) == ["CSH801"]
    reads = """
        import json

        def load(root, key):
            path = root / "objects" / key[:2] / (key + ".cache.json")
            return json.loads(path.read_text())
        """
    assert lint_source(tmp_path, reads, select=["CSH801"]).findings == []


def test_csh801_ignores_other_json_files(tmp_path):
    source = """
        def save(path, payload):
            (path / "results.json").write_text(payload)
        """
    assert lint_source(tmp_path, source, select=["CSH801"]).findings == []


def test_flt401_flags_injector_without_rng_in_faults_package(tmp_path):
    source = """
        def install_all(env, link, spec, trace):
            GilbertElliottLossInjector(env, link, spec, trace=trace)
        """
    report = lint_source(tmp_path, source, select=["FLT401"],
                         name="repro/faults/custom.py")
    assert rule_ids(report) == ["FLT401"]


def test_flt401_scopes_by_import_of_repro_faults(tmp_path):
    source = """
        from repro.faults import FaultPlan

        def degrade(env, plan, link):
            plan.install(env, link=link)
        """
    report = lint_source(tmp_path, source, select=["FLT401"],
                         name="app/study.py")
    assert rule_ids(report) == ["FLT401"]
    # Same shapes without the import are out of scope: `.install` and
    # `*Injector` are common-enough names elsewhere.
    unrelated = """
        def setup(pkg, env, link):
            pkg.install(env, link=link)
        """
    clean = lint_source(tmp_path, unrelated, select=["FLT401"],
                        name="app/other.py")
    assert clean.findings == []


def test_flt401_rejects_none_and_unseeded_rng_values(tmp_path):
    source = """
        from repro.faults import CrashInjector
        import random

        def bad(env, procs, spec, trace):
            CrashInjector(env, procs, spec, rng=None, trace=trace)
            CrashInjector(env, procs, spec, rng=random.Random(), trace=trace)
        """
    report = lint_source(tmp_path, source, select=["FLT401"],
                         name="app/crashy.py")
    assert len(report.findings) == 2
    assert rule_ids(report) == ["FLT401"]


def test_flt401_accepts_seeded_streams(tmp_path):
    source = """
        from repro.faults import FaultPlan, spawn_rng
        from repro.core.background import make_rng

        def degrade(env, plan, link, seed, parent):
            plan.install(env, rng=make_rng(seed), link=link)
            plan.install(env, rng=spawn_rng(parent), link=link)
        """
    report = lint_source(tmp_path, source, select=["FLT401"],
                         name="app/study.py")
    assert report.findings == []


def test_par601_flags_os_fork_and_exempts_the_executor_layer(tmp_path):
    fork_source = """
        import os

        def spawn_worker():
            return os.fork()
        """
    report = lint_source(tmp_path, fork_source, select=["PAR601"],
                         name="app/workers.py")
    assert rule_ids(report) == ["PAR601"]
    # The executor layer itself is the sanctioned home of fan-out.
    exempt = lint_source(tmp_path, FLAGGED["PAR601"], select=["PAR601"],
                         name="repro/parallel/executors.py")
    assert exempt.findings == []


def test_par602_exempts_only_the_supervisor_module(tmp_path):
    # The supervisor is the sanctioned home of signal handling...
    exempt = lint_source(tmp_path, FLAGGED["PAR602"], select=["PAR602"],
                         name="repro/parallel/supervisor.py")
    assert exempt.findings == []
    # ...but the rest of the parallel package is not exempt (unlike
    # PAR601, which exempts the whole package).
    flagged = lint_source(tmp_path, FLAGGED["PAR602"], select=["PAR602"],
                          name="repro/parallel/executors.py")
    assert rule_ids(flagged) == ["PAR602"]


def test_sim103_exempts_the_kernel_package(tmp_path):
    source = """
        def schedule(self, event):
            event._scheduled = True
        """
    flagged = lint_source(tmp_path, source, select=["SIM103"],
                          name="app/code.py")
    assert rule_ids(flagged) == ["SIM103"]
    kernel = lint_source(tmp_path, source, select=["SIM103"],
                         name="repro/sim/core.py")
    assert kernel.findings == []


def test_sim_rules_ignore_plain_generators(tmp_path):
    # A generator that never touches an env is not a sim process.
    report = lint_source(tmp_path, """
        def chunks(values):
            for value in values:
                yield value * 2
        """)
    assert report.findings == []


def test_every_registered_rule_has_a_fixture():
    covered = set(FLAGGED) | _PATH_SCOPED
    assert {rule.id for rule in ALL_RULES} == covered
    # Registry metadata is complete: id, severity, title, rationale.
    for rule in ALL_RULES:
        assert rule.id and rule.title and rule.rationale
        assert isinstance(rule.severity, Severity)


def test_suppression_comment_and_count(tmp_path):
    report = lint_source(tmp_path, """
        import time

        def profile():
            return time.time()  # simlint: disable=DET001 -- host-side only
        """)
    assert report.findings == []
    assert report.suppressed == 1


def test_blanket_suppression(tmp_path):
    report = lint_source(tmp_path, """
        import time, random

        def noisy():
            return time.time() + random.random()  # simlint: disable
        """)
    assert report.findings == []
    assert report.suppressed == 2


def test_multiple_suppressions_on_one_line(tmp_path):
    report = lint_source(tmp_path, """
        import time, random

        def noisy():
            return time.time() + random.random()  # simlint: disable=DET001,DET002
        """)
    assert report.findings == []
    assert report.suppressed == 2


def test_suppression_is_rule_specific(tmp_path):
    report = lint_source(tmp_path, """
        import time

        def profile():
            return time.time()  # simlint: disable=DET002
        """)
    assert rule_ids(report) == ["DET001"]


def test_syntax_error_reported_as_finding(tmp_path):
    report = lint_source(tmp_path, "def broken(:\n")
    assert rule_ids(report) == [PARSE_ERROR_RULE]
    assert report.findings[0].severity is Severity.ERROR


def test_findings_sorted_and_stable(tmp_path):
    report = lint_source(tmp_path, FLAGGED["DET001"] + FLAGGED["UNIT201"])
    assert report.findings == sorted(report.findings)


def test_select_rejects_unknown_rule():
    with pytest.raises(ValueError, match="unknown rule"):
        select_rules(select=["NOPE999"])


# -- reporters -------------------------------------------------------------

def test_json_report_shape(tmp_path):
    report = lint_source(tmp_path, FLAGGED["DET001"])
    payload = json.loads(render_json(report))
    assert payload["version"] == 1
    assert set(payload) == {"version", "summary", "findings"}
    assert set(payload["summary"]) == {
        "files", "findings", "suppressed", "baselined", "by_severity",
    }
    assert set(payload["summary"]["by_severity"]) == {
        "error", "warning", "info",
    }
    (finding,) = payload["findings"]
    assert set(finding) == {
        "rule", "severity", "path", "line", "col", "message",
    }
    assert finding["rule"] == "DET001"
    assert finding["severity"] == "error"
    assert finding["line"] >= 1


def test_empty_report_renders_cleanly(tmp_path):
    report = lint_source(tmp_path, CLEAN["DET001"])
    assert report.findings == []
    text = render_text(report)
    assert text == (
        "checked 1 file(s): 0 finding(s) "
        "(0 error, 0 warning, 0 info), 0 suppressed"
    )
    payload = json.loads(render_json(report))
    assert payload["findings"] == []
    assert payload["summary"]["findings"] == 0
    assert payload["summary"]["baselined"] == 0


def test_json_report_round_trips_byte_identically(tmp_path):
    first = render_json(lint_source(tmp_path, FLAGGED["DET001"]))
    second = render_json(lint_source(tmp_path, FLAGGED["DET001"]))
    assert first == second
    assert json.dumps(json.loads(first), indent=2, sort_keys=True) == first


def test_text_report_mentions_rule_and_location(tmp_path):
    report = lint_source(tmp_path, FLAGGED["DET001"])
    text = render_text(report)
    assert "DET001" in text
    assert "snippet.py" in text
    assert "1 finding(s)" in text


# -- CLI contract: 0 clean, 1 findings, 2 usage error ----------------------

def write(tmp_path, name, source):
    target = tmp_path / name
    target.write_text(textwrap.dedent(source))
    return target


def test_cli_exit_zero_on_clean_file(tmp_path, capsys):
    target = write(tmp_path, "clean.py", CLEAN["DET001"])
    assert lint_main([str(target)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_exit_one_on_findings(tmp_path, capsys):
    target = write(tmp_path, "bad.py", FLAGGED["DET001"])
    assert lint_main([str(target)]) == 1
    assert "DET001" in capsys.readouterr().out


def test_cli_exit_two_on_unknown_rule(tmp_path, capsys):
    target = write(tmp_path, "clean.py", CLEAN["DET001"])
    assert lint_main([str(target), "--select", "BOGUS"]) == 2


def test_cli_exit_two_on_missing_path(capsys):
    assert lint_main(["/no/such/path.py"]) == 2


def test_cli_exit_two_on_bad_flag(tmp_path, capsys):
    target = write(tmp_path, "clean.py", CLEAN["DET001"])
    assert lint_main([str(target), "--format", "yaml"]) == 2


def test_cli_json_format(tmp_path, capsys):
    target = write(tmp_path, "bad.py", FLAGGED["DET002"])
    assert lint_main([str(target), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["findings"] == 1
    assert payload["findings"][0]["rule"] == "DET002"


def test_cli_select_filters_rules(tmp_path, capsys):
    target = write(tmp_path, "bad.py",
                   FLAGGED["DET001"] + FLAGGED["UNIT201"])
    assert lint_main([str(target), "--select", "UNIT201"]) == 1
    out = capsys.readouterr().out
    assert "UNIT201" in out and "DET001" not in out


def test_cli_fail_on_error_ignores_warnings(tmp_path, capsys):
    target = write(tmp_path, "warn.py", FLAGGED["UNIT201"])
    assert lint_main([str(target), "--fail-on", "error"]) == 0
    assert lint_main([str(target)]) == 1  # default --fail-on warning


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.id in out


def test_repro_package_is_lint_clean():
    """The acceptance bar: the shipped package has zero findings."""
    import repro

    package_root = Path(repro.__file__).resolve().parent
    report = run_lint([package_root])
    assert report.findings == [], render_text(report)


def test_dispatch_through_main_cli(tmp_path, capsys):
    from repro.cli import main

    target = write(tmp_path, "bad.py", FLAGGED["DET001"])
    assert main(["lint", str(target)]) == 1
    assert "DET001" in capsys.readouterr().out


def test_rules_by_id_round_trip():
    table = rules_by_id()
    assert set(table) == {
        rule.id for rule in ALL_RULES + ALL_PROJECT_RULES
    }
