"""Content-addressed trial-result store with incremental invalidation.

Layout under the cache root (``--cache DIR`` / ``REPRO_CACHE``)::

    <root>/repro-cache.json                     store marker + version
    <root>/objects/<aa>/<digest>.cache.json     one entry per trial

Each entry is keyed by :func:`~repro.cache.keys.trial_key` — a digest of
``(experiment, trial index, derived seed, canonical params, code
fingerprint)`` — so a hit means "this exact code would recompute this
exact trial."  Two payload kinds cover the two execution layers:

* ``"record"`` — a journal row (:class:`~repro.core.experiments.
  TrialRecord` minus host timing); replaying it reproduces journal bytes
  exactly, which is what keeps cold and warm runs byte-identical.
* ``"pickle"`` — a base64-pickled study result (page loads, streaming
  sessions) for the plain ``Executor.map`` sweeps.

Single-writer discipline mirrors the journal and the runlog: only the
parent process consults or writes the cache (workers return results;
executors carry a :class:`TrialCache` reference that is never called
from a worker), and every write is an atomic tmp-then-replace so a
killed run never leaves a torn entry.  simlint rule CSH801 flags
``*.cache.json`` writes outside this package.

:func:`cached_map` is the drop-in for ``executor.map`` used by the sweep
loops: consult the cache per item, dispatch only the misses, store what
came back, and report ``cache_hit``/``cache_miss``/``cache_store`` host
events through the runlog.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.cache.fingerprint import code_fingerprint
from repro.cache.keys import Uncacheable, canonicalize, trial_key
from repro.obs.runlog import AnyRunLog, NULL_RUNLOG, runlog_of
from repro.parallel import Executor, ParallelExecutionError, QuarantinedTask

#: Entry schema version; a mismatch reads as a miss, never an error.
CACHE_VERSION = 1

#: Store marker written once at the root (identifies a directory as a
#: repro cache so ``gc``/``clear`` refuse to run elsewhere).
CACHE_MARKER = "repro-cache.json"

#: Suffix of every entry file.
ENTRY_SUFFIX = ".cache.json"

KIND_RECORD = "record"
KIND_PICKLE = "pickle"


@dataclass
class CacheStats:
    """Hit/miss/store counters for one run (parent process only)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Trials whose key could not be derived (lambda tasks, exotic
    #: params); they execute normally and never touch the store.
    uncacheable: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> Optional[float]:
        """Hits over lookups, or ``None`` when nothing was looked up."""
        if not self.lookups:
            return None
        return self.hits / self.lookups

    def line(self) -> str:
        """One-line summary for the post-run stderr report."""
        text = (f"cache: {self.hits} hits, {self.misses} misses, "
                f"{self.stores} stores")
        ratio = self.hit_ratio
        if ratio is not None:
            text += f" ({ratio:.0%} hit ratio)"
        return text


class TrialCache:
    """Sharded on-disk store of content-addressed trial results."""

    #: Recognized by :mod:`repro.cache.keys` so a cache attached to an
    #: executor or config is omitted from keys like other infrastructure.
    cache_infrastructure = True

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.stats = CacheStats()

    # -- addressing -------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}{ENTRY_SUFFIX}"

    def _ensure_marker(self) -> None:
        marker = self.root / CACHE_MARKER
        if not marker.exists():
            self.root.mkdir(parents=True, exist_ok=True)
            marker.write_text(json.dumps(
                {"version": CACHE_VERSION,
                 "layout": f"objects/<2-hex>/<digest>{ENTRY_SUFFIX}"},
                sort_keys=True) + "\n", encoding="utf-8")

    # -- lookup / store ---------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The entry stored under ``key``, or ``None`` (counted a miss).

        Any unreadable, torn, or version-mismatched entry is a miss: the
        cache may only ever *skip* recomputation it can vouch for.
        """
        path = self._entry_path(key)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if not isinstance(raw, dict) or raw.get("version") != CACHE_VERSION:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return raw

    def put(self, key: str, *, experiment: str, trial: int, kind: str,
            payload: Any, fingerprint: str) -> None:
        """Atomically write one entry (parent process only)."""
        entry = {
            "version": CACHE_VERSION,
            "key": key,
            "experiment": experiment,
            "trial": trial,
            "kind": kind,
            "payload": payload,
            "fingerprint": fingerprint,
        }
        self._ensure_marker()
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
        self.stats.stores += 1

    # -- maintenance ------------------------------------------------------

    def iter_entries(self) -> Iterator[Path]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        yield from sorted(objects.glob(f"*/*{ENTRY_SUFFIX}"))

    def entry_count(self) -> int:
        return sum(1 for _ in self.iter_entries())

    def total_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.iter_entries())

    def _checked_root(self) -> None:
        if not (self.root / CACHE_MARKER).exists():
            raise ValueError(
                f"{self.root} has no {CACHE_MARKER} marker; refusing to "
                f"treat it as a repro cache")

    def gc(self, max_age_days: Optional[float] = None,
           max_bytes: Optional[int] = None) -> int:
        """Delete stale entries; returns how many were removed.

        ``max_age_days`` drops entries older than the cutoff;
        ``max_bytes`` then drops oldest-first until the store fits.
        Age comes from the entry file's mtime — a host-side maintenance
        concern, not part of any result.
        """
        self._checked_root()
        now = time.time()  # simlint: disable=DET001 - host-side gc policy
        entries = [(path.stat().st_mtime, path)
                   for path in self.iter_entries()]
        removed = 0
        kept: List[Tuple[float, Path]] = []
        for mtime, path in entries:
            if (max_age_days is not None
                    and now - mtime > max_age_days * 86400.0):
                path.unlink(missing_ok=True)
                removed += 1
            else:
                kept.append((mtime, path))
        if max_bytes is not None:
            kept.sort()  # oldest first
            total = sum(path.stat().st_size for _, path in kept)
            while kept and total > max_bytes:
                _, path = kept.pop(0)
                total -= path.stat().st_size
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        self._checked_root()
        removed = 0
        for path in self.iter_entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed


def encode_result(value: Any) -> str:
    """Base64-pickled payload for arbitrary study results."""
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_result(text: str) -> Any:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


@dataclass
class TrialKeyer:
    """Per-sweep binding of (cache, experiment, canonical params, code).

    Canonicalizing the task and fingerprinting its code once per sweep —
    not once per trial — keeps the per-trial cost to one SHA-256 over a
    small document.
    """

    cache: TrialCache
    experiment: str
    params: Any
    fingerprint: str

    @classmethod
    def create(cls, cache: Optional[TrialCache], task: Any, *,
               experiment: str, extra: Any = None,
               code_extra: Tuple[Any, ...] = ()) -> Optional["TrialKeyer"]:
        """A keyer for this sweep, or ``None`` when caching cannot apply.

        ``extra`` carries sweep-level parameters that live outside the
        task object (a robust runner's retry/budget policy);
        ``code_extra`` names additional objects (e.g. the runner class)
        whose modules join the fingerprint without entering the key.
        Any :class:`Uncacheable` piece disables caching for the whole
        sweep — counted, never raised.
        """
        if cache is None:
            return None
        try:
            fingerprint = code_fingerprint((task, *code_extra)
                                           if code_extra else task)
            params = {"task": canonicalize(task),
                      "extra": canonicalize(extra)}
        except Uncacheable:
            cache.stats.uncacheable += 1
            return None
        return cls(cache=cache, experiment=experiment, params=params,
                   fingerprint=fingerprint)

    def key(self, trial: int, item: Any) -> Optional[str]:
        try:
            return trial_key(self.experiment, trial, item, self.params,
                             self.fingerprint)
        except Uncacheable:
            self.cache.stats.uncacheable += 1
            return None


def resolve_cache(*candidates: Any) -> Optional[TrialCache]:
    """First cache among explicit values and executor attachments.

    Mirrors how runlogs travel: the CLI attaches one
    :class:`TrialCache` to the executor (``executor.cache``), and every
    sweep that dispatches through that executor picks it up without a
    parameter threading through each study config.
    """
    for candidate in candidates:
        if candidate is None:
            continue
        if isinstance(candidate, TrialCache):
            return candidate
        attached = getattr(candidate, "cache", None)
        if isinstance(attached, TrialCache):
            return attached
    return None


def cached_map(
    executor: Executor,
    task: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    experiment: str,
    cache: Optional[TrialCache] = None,
    runlog: Optional[AnyRunLog] = None,
    on_result: Optional[Callable[[int, Any, bool], None]] = None,
) -> list:
    """``executor.map`` with content-addressed short-circuiting.

    Results come back in item order whatever the completion order, same
    as ``map``.  With no cache resolvable this *is* ``map`` (plus the
    optional ``on_result`` callback, called as ``(index, result,
    was_cached)`` in completion order).  Quarantined placeholders are
    returned but never stored — a host fault says nothing about the
    trial's true result.
    """
    work = list(items)
    cache = resolve_cache(cache, executor)
    if runlog is None:
        runlog = runlog_of(executor)
    keyer = TrialKeyer.create(cache, task, experiment=experiment)
    results: list = [None] * len(work)
    seen = [False] * len(work)
    pending: List[Tuple[int, Any, Optional[str]]] = []
    for index, item in enumerate(work):
        entry = None
        key = keyer.key(index, item) if keyer is not None else None
        if key is not None:
            entry = cache.get(key)  # type: ignore[union-attr]
        if entry is not None and entry.get("kind") == KIND_PICKLE:
            try:
                value = decode_result(entry["payload"])
            except Exception:
                # A torn or stale payload must degrade to a recompute;
                # re-book the optimistic hit as a miss.
                assert cache is not None
                cache.stats.hits -= 1
                cache.stats.misses += 1
                runlog.emit("cache_miss", experiment=experiment,
                            index=index, key=key)
                pending.append((index, item, key))
                continue
            results[index] = value
            seen[index] = True
            runlog.emit("cache_hit", experiment=experiment, index=index,
                        key=key)
            if on_result is not None:
                on_result(index, value, True)
            continue
        if key is not None:
            runlog.emit("cache_miss", experiment=experiment, index=index,
                        key=key)
        pending.append((index, item, key))
    if pending:
        for sub_index, result in executor.run_tasks(
                task, [item for _, item, _ in pending]):
            index, _, key = pending[sub_index]
            results[index] = result
            seen[index] = True
            if (key is not None and cache is not None
                    and not isinstance(result, QuarantinedTask)):
                try:
                    payload = encode_result(result)
                except Exception:
                    cache.stats.uncacheable += 1
                else:
                    cache.put(key, experiment=experiment, trial=index,
                              kind=KIND_PICKLE, payload=payload,
                              fingerprint=keyer.fingerprint  # type: ignore[union-attr]
                              )
                    runlog.emit("cache_store", experiment=experiment,
                                index=index, key=key)
            if on_result is not None:
                on_result(index, result, False)
    if not all(seen):
        missing = [i for i, ok in enumerate(seen) if not ok]
        raise ParallelExecutionError(
            f"executor dropped task indices {missing}")
    return results


__all__ = [
    "CACHE_MARKER",
    "CACHE_VERSION",
    "CacheStats",
    "ENTRY_SUFFIX",
    "KIND_PICKLE",
    "KIND_RECORD",
    "TrialCache",
    "TrialKeyer",
    "cached_map",
    "decode_result",
    "encode_result",
    "resolve_cache",
]
