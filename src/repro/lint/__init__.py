"""simlint: AST-based determinism and sim-invariant linter.

The reproduction's figures are only meaningful if every simulation run is
bit-for-bit repeatable (``repro.sim.core``: "two runs of the same program
produce identical schedules") and if process generators use the event-loop
API correctly.  This package machine-checks those invariants as named,
severity-ranked rules instead of trusting docstring conventions.

Public API:

* :func:`run_lint` — lint a set of paths, returns a :class:`LintReport`.
* :class:`Finding`, :class:`Severity`, :class:`LintReport` — result model.
* :data:`ALL_RULES` — the registered rule set.

Command line::

    python -m repro lint [PATH ...] [--format json] [--select RULE,...]
"""

from repro.lint.engine import LintReport, run_lint
from repro.lint.findings import Finding, Severity
from repro.lint.rules import ALL_RULES, Rule, rules_by_id

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintReport",
    "Rule",
    "Severity",
    "run_lint",
    "rules_by_id",
]
