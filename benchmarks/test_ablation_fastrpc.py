"""Ablation: offload win vs FastRPC invocation cost.

The §4.2 trade-off: per-call overhead eats the DSP's advantage.  At the
measured ~0.3 ms invoke cost offloading wins; at ~10 ms per call it
loses — quantifying how much batching/latency engineering the prototype
depends on.
"""

import dataclasses

from repro.analysis import render_table
from repro.device import Device, PIXEL2
from repro.dsp import DspScriptExecutor, FastRpcChannel
from repro.netstack import Link
from repro.sim import Environment
from repro.web import BrowserEngine
from repro.workloads import generate_corpus
from repro.workloads.regexcorpus import RegexWorkloadFactory


def load(page, invoke_s=None):
    env = Environment()
    device = Device(env, PIXEL2, governor="OD")
    link = Link(env)
    if invoke_s is None:
        browser = BrowserEngine(env, device, link)
    else:
        channel = FastRpcChannel(env, device)
        channel.dsp = dataclasses.replace(channel.dsp,
                                          fastrpc_invoke_s=invoke_s)
        browser = BrowserEngine(env, device, link,
                                executor=DspScriptExecutor(channel))
    return env.run(env.process(browser.load(page))).plt


def run_ablation():
    pages = generate_corpus(3, categories=("sports",),
                            factory=RegexWorkloadFactory())
    cpu = sum(load(p) for p in pages) / len(pages)
    rows = []
    for invoke_ms in (0.1, 0.3, 2.0, 10.0):
        dsp = sum(load(p, invoke_s=invoke_ms / 1e3) for p in pages) / len(pages)
        rows.append((invoke_ms, cpu, dsp, 1 - dsp / cpu))
    return rows


def test_ablation_fastrpc(benchmark, fig_printer):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = render_table(
        ["Invoke cost (ms)", "CPU ePLT (s)", "DSP ePLT (s)", "Win"],
        [[ms, f"{cpu:.2f}", f"{dsp:.2f}", f"{win:.1%}"]
         for ms, cpu, dsp, win in rows],
    )
    fig_printer("Ablation: offload win vs FastRPC overhead", table)
    wins = {ms: win for ms, _, _, win in rows}
    assert wins[0.1] > wins[10.0]
    assert wins[0.3] > 0.05    # the measured regime wins
    assert wins[10.0] < 0.02   # pathological overhead erases the win
