"""Cold vs warm sweep through the content-addressed trial cache.

Runs the same kernel-heavy trial batch twice against one ``--cache``
directory: the cold pass executes and stores every trial, the warm pass
must replay every one from the store without touching the executor.  The
trajectory (``cache.speedup.*``) feeds the perf budget check in CI, and
the byte-identity assertion is the cache's core guarantee — warmth must
be invisible in the journal.
"""

from __future__ import annotations

import json
import time

from repro.cache import TrialCache
from repro.core.background import make_rng
from repro.core.experiments import RobustTrialRunner
from repro.sim import Environment

TRIALS = 6


def kernel_heavy_trial(seed: int) -> float:
    """~0.3s of pure event-loop work: the shape of every figure trial."""
    env = Environment()
    rng = make_rng(seed)

    def spin():
        for _ in range(200_000):
            yield env.timeout(rng.uniform(0.1, 1.0))

    env.run(env.process(spin()))
    return env.now


def run_batch(cache_root, journal_path) -> tuple:
    cache = TrialCache(cache_root)
    runner = RobustTrialRunner(trials=TRIALS, experiment="cachebench",
                               journal_path=journal_path, cache=cache)
    start = time.perf_counter()  # simlint: disable=DET001
    report = runner.run(kernel_heavy_trial)
    elapsed = time.perf_counter() - start  # simlint: disable=DET001
    assert report.failures == 0
    return elapsed, cache.stats


def test_cache_speedup(tmp_path, fig_printer, perf_track):
    cache_root = tmp_path / "cache"
    cold_journal = tmp_path / "cold.json"
    warm_journal = tmp_path / "warm.json"
    cold_s, cold_stats = run_batch(cache_root, cold_journal)
    warm_s, warm_stats = run_batch(cache_root, warm_journal)
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    perf_track("cache.speedup.cold_s", cold_s, trials=TRIALS)
    perf_track("cache.speedup.warm_s", warm_s, trials=TRIALS)
    body = "\n".join([
        f"trials            {TRIALS}",
        f"cold (execute)    {cold_s:8.3f} s   {cold_stats.line()}",
        f"warm (replay)     {warm_s:8.3f} s   {warm_stats.line()}",
        f"speedup           {speedup:8.1f}x",
    ])
    fig_printer("Result cache: cold vs warm sweep trajectory", body)

    # The warm pass replayed everything: full hits, no executor work.
    assert warm_stats.hit_ratio == 1.0
    assert warm_stats.stores == 0

    # Warmth must be invisible in the journal bytes.
    assert cold_journal.read_bytes() == warm_journal.read_bytes()
    payload = json.loads(cold_journal.read_text())
    assert len(payload["records"]) == TRIALS

    # A replay is a key derivation plus a JSON read; well under the cold
    # cost of ~0.3s of kernel work per trial.
    assert warm_s < cold_s / 4
