"""Fig 4b: streaming QoE vs memory capacity."""

from repro.analysis import render_table
from repro.core.studies import VideoStudy, VideoStudyConfig
from repro.video import VideoSpec


def run_fig4b():
    study = VideoStudy(VideoStudyConfig(clip=VideoSpec(duration_s=60),
                                        trials=1))
    return study.vs_memory(sizes_gb=(0.5, 1.0, 1.5, 2.0))


def test_fig4b(benchmark, fig_printer):
    points = benchmark.pedantic(run_fig4b, rounds=1, iterations=1)
    table = render_table(
        ["Memory (GB)", "Startup (s)", "Stall ratio"],
        [[p.label, f"{p.startup.mean:.2f}", f"{p.stall_ratio.mean:.3f}"]
         for p in points],
    )
    fig_printer("Fig 4b: YouTube vs memory (Nexus4)", table)
    by_gb = {p.label: p for p in points}
    # Startup rises under pressure; zero stalls throughout.
    assert by_gb[0.5].startup.mean > 1.3 * by_gb[2.0].startup.mean
    assert all(p.stall_ratio.mean < 0.03 for p in points)
