"""Discrete-event simulation kernel.

A self-contained, deterministic event-driven simulation core in the style of
SimPy: simulated time advances only through scheduled events, and concurrent
behaviours are written as Python generator *processes* that yield events.

Public API:

* :class:`Environment` — the event loop and simulated clock.
* :class:`Event`, :class:`Timeout`, :class:`Process` — awaitable events.
* :class:`AllOf`, :class:`AnyOf` — event composition.
* :class:`Resource` — limited-capacity resource with FIFO queueing.
* :class:`Store` — producer/consumer buffer of Python objects.
* :class:`Container` — continuous-level reservoir (e.g. playback buffer).
* :class:`Interrupt` — exception injected into a process by `Process.interrupt`.
* :class:`SimDeadlock` — event list drained while processes were still alive.
* :class:`StepBudgetExceeded` — ``run(max_steps=...)`` guard tripped.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimDeadlock,
    SimulationError,
    StepBudgetExceeded,
    Timeout,
)
from repro.sim.resources import Container, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimDeadlock",
    "SimulationError",
    "StepBudgetExceeded",
    "Store",
    "Timeout",
]
