"""Serial vs multiprocess trial fan-out: speedup trajectory + identity.

Runs the same seeded trial batch through ``--jobs 1`` and ``--jobs 4``
executors, printing the wall-time trajectory and asserting that the
journals are byte-identical — the executor layer's core guarantee.  The
speedup floor scales with the host's core count so the benchmark stays
meaningful on small CI machines.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.background import make_rng
from repro.core.experiments import RobustTrialRunner
from repro.parallel import get_executor
from repro.sim import Environment

TRIALS = 8
JOBS = 4


def kernel_heavy_trial(seed: int) -> float:
    """~0.3s of pure event-loop work: the shape of every figure trial."""
    env = Environment()
    rng = make_rng(seed)

    def spin():
        for _ in range(200_000):
            yield env.timeout(rng.uniform(0.1, 1.0))

    env.run(env.process(spin()))
    return env.now


def run_batch(jobs: int, journal_path) -> float:
    runner = RobustTrialRunner(trials=TRIALS, experiment="speedup",
                               journal_path=journal_path,
                               executor=get_executor(jobs))
    start = time.perf_counter()  # simlint: disable=DET001
    report = runner.run(kernel_heavy_trial)
    elapsed = time.perf_counter() - start  # simlint: disable=DET001
    assert report.failures == 0
    return elapsed


def test_parallel_speedup(tmp_path, fig_printer, perf_track):
    serial_journal = tmp_path / "serial.json"
    pooled_journal = tmp_path / "pooled.json"
    serial_s = run_batch(1, serial_journal)
    pooled_s = run_batch(JOBS, pooled_journal)
    speedup = serial_s / pooled_s

    cores = os.cpu_count() or 1
    perf_track("parallel.speedup.serial_s", serial_s, cores=cores,
               trials=TRIALS)
    perf_track("parallel.speedup.pooled_s", pooled_s, cores=cores,
               trials=TRIALS, jobs=JOBS)
    body = "\n".join([
        f"trials            {TRIALS}",
        f"host cores        {cores}",
        f"--jobs 1          {serial_s:8.3f} s",
        f"--jobs {JOBS}          {pooled_s:8.3f} s",
        f"speedup           {speedup:8.2f}x",
    ])
    fig_printer("Parallel executor: serial vs 4-worker trajectory", body)

    # Determinism is non-negotiable: worker count must be invisible in
    # the journal bytes.
    assert serial_journal.read_bytes() == pooled_journal.read_bytes()
    payload = json.loads(serial_journal.read_text())
    assert len(payload["records"]) == TRIALS

    # Speedup floor: ~60% parallel efficiency on however many cores the
    # pool can actually use (2.4x on >=4 cores, 1.2x on 2 cores).
    usable = min(JOBS, cores)
    if usable > 1:
        assert speedup > 0.6 * usable
