"""Web browsing substrate: WProf-style page loads on the device model.

* :class:`~repro.web.browser.BrowserEngine` — loads a synthetic page over
  the simulated network on the simulated device, producing a
  :class:`~repro.web.metrics.PageLoadResult` with the paper's metrics
  (PLT, compute vs network on the critical path, scripting share).
* :class:`~repro.web.browser.CpuScriptExecutor` — default all-on-CPU
  script execution; :mod:`repro.dsp` provides the offloading executor.
* :class:`~repro.web.costmodel.BrowserCostModel` — calibrated activity
  costs.
"""

from repro.web.browser import BrowserEngine, CpuScriptExecutor
from repro.web.costmodel import REFERENCE_RATE, BrowserCostModel
from repro.web.metrics import ActivityRecord, PageLoadResult

__all__ = [
    "ActivityRecord",
    "BrowserCostModel",
    "BrowserEngine",
    "CpuScriptExecutor",
    "PageLoadResult",
    "REFERENCE_RATE",
]
