"""Ablation: the read-ahead buffer masks network degradation (§3.2).

A mid-stream throughput collapse (the LAN drops below the video bitrate
for 40 s) is invisible with YouTube's 120 s read-ahead but causes heavy
stalling with a near-empty buffer — why streaming tolerates slow/flaky
paths that would destroy an interactive call.
"""

from repro.analysis import render_table
from repro.device import Device, NEXUS4
from repro.netstack import Link, LinkSpec
from repro.sim import Environment
from repro.video import PlayerConfig, StreamingPlayer, VideoSpec


class OutageLink(Link):
    """Link whose capacity collapses during [t0, t1)."""

    def __init__(self, env, spec, outage=(30.0, 70.0), degraded_bps=1.0e6):
        super().__init__(env, spec)
        self.outage = outage
        self.degraded_bps = degraded_bps

    def serialization_time(self, nbytes: float) -> float:
        start, end = self.outage
        if start <= self.env.now < end:
            return nbytes * 8.0 / self.degraded_bps
        return super().serialization_time(nbytes)


def play_with_read_ahead(read_ahead_s: float):
    env = Environment()
    device = Device(env, NEXUS4, governor="OD")
    link = OutageLink(env, LinkSpec())
    config = PlayerConfig(read_ahead_s=read_ahead_s)
    player = StreamingPlayer(env, device, link, VideoSpec(duration_s=120),
                             config)
    return env.run(env.process(player.run()))


def run_ablation():
    return {
        horizon: play_with_read_ahead(horizon)
        for horizon in (2.0, 30.0, 120.0)
    }


def test_ablation_prefetch(benchmark, fig_printer):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = render_table(
        ["Read-ahead (s)", "Stall ratio", "Startup (s)"],
        [[h, f"{r.stall_ratio:.3f}", f"{r.startup_latency_s:.2f}"]
         for h, r in sorted(results.items())],
    )
    fig_printer("Ablation: prefetch horizon vs a 40 s network outage", table)
    # A 120 s buffer rides out the outage; a 2 s buffer stalls hard.
    assert results[120.0].stall_ratio < 0.03
    assert results[2.0].stall_ratio > 0.15
    assert results[30.0].stall_ratio <= results[2.0].stall_ratio
