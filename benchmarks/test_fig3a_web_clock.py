"""Fig 3a: Web PLT across the Nexus4 DVFS ladder, with §3.1 breakdown."""

from repro.analysis import render_table
from repro.core.studies import WebStudy, WebStudyConfig
from repro.device import NEXUS4_LADDER


def run_fig3a():
    study = WebStudy(WebStudyConfig(n_pages=5, trials=1))
    return study.plt_vs_clock(ladder=NEXUS4_LADDER)


def test_fig3a(benchmark, fig_printer):
    points = benchmark.pedantic(run_fig3a, rounds=1, iterations=1)
    table = render_table(
        ["Clock (MHz)", "PLT (s)", "CP compute (s)", "CP network (s)",
         "Scripting share", "Layout+paint"],
        [[p.clock_mhz, f"{p.plt.mean:.2f} ± {p.plt.stdev:.2f}",
          f"{p.compute_time.mean:.2f}", f"{p.network_time.mean:.2f}",
          f"{p.scripting_share:.1%}", f"{p.layout_paint_share:.1%}"]
         for p in points],
    )
    fig_printer("Fig 3a: PLT vs clock frequency (Nexus4)", table)

    by_clock = {p.clock_mhz: p for p in points}
    low, high = by_clock[384], by_clock[1512]
    # Paper: 4× PLT over the ladder (we accept ≥2.8×).
    assert low.plt.mean / high.plt.mean > 2.8
    # Compute and network both inflate at the low end (§3.1).
    assert low.compute_time.mean > 3 * high.compute_time.mean
    assert low.network_time.mean > 1.3 * high.network_time.mean
    # PLT falls monotonically (within jitter) as the clock rises.
    plts = [p.plt.mean for p in points]
    assert all(a >= b * 0.97 for a, b in zip(plts, plts[1:]))
    # Scripting dominates compute; layout+paint stay ~4 %.
    assert all(p.scripting_share > 0.35 for p in points)
    assert all(p.layout_paint_share < 0.10 for p in points)
