"""Link-layer fault injectors: burst loss, flaps/outages, latency spikes.

Each injector is a simulation process driving the degradation overlay of
one :class:`repro.netstack.Link` (``set_loss`` / ``take_down`` /
``set_extra_delay``) from its own seeded RNG stream, recording every
transition into the trial's :class:`~repro.faults.plan.FaultTrace`.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.faults.plan import (
    BurstLossSpec,
    FaultTrace,
    LatencySpikeSpec,
    LinkFlapSpec,
)
from repro.netstack import Link
from repro.sim import Environment, Event


class GilbertElliottLossInjector:
    """Two-state Markov burst loss: good ↔ bad with exponential dwells."""

    name = "ge-loss"

    def __init__(self, env: Environment, link: Link, spec: BurstLossSpec, *,
                 rng: random.Random, trace: FaultTrace):
        self.env = env
        self.link = link
        self.spec = spec
        self.rng = rng
        self.trace = trace
        env.process(self._run())

    def _run(self) -> Iterator[Event]:
        spec = self.spec
        if spec.start_s > 0:
            yield self.env.timeout(spec.start_s)
        self.link.set_loss(spec.p_good)
        self.trace.record(self.env, self.name, "good", f"loss={spec.p_good}")
        bad = False
        while True:
            mean = spec.mean_bad_s if bad else spec.mean_good_s
            yield self.env.timeout(self.rng.expovariate(1.0 / mean))
            bad = not bad
            loss = spec.p_bad if bad else spec.p_good
            self.link.set_loss(loss)
            self.trace.record(self.env, self.name,
                              "bad" if bad else "good", f"loss={loss}")


class LinkFlapInjector:
    """Alternating up/outage cycles with exponential dwell times."""

    name = "link-flap"

    def __init__(self, env: Environment, link: Link, spec: LinkFlapSpec, *,
                 rng: random.Random, trace: FaultTrace):
        self.env = env
        self.link = link
        self.spec = spec
        self.rng = rng
        self.trace = trace
        env.process(self._run())

    def _run(self) -> Iterator[Event]:
        spec = self.spec
        if spec.start_s > 0:
            yield self.env.timeout(spec.start_s)
        while True:
            yield self.env.timeout(self.rng.expovariate(1.0 / spec.mean_up_s))
            self.link.take_down()
            self.trace.record(self.env, self.name, "down")
            yield self.env.timeout(self.rng.expovariate(1.0 / spec.mean_down_s))
            self.link.bring_up()
            self.trace.record(self.env, self.name, "up")


class LatencySpikeInjector:
    """Transient extra one-way delay layered onto every transfer."""

    name = "latency-spike"

    def __init__(self, env: Environment, link: Link, spec: LatencySpikeSpec, *,
                 rng: random.Random, trace: FaultTrace):
        self.env = env
        self.link = link
        self.spec = spec
        self.rng = rng
        self.trace = trace
        env.process(self._run())

    def _run(self) -> Iterator[Event]:
        spec = self.spec
        if spec.start_s > 0:
            yield self.env.timeout(spec.start_s)
        while True:
            yield self.env.timeout(
                self.rng.expovariate(1.0 / spec.mean_interval_s)
            )
            self.link.set_extra_delay(spec.spike_s)
            self.trace.record(self.env, self.name, "spike",
                              f"extra={spec.spike_s}")
            yield self.env.timeout(spec.spike_duration_s)
            self.link.set_extra_delay(0.0)
            self.trace.record(self.env, self.name, "clear")


__all__ = [
    "GilbertElliottLossInjector",
    "LatencySpikeInjector",
    "LinkFlapInjector",
]
