"""Fig 7b: CDF of power during JS execution, CPU vs DSP."""

from repro.analysis import cdf_points
from repro.analysis.stats import median
from repro.core.studies import OffloadStudy, OffloadStudyConfig


def run_fig7b():
    study = OffloadStudy(OffloadStudyConfig(n_pages=4, trials=1))
    return study.power_distributions()


def _sparse_cdf(samples, n=8):
    points = cdf_points(samples)
    step = max(1, len(points) // n)
    return points[::step]


def test_fig7b(benchmark, fig_printer):
    cpu_samples, dsp_samples = benchmark.pedantic(run_fig7b, rounds=1,
                                                  iterations=1)
    lines = ["CPU CDF (W, p):"]
    lines += [f"  {w:5.2f} {p:4.2f}" for w, p in _sparse_cdf(cpu_samples)]
    lines += ["DSP CDF (W, p):"]
    lines += [f"  {w:5.2f} {p:4.2f}" for w, p in _sparse_cdf(dsp_samples)]
    ratio = median(cpu_samples) / median(dsp_samples)
    lines.append(f"median CPU {median(cpu_samples):.2f} W / "
                 f"median DSP {median(dsp_samples):.2f} W = {ratio:.1f}x "
                 f"(paper: ~4x)")
    fig_printer("Fig 7b: power during JS execution (CPU vs DSP)", "\n".join(lines))

    assert 2.5 < ratio < 6.0
    assert median(dsp_samples) < 0.5
