"""Thompson NFA bytecode and the AST → bytecode compiler.

Instructions (classic Pike VM set):

* ``CHAR c``   — consume one character equal to ``c``
* ``RANGE iv`` — consume one character inside the intervals ``iv``
* ``ANY``      — consume any character except ``\\n``
* ``SPLIT a b``— fork; prefer branch ``a`` (encodes greediness)
* ``JMP a``    — jump
* ``SAVE n``   — store the current position in capture slot ``n``
* ``ASSERT k`` — zero-width check (bol/eol/wb/nwb)
* ``MATCH``    — accept

Counted repeats are expanded structurally (bounds capped at parse time),
so the VM never tracks repeat counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.regexlib import parse as ast
from repro.regexlib.errors import RegexError

# Opcodes ---------------------------------------------------------------

CHAR = "char"
RANGE = "range"
ANY = "any"
SPLIT = "split"
JMP = "jmp"
SAVE = "save"
ASSERT = "assert"
MATCH = "match"


@dataclass
class Inst:
    """One VM instruction; ``x``/``y`` are jump targets or payload."""

    op: str
    x: object = None
    y: object = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Inst({self.op}, {self.x!r}, {self.y!r})"


class Program:
    """Compiled pattern: instruction list plus metadata."""

    def __init__(self, insts: list[Inst], n_groups: int, pattern: str):
        self.insts = insts
        self.n_groups = n_groups
        self.pattern = pattern
        self.has_assertions = any(inst.op == ASSERT for inst in insts)
        self.has_word_boundary = any(
            inst.op == ASSERT and inst.x in ("wb", "nwb") for inst in insts
        )

    def __len__(self) -> int:
        return len(self.insts)

    @property
    def n_slots(self) -> int:
        """Capture slots: 2 per group plus the whole-match pair."""
        return 2 * (self.n_groups + 1)


class _Compiler:
    """Emits instructions for an AST via structural recursion."""

    def __init__(self) -> None:
        self.insts: list[Inst] = []

    def emit(self, op: str, x: object = None, y: object = None) -> int:
        self.insts.append(Inst(op, x, y))
        return len(self.insts) - 1

    def compile(self, node: ast.Node) -> None:
        method = getattr(self, f"_compile_{type(node).__name__.lower()}", None)
        if method is None:
            raise RegexError(f"cannot compile node {node!r}")
        method(node)

    # -- leaves ----------------------------------------------------------

    def _compile_empty(self, node: ast.Empty) -> None:
        pass

    def _compile_literal(self, node: ast.Literal) -> None:
        self.emit(CHAR, node.char)

    def _compile_charclass(self, node: ast.CharClass) -> None:
        self.emit(RANGE, node.intervals)

    def _compile_dot(self, node: ast.Dot) -> None:
        self.emit(ANY)

    def _compile_anchor(self, node: ast.Anchor) -> None:
        self.emit(ASSERT, node.kind)

    # -- composites -------------------------------------------------------

    def _compile_concat(self, node: ast.Concat) -> None:
        for part in node.parts:
            self.compile(part)

    def _compile_alternate(self, node: ast.Alternate) -> None:
        jumps: list[int] = []
        for option in node.options[:-1]:
            split = self.emit(SPLIT)
            self.insts[split].x = len(self.insts)
            self.compile(option)
            jumps.append(self.emit(JMP))
            self.insts[split].y = len(self.insts)
        self.compile(node.options[-1])
        end = len(self.insts)
        for jump in jumps:
            self.insts[jump].x = end

    def _compile_group(self, node: ast.Group) -> None:
        if node.index is None:
            self.compile(node.child)
            return
        self.emit(SAVE, 2 * node.index)
        self.compile(node.child)
        self.emit(SAVE, 2 * node.index + 1)

    def _compile_repeat(self, node: ast.Repeat) -> None:
        low, high, lazy = node.min, node.max, node.lazy
        if (low, high) == (0, 1):
            self._quest(node.child, lazy)
        elif (low, high) == (0, None):
            self._star(node.child, lazy)
        elif (low, high) == (1, None):
            self._plus(node.child, lazy)
        else:
            for _ in range(low):
                self.compile(node.child)
            if high is None:
                self._star(node.child, lazy)
            else:
                # (high - low) optional copies; nest so that matching stops
                # cleanly at any point.
                ends: list[int] = []
                for _ in range(high - low):
                    split = self.emit(SPLIT)
                    if lazy:
                        self.insts[split].y = len(self.insts)
                        ends.append(split)  # x patched to end
                    else:
                        self.insts[split].x = len(self.insts)
                        ends.append(split)  # y patched to end
                    self.compile(node.child)
                end = len(self.insts)
                for split in ends:
                    if lazy:
                        self.insts[split].x = end
                    else:
                        self.insts[split].y = end

    def _quest(self, child: ast.Node, lazy: bool) -> None:
        split = self.emit(SPLIT)
        body = len(self.insts)
        self.compile(child)
        end = len(self.insts)
        if lazy:
            self.insts[split].x, self.insts[split].y = end, body
        else:
            self.insts[split].x, self.insts[split].y = body, end

    def _star(self, child: ast.Node, lazy: bool) -> None:
        split = self.emit(SPLIT)
        body = len(self.insts)
        self.compile(child)
        self.emit(JMP, split)
        end = len(self.insts)
        if lazy:
            self.insts[split].x, self.insts[split].y = end, body
        else:
            self.insts[split].x, self.insts[split].y = body, end

    def _plus(self, child: ast.Node, lazy: bool) -> None:
        body = len(self.insts)
        self.compile(child)
        split = self.emit(SPLIT)
        end = len(self.insts)
        if lazy:
            self.insts[split].x, self.insts[split].y = end, body
        else:
            self.insts[split].x, self.insts[split].y = body, end


def compile_ast(node: ast.Node, n_groups: int, pattern: str) -> Program:
    """Compile a parsed AST into a :class:`Program`.

    The whole match is wrapped in capture slots 0/1 so the VM reports the
    overall span the same way it reports group spans.
    """
    compiler = _Compiler()
    compiler.emit(SAVE, 0)
    compiler.compile(node)
    compiler.emit(SAVE, 1)
    compiler.emit(MATCH)
    return Program(compiler.insts, n_groups, pattern)


def compile_pattern(pattern: str) -> Program:
    """Parse and compile ``pattern`` in one step."""
    node, n_groups = ast.parse(pattern)
    return compile_ast(node, n_groups, pattern)


__all__ = [
    "ANY",
    "ASSERT",
    "CHAR",
    "Inst",
    "JMP",
    "MATCH",
    "Program",
    "RANGE",
    "SAVE",
    "SPLIT",
    "compile_ast",
    "compile_pattern",
]
