"""Fig 3c: Web PLT vs core count — browsers use no more than two cores."""

from repro.analysis import ascii_bars
from repro.core.studies import WebStudy, WebStudyConfig


def run_fig3c():
    study = WebStudy(WebStudyConfig(n_pages=5, trials=1))
    return study.plt_vs_cores(cores=(1, 2, 3, 4))


def test_fig3c(benchmark, fig_printer):
    rows = benchmark.pedantic(run_fig3c, rounds=1, iterations=1)
    body = ascii_bars([f"{n} core(s)" for n, _ in rows],
                      [s.mean for _, s in rows], unit="s")
    fig_printer("Fig 3c: PLT vs number of cores (Nexus4)", body)
    by_cores = dict(rows)
    # Only the 2-core step matters; 2→4 is a modest change.
    assert by_cores[1].mean > 1.1 * by_cores[4].mean
    assert by_cores[2].mean < 1.3 * by_cores[4].mean
    assert by_cores[3].mean < 1.2 * by_cores[4].mean
