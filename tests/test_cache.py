"""repro.cache unit coverage: keys, fingerprints, the store, cached_map.

The contracts under test, in dependency order:

* canonicalization is total-order stable (insertion order never leaks
  into a key) and rejects values without a stable cross-run identity;
* the code fingerprint flips when a transitively imported module
  changes and holds when an unrelated one does;
* the store round-trips entries atomically, treats anything it cannot
  vouch for as a miss, and confines gc/clear to marked cache roots;
* ``cached_map`` is ``executor.map`` with short-circuiting: hits skip
  execution, misses dispatch and store, order is preserved.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import (
    CACHE_MARKER,
    CACHE_VERSION,
    KIND_PICKLE,
    TrialCache,
    TrialKeyer,
    Uncacheable,
    cached_map,
    canonical_json,
    canonicalize,
    clear_caches,
    code_fingerprint,
    encode_result,
    fingerprint_modules,
    resolve_cache,
    trial_key,
)
from repro.device import NEXUS4
from repro.parallel import SerialExecutor


# -- canonicalization -------------------------------------------------------

def module_level_task(seed: int) -> int:
    return seed * 2


@dataclass(frozen=True)
class ScaleTask:
    """Canonicalizable module-level task for cached_map tests."""

    scale: int

    def __call__(self, seed: int) -> int:
        CALLS.append(seed)
        return seed * self.scale


CALLS: list = []


class WithParams:
    """Opts into keys via the cache_params protocol."""

    def __init__(self, wanted: int, hidden: object):
        self.wanted = wanted
        self.hidden = hidden  # never canonicalizable, never asked

    def cache_params(self) -> dict:
        return {"wanted": self.wanted}


def test_scalars_pass_through():
    for value in (None, True, 0, 3, "x", 2.5):
        assert canonicalize(value) == value


def test_dict_and_set_orders_never_reach_the_canonical_form():
    a = canonicalize({"b": 1, "a": 2, "c": {3, 1, 2}})
    b = canonicalize({"c": {2, 3, 1}, "a": 2, "b": 1})
    assert a == b
    assert canonical_json(a) == canonical_json(b)


def test_dataclasses_carry_their_qualified_name():
    canon = canonicalize(ScaleTask(scale=3))
    assert canon[0] == "dc"
    assert canon[1].endswith(":ScaleTask")
    assert canon[2] == {"scale": 3}


def test_device_spec_dataclass_is_canonicalizable():
    canon = canonicalize(NEXUS4)
    assert canon[0] == "dc"
    assert canonical_json(canon) == canonical_json(canonicalize(NEXUS4))


def test_cache_params_protocol_wins_over_introspection():
    canon = canonicalize(WithParams(7, hidden=object()))
    assert canon[0] == "params"
    assert canon[2] == ["map", [["wanted", 7]]]


def test_module_level_functions_have_a_stable_identity():
    canon = canonicalize(module_level_task)
    assert canon == ["fn", f"{__name__}:module_level_task"]


def test_lambdas_and_local_functions_are_uncacheable():
    with pytest.raises(Uncacheable):
        canonicalize(lambda s: s)

    def local(s):
        return s

    with pytest.raises(Uncacheable):
        canonicalize(local)


def test_arbitrary_objects_are_uncacheable():
    with pytest.raises(Uncacheable):
        canonicalize(object())


def test_infrastructure_is_omitted_not_rejected():
    executor = SerialExecutor()
    assert canonicalize(executor) is None
    assert canonicalize({"executor": executor, "n": 3}) == [
        "map", [["n", 3]]]
    assert canonicalize([1, executor, 2]) == ["seq", [1, 2]]


# -- key stability (hypothesis) ---------------------------------------------

_params = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(), st.floats(allow_nan=False,
                                       allow_infinity=False),
              st.text(max_size=8), st.booleans(), st.none()),
    max_size=5,
)


@settings(max_examples=50, deadline=None)
@given(params=_params, experiment=st.text(min_size=1, max_size=16),
       trial=st.integers(min_value=0, max_value=10_000),
       item=st.integers())
def test_trial_key_is_deterministic_and_order_free(params, experiment,
                                                   trial, item):
    canon = canonicalize(params)
    reordered = canonicalize(dict(reversed(list(params.items()))))
    key = trial_key(experiment, trial, item, canon, "f" * 16)
    assert key == trial_key(experiment, trial, item, reordered, "f" * 16)
    assert len(key) == 64 and set(key) <= set("0123456789abcdef")


@settings(max_examples=50, deadline=None)
@given(experiment=st.text(min_size=1, max_size=16),
       trial=st.integers(min_value=0, max_value=10_000))
def test_trial_key_separates_trials_and_fingerprints(experiment, trial):
    base = trial_key(experiment, trial, trial, None, "a" * 16)
    assert base != trial_key(experiment, trial + 1, trial, None, "a" * 16)
    assert base != trial_key(experiment, trial, trial, None, "b" * 16)
    assert base != trial_key(experiment + "x", trial, trial, None, "a" * 16)


# -- code fingerprints ------------------------------------------------------

def _write_pkg(root, b_body="def helper():\n    return 1\n"):
    pkg = root / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "a.py").write_text("from pkg.b import helper\n\n"
                              "def trial(seed):\n"
                              "    return helper() + seed\n")
    (pkg / "b.py").write_text(b_body)
    (pkg / "c.py").write_text("UNRELATED = True\n")
    return pkg


def test_fingerprint_flips_on_dependency_edit_only(tmp_path):
    _write_pkg(tmp_path)
    clear_caches()
    before = fingerprint_modules(["pkg.a"], root=tmp_path)

    # Editing the imported module must flip the fingerprint...
    _write_pkg(tmp_path, b_body="def helper():\n    return 2\n")
    clear_caches()
    after = fingerprint_modules(["pkg.a"], root=tmp_path)
    assert after != before

    # ...and editing an unrelated module must not.
    (tmp_path / "pkg" / "c.py").write_text("UNRELATED = False\n")
    clear_caches()
    assert fingerprint_modules(["pkg.a"], root=tmp_path) == after
    clear_caches()  # leave no tmp-path models behind for other tests


def test_fingerprint_is_memoized_per_start_set(tmp_path):
    _write_pkg(tmp_path)
    clear_caches()
    first = fingerprint_modules(["pkg.a"], root=tmp_path)
    assert fingerprint_modules(["pkg.a"], root=tmp_path) == first
    assert fingerprint_modules(["pkg.c"], root=tmp_path) != first
    clear_caches()


def test_unlocatable_start_module_is_uncacheable(tmp_path):
    (tmp_path / "empty").mkdir()
    clear_caches()
    with pytest.raises(Uncacheable):
        fingerprint_modules(["no.such.module"], root=tmp_path / "empty")
    clear_caches()


def test_code_fingerprint_covers_the_trial_functions_own_module():
    # The test module lives outside the package root; its source is
    # resolved through sys.modules and still yields a fingerprint.
    fingerprint = code_fingerprint(module_level_task)
    assert len(fingerprint) == 16
    assert fingerprint == code_fingerprint(ScaleTask(scale=2))


# -- the store --------------------------------------------------------------

def test_put_get_round_trip_and_marker(tmp_path):
    cache = TrialCache(tmp_path / "cache")
    key = "ab" + "0" * 62
    cache.put(key, experiment="e", trial=3, kind=KIND_PICKLE,
              payload=encode_result(41), fingerprint="f" * 16)
    assert (tmp_path / "cache" / CACHE_MARKER).exists()
    entry = cache.get(key)
    assert entry is not None
    assert (entry["experiment"], entry["trial"]) == ("e", 3)
    assert cache.stats.hits == 1 and cache.stats.stores == 1
    assert cache.entry_count() == 1
    assert cache.total_bytes() > 0


def test_absent_torn_and_versioned_entries_all_read_as_misses(tmp_path):
    cache = TrialCache(tmp_path)
    assert cache.get("aa" + "0" * 62) is None  # absent
    path = cache._entry_path("ab" + "0" * 62)
    path.parent.mkdir(parents=True)
    path.write_text("{not json")  # torn
    assert cache.get("ab" + "0" * 62) is None
    path.write_text(json.dumps({"version": CACHE_VERSION + 1}))  # future
    assert cache.get("ab" + "0" * 62) is None
    assert cache.stats.misses == 3 and cache.stats.hits == 0
    assert cache.stats.hit_ratio == 0.0


def test_gc_and_clear_refuse_unmarked_directories(tmp_path):
    stranger = tmp_path / "not-a-cache"
    stranger.mkdir()
    (stranger / "precious.txt").write_text("data")
    cache = TrialCache(stranger)
    with pytest.raises(ValueError):
        cache.gc(max_age_days=0)
    with pytest.raises(ValueError):
        cache.clear()
    assert (stranger / "precious.txt").exists()


def test_gc_drops_old_then_oldest_until_fits(tmp_path):
    import os

    cache = TrialCache(tmp_path)
    keys = [f"{i:02x}" + "0" * 62 for i in range(4)]
    for i, key in enumerate(keys):
        cache.put(key, experiment="e", trial=i, kind=KIND_PICKLE,
                  payload=encode_result(i), fingerprint="f" * 16)
    # Age the first two entries far into the past.
    for key in keys[:2]:
        os.utime(cache._entry_path(key), (1.0, 1.0))
    assert cache.gc(max_age_days=365) == 2
    assert cache.entry_count() == 2
    assert cache.gc(max_bytes=0) == 2
    assert cache.entry_count() == 0
    assert TrialCache(tmp_path).clear() == 0


def test_stats_line_format(tmp_path):
    cache = TrialCache(tmp_path)
    assert cache.stats.line() == "cache: 0 hits, 0 misses, 0 stores"
    cache.stats.hits, cache.stats.misses, cache.stats.stores = 3, 1, 1
    assert cache.stats.line() == ("cache: 3 hits, 1 misses, 1 stores "
                                  "(75% hit ratio)")


def test_resolve_cache_prefers_explicit_then_attached(tmp_path):
    explicit = TrialCache(tmp_path / "a")
    attached = TrialCache(tmp_path / "b")
    executor = SerialExecutor()
    executor.cache = attached
    assert resolve_cache(None, executor) is attached
    assert resolve_cache(explicit, executor) is explicit
    assert resolve_cache(None, SerialExecutor()) is None
    assert resolve_cache() is None


# -- cached_map -------------------------------------------------------------

def test_cached_map_hits_skip_execution_and_preserve_order(tmp_path):
    cache = TrialCache(tmp_path)
    task = ScaleTask(scale=3)
    CALLS.clear()
    cold = cached_map(SerialExecutor(), task, [5, 1, 9],
                      experiment="e", cache=cache)
    assert cold == [15, 3, 27]
    assert CALLS == [5, 1, 9]
    assert (cache.stats.hits, cache.stats.misses,
            cache.stats.stores) == (0, 3, 3)

    CALLS.clear()
    warm = cached_map(SerialExecutor(), task, [5, 1, 9],
                      experiment="e", cache=cache)
    assert warm == cold
    assert CALLS == []  # every trial replayed from the store
    assert cache.stats.hits == 3


def test_cached_map_partial_warmth_dispatches_only_misses(tmp_path):
    cache = TrialCache(tmp_path)
    task = ScaleTask(scale=2)
    cached_map(SerialExecutor(), task, [1, 2], experiment="e", cache=cache)
    CALLS.clear()
    out = cached_map(SerialExecutor(), task, [1, 2, 3],
                     experiment="e", cache=cache)
    assert out == [2, 4, 6]
    assert CALLS == [3]  # index 2 was the only miss


def test_cached_map_without_a_cache_is_plain_map():
    CALLS.clear()
    out = cached_map(SerialExecutor(), ScaleTask(scale=2), [4, 5],
                     experiment="e")
    assert out == [8, 10]
    assert CALLS == [4, 5]


def test_cached_map_uncacheable_task_runs_uncached(tmp_path):
    cache = TrialCache(tmp_path)
    out = cached_map(SerialExecutor(), lambda s: s + 1, [1, 2],
                     experiment="e", cache=cache)
    assert out == [2, 3]
    assert cache.stats.lookups == 0
    assert cache.stats.uncacheable == 1
    assert cache.entry_count() == 0


def test_cached_map_reports_was_cached_through_on_result(tmp_path):
    cache = TrialCache(tmp_path)
    task = ScaleTask(scale=2)
    seen: list = []
    cached_map(SerialExecutor(), task, [1], experiment="e", cache=cache,
               on_result=lambda i, value, was_cached: seen.append(
                   (i, value, was_cached)))
    cached_map(SerialExecutor(), task, [1], experiment="e", cache=cache,
               on_result=lambda i, value, was_cached: seen.append(
                   (i, value, was_cached)))
    assert seen == [(0, 2, False), (0, 2, True)]


def test_experiment_and_scale_separate_cache_entries(tmp_path):
    cache = TrialCache(tmp_path)
    assert cached_map(SerialExecutor(), ScaleTask(scale=2), [3],
                      experiment="e", cache=cache) == [6]
    # Same item, different experiment: a miss, not a cross-talk hit.
    assert cached_map(SerialExecutor(), ScaleTask(scale=2), [3],
                      experiment="f", cache=cache) == [6]
    # Same experiment, different task params: also a miss.
    assert cached_map(SerialExecutor(), ScaleTask(scale=10), [3],
                      experiment="e", cache=cache) == [30]
    assert cache.stats.hits == 0 and cache.stats.misses == 3


def test_torn_payload_demotes_the_hit_and_recomputes(tmp_path):
    cache = TrialCache(tmp_path)
    task = ScaleTask(scale=2)
    cached_map(SerialExecutor(), task, [1], experiment="e", cache=cache)
    # Corrupt the stored payload but keep the entry well-formed JSON.
    path = next(iter(cache.iter_entries()))
    entry = json.loads(path.read_text())
    entry["payload"] = "!!! not base64 pickle !!!"
    path.write_text(json.dumps(entry))
    fresh = TrialCache(tmp_path)
    assert cached_map(SerialExecutor(), task, [1], experiment="e",
                      cache=fresh) == [2]
    assert fresh.stats.hits == 0 and fresh.stats.misses == 1
    assert fresh.stats.stores == 1  # the recompute re-stored a good entry


def test_trial_keyer_disables_caching_for_uncacheable_extras(tmp_path):
    cache = TrialCache(tmp_path)
    assert TrialKeyer.create(None, ScaleTask(scale=1), experiment="e") is None
    keyer = TrialKeyer.create(cache, ScaleTask(scale=1), experiment="e",
                              extra={"unstable": object()})
    assert keyer is None
    assert cache.stats.uncacheable == 1
