"""Device-aware format selection (YouTube's serving policy).

The paper notes that YouTube serves device-specific content — "it does not
stream FullHD video on an Intex phone" — and that on the high-bandwidth
testbed LAN the received quality is otherwise constant.  Selection is
therefore capped by display resolution and hardware-decoder capability,
and (network being ample) does not adapt during playback.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.device import Device
from repro.video.spec import FORMAT_LADDER, Format


class DeviceAwareAbr:
    """Chooses the best format the device can display and decode."""

    def __init__(self, ladder: Sequence[Format] = FORMAT_LADDER):
        if not ladder:
            raise ValueError("format ladder must be non-empty")
        self.ladder = tuple(sorted(ladder, key=lambda f: f.bitrate_bps))

    def select(self, device: Device,
               bandwidth_bps: Optional[float] = None) -> Format:
        """Best format within display, decoder, and bandwidth limits."""
        codec = device.accelerators.codec
        best = self.ladder[0]
        for fmt in self.ladder:
            if fmt.height > device.spec.display_height:
                continue
            if codec is not None and not codec.supports(
                fmt.width, fmt.height, fmt.fps
            ):
                continue
            if bandwidth_bps is not None and fmt.bitrate_bps > 0.8 * bandwidth_bps:
                continue
            best = fmt
        return best


__all__ = ["DeviceAwareAbr"]
