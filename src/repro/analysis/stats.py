"""Small statistics helpers used by studies and benches."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two samples."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def median(values: Sequence[float]) -> float:
    """Median; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    # Validate q before the empty-sample early return: an out-of-range
    # quantile is a caller bug whatever the sample, and silently
    # answering 0.0 for percentile([], 200) hid it.
    if not 0 <= q <= 100:
        raise ValueError(f"q must lie in [0, 100] (got {q})")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q / 100 * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    # a + f*(b-a), not a*(1-f) + b*f: the two-product form can round a
    # hair outside [a, b] (property-tested), this one cannot.
    return ordered[low] + frac * (ordered[high] - ordered[low])


@dataclass(frozen=True)
class Summary:
    """Mean/stdev/min/max of a sample (one figure bar with an error bar).

    ``failures`` counts trials that produced no value (crash, timeout,
    deadlock) and are therefore *not* part of the ``n`` successful samples
    — graceful degradation: a figure renders from what succeeded, but the
    losses stay visible.
    """

    mean: float
    stdev: float
    minimum: float
    maximum: float
    n: int
    failures: int = 0

    def __str__(self) -> str:
        if self.n == 0:
            # An empty sample has no mean: rendering fabricated zeros would
            # report a zero-latency result that never happened.
            base = "n/a (n=0)"
        else:
            base = f"{self.mean:.3f} ± {self.stdev:.3f} (n={self.n})"
        if self.failures:
            base += f" [{self.failures} failed]"
        return base

    def fmt_mean(self, spec: str = ".3f") -> str:
        """Mean formatted for a table/CSV cell; ``n/a`` for an empty sample."""
        return "n/a" if self.n == 0 else format(self.mean, spec)

    def fmt_stdev(self, spec: str = ".3f") -> str:
        """Stdev formatted for a table/CSV cell; ``n/a`` for an empty sample."""
        return "n/a" if self.n == 0 else format(self.stdev, spec)


def summarize(values: Sequence[float], failures: int = 0) -> Summary:
    """Summarize a sample the way the paper reports repeated trials."""
    if not values:
        return Summary(0.0, 0.0, 0.0, 0.0, 0, failures)
    return Summary(mean(values), stdev(values), min(values), max(values),
                   len(values), failures)


def cdf_points(values: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF as (value, probability) pairs (Fig 7b style)."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


__all__ = [
    "Summary",
    "cdf_points",
    "mean",
    "median",
    "percentile",
    "stdev",
    "summarize",
]
