"""Fig 1: Web performance vs device-capability evolution, 2011–2018.

Regenerates the paper's opening figure: page load times climb ~4× over
eight years even though clock, core count, memory, and OS version all
grow — because page complexity (bytes, and scripting even more) grows
faster than single-core performance, and the browser cannot spend the
extra cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import mean
from repro.device import Device
from repro.netstack import HostStack, HttpClient, Link
from repro.sim import Environment
from repro.web import BrowserEngine
from repro.workloads.history import CELLULAR_PROFILE, YearMedians, all_years
from repro.workloads.pages import generate_page
from repro.workloads.regexcorpus import RegexWorkloadFactory


@dataclass(frozen=True)
class TimelinePoint:
    """One year of Fig 1: the left-axis PLT plus every right-axis series."""

    year: int
    plt_s: float
    clock_ghz: float
    cores: int
    memory_gb: float
    os_version: float
    page_size_mb: float


def _plt_for_year(medians: YearMedians, n_pages: int,
                  factory: RegexWorkloadFactory) -> float:
    """Median-device PLT over that year's pages on the fixed profile."""
    plts = []
    spec = medians.device_spec()
    for index in range(n_pages):
        page = generate_page(
            1000 + medians.year * 10 + index,
            category=("news", "shopping", "business")[index % 3],
            factory=factory,
            bytes_factor=medians.page_bytes_factor,
            ops_factor=medians.page_ops_factor,
            chain_intensity=medians.page_ops_factor,
        )
        env = Environment()
        device = Device(env, spec, governor="OD")
        link = Link(env, CELLULAR_PROFILE)
        stack = HostStack(env, device)
        # HTTPS only became the Web's default around 2015.
        http = HttpClient(env, link, stack, tls=medians.year >= 2015)
        browser = BrowserEngine(env, device, link, stack=stack, http=http)
        result = env.run(env.process(browser.load(page)))
        plts.append(result.plt)
    return mean(plts)


def evolution_timeline(n_pages: int = 3) -> list[TimelinePoint]:
    """The full Fig 1 series (PLT plus device parameters per year)."""
    factory = RegexWorkloadFactory()
    points = []
    for medians in all_years():
        points.append(TimelinePoint(
            year=medians.year,
            plt_s=_plt_for_year(medians, n_pages, factory),
            clock_ghz=medians.clock_ghz,
            cores=medians.cores,
            memory_gb=medians.memory_gb,
            os_version=medians.os_version,
            page_size_mb=medians.page_size_mb,
        ))
    return points


__all__ = ["TimelinePoint", "evolution_timeline"]
