"""repro.obs unit tests: tracer recording, metrics instruments, null path."""

from __future__ import annotations

import pytest

from repro.obs import (
    DEFAULT_MS_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NULL_TRACER,
    Tracer,
    merge_snapshots,
    metrics_of,
    tracer_of,
)
from repro.obs.metrics import NULL_INSTRUMENT
from repro.sim import Environment


# -- tracer -----------------------------------------------------------------

def test_span_context_manager_records_interval():
    env = Environment()
    tracer = Tracer(env)

    def proc():
        with tracer.span("net.fetch", "net", {"url": "http://a"}):
            yield env.timeout(1.5)

    env.process(proc())
    env.run()
    (span,) = tracer.spans
    assert (span.name, span.cat) == ("net.fetch", "net")
    assert (span.start, span.end, span.duration) == (0.0, 1.5, 1.5)
    assert span.args == {"url": "http://a"}


def test_span_context_manager_annotates_escaping_exception():
    tracer = Tracer(Environment())
    with pytest.raises(RuntimeError):
        with tracer.span("web.script", "web"):
            raise RuntimeError("boom")
    (span,) = tracer.spans
    assert span.args == {"error": "RuntimeError"}


def test_complete_and_instant_default_to_clock_now():
    env = Environment()
    tracer = Tracer(env)

    def wait():
        yield env.timeout(2.0)

    env.process(wait())
    env.run()
    span = tracer.complete("video.startup", "video", start=0.5)
    inst = tracer.instant("device.dvfs.step", "device")
    assert (span.start, span.end) == (0.5, 2.0)
    assert inst.t == 2.0
    assert tracer.categories() == ("device", "video")
    assert tracer.counts_by_category() == {"device": 1, "video": 1}
    assert len(tracer) == 2


def test_null_tracer_is_shared_and_stores_nothing():
    assert tracer_of(object()) is NULL_TRACER
    assert NULL_TRACER.enabled is False
    with NULL_TRACER.span("a.b", "app") as handle:
        assert handle is None
    handle = NULL_TRACER.begin_span("a.b")  # simlint: disable=OBS501
    assert NULL_TRACER.end_span(handle) is None  # simlint: disable=OBS501
    assert NULL_TRACER.complete("a.b", "app", 0.0) is None
    assert NULL_TRACER.instant("a.b") is None
    # The null tracer has no storage at all (no lists to leak into).
    assert not hasattr(NULL_TRACER, "spans")
    # And the context manager is one shared object, not per-call.
    assert NULL_TRACER.span("x.y") is NULL_TRACER.span("z.w")


def test_null_tracer_swallows_exceptions_like_the_real_one():
    with pytest.raises(ValueError):
        with NULL_TRACER.span("a.b"):
            raise ValueError("propagates")


# -- metrics ----------------------------------------------------------------

def test_counter_accumulates_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("net.link.tx_bytes")
    counter.inc()
    counter.inc(41.0)
    assert counter.value == 42.0
    with pytest.raises(ValueError, match="cannot decrease"):
        counter.inc(-1.0)


def test_gauge_holds_last_value():
    gauge = MetricsRegistry().gauge("video.buffer_s")
    gauge.set(3.5)
    gauge.set(1.25)
    assert gauge.value == 1.25


def test_metric_names_must_be_dotted_lowercase():
    registry = MetricsRegistry()
    for bad in ("plain", "Upper.case", "net.", ".net", "net..x", "a.b-c"):
        with pytest.raises(ValueError, match="dotted lowercase"):
            registry.counter(bad)


def test_registry_is_get_or_create_and_type_checked():
    registry = MetricsRegistry()
    assert registry.counter("web.loads") is registry.counter("web.loads")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("web.loads")
    with pytest.raises(ValueError, match="already registered"):
        registry.histogram("web.loads")
    assert registry.names() == ("web.loads",)


def test_histogram_boundary_values_use_le_semantics():
    histogram = Histogram("web.fetch_ms", buckets=(10.0, 100.0))
    histogram.observe(10.0)     # exactly on a bound: belongs to that bucket
    histogram.observe(10.0001)  # just above: next bucket
    histogram.observe(100.0)
    histogram.observe(100.0001)  # above the last bound: overflow
    assert histogram.bucket_counts == [1, 2]
    assert histogram.overflow == 1
    data = histogram.as_dict()
    assert data["count"] == 4
    assert data["buckets"] == {"10": 1, "100": 2, "+Inf": 1}


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError, match="at least one bucket"):
        Histogram("a.b", buckets=())
    with pytest.raises(ValueError, match="strictly ascending"):
        Histogram("a.b", buckets=(5.0, 5.0))
    with pytest.raises(ValueError, match="strictly ascending"):
        Histogram("a.b", buckets=(10.0, 5.0))


def test_histogram_default_buckets_and_float_labels():
    histogram = Histogram("web.fetch_ms")
    assert histogram.buckets == DEFAULT_MS_BUCKETS
    fractional = Histogram("a.b", buckets=(0.5, 1.0))
    assert set(fractional.as_dict()["buckets"]) == {"0.5", "1", "+Inf"}


def test_snapshot_is_flat_and_sorted():
    registry = MetricsRegistry()
    registry.gauge("b.gauge").set(2.0)
    registry.counter("a.counter").inc(3.0)
    registry.histogram("c.hist", buckets=(1.0,)).observe(0.5)
    snapshot = registry.snapshot()
    assert list(snapshot) == ["a.counter", "b.gauge", "c.hist"]
    assert snapshot["a.counter"] == 3.0
    assert snapshot["c.hist"]["count"] == 1


def test_null_metrics_hands_out_the_shared_null_instrument():
    assert metrics_of(object()) is NULL_METRICS
    counter = NULL_METRICS.counter("any.name")
    assert counter is NULL_INSTRUMENT
    assert counter is NULL_METRICS.gauge("other.name")
    counter.inc()
    counter.set(5.0)
    counter.observe(1.0)
    assert NULL_METRICS.snapshot() == {}


# -- merge_snapshots --------------------------------------------------------

def test_merge_snapshots_sums_scalars_and_merges_histograms():
    first = MetricsRegistry()
    first.counter("net.tx").inc(10.0)
    first.histogram("plt.ms", buckets=(1.0, 10.0)).observe(0.5)
    second = MetricsRegistry()
    second.counter("net.tx").inc(5.0)
    second.counter("net.rx").inc(1.0)
    second.histogram("plt.ms", buckets=(1.0, 10.0)).observe(5.0)

    merged = merge_snapshots([first.snapshot(), second.snapshot()])
    assert list(merged) == sorted(merged)
    assert merged["net.tx"] == 15.0
    assert merged["net.rx"] == 1.0
    assert merged["plt.ms"]["count"] == 2
    assert merged["plt.ms"]["sum"] == pytest.approx(5.5)


def test_merge_snapshots_is_order_robust_for_totals():
    a = {"x": 1.0}
    b = {"x": 2.0, "y": 3.0}
    assert merge_snapshots([a, b]) == merge_snapshots([b, a])
    assert merge_snapshots([]) == {}


def test_merge_snapshots_unions_disjoint_instrument_sets():
    a = {"net.tx": 2.0}
    b = {"plt.ms": {"count": 1, "sum": 3.0, "buckets": {"+Inf": 1}}}
    c = {"cpu.busy": 0.5}
    merged = merge_snapshots([a, b, c])
    assert list(merged) == ["cpu.busy", "net.tx", "plt.ms"]
    assert merged["net.tx"] == 2.0 and merged["cpu.busy"] == 0.5
    assert merged["plt.ms"]["count"] == 1


def test_merge_snapshots_unions_histogram_bucket_labels():
    a = {"plt.ms": {"count": 2, "sum": 3.0, "buckets": {"1": 1, "+Inf": 1}}}
    b = {"plt.ms": {"count": 1, "sum": 9.0, "buckets": {"10": 1}}}
    merged = merge_snapshots([a, b])
    assert merged["plt.ms"] == {
        "count": 3,
        "sum": 12.0,
        "buckets": {"1": 1, "+Inf": 1, "10": 1},
    }


def test_merge_snapshots_totals_survive_shuffled_completion_order():
    import random

    registries = []
    for seed in range(6):
        registry = MetricsRegistry()
        registry.counter("net.tx").inc(float(seed))
        # Binary-exact values keep the float sum order-independent, so
        # the merged dicts can be compared exactly.
        registry.histogram("plt.ms", buckets=(1.0, 10.0)).observe(seed * 0.5)
        registries.append(registry)
    snapshots = [r.snapshot() for r in registries]
    baseline = merge_snapshots(snapshots)
    for seed in range(4):
        shuffled = list(snapshots)
        random.Random(seed).shuffle(shuffled)
        assert merge_snapshots(shuffled) == baseline


def test_merge_snapshots_rejects_scalar_histogram_mix():
    scalar = {"m": 1.0}
    hist = {"m": {"count": 1, "sum": 1.0, "buckets": {"+Inf": 1}}}
    with pytest.raises(ValueError, match="histogram in one snapshot"):
        merge_snapshots([scalar, hist])
    with pytest.raises(ValueError, match="histogram in one snapshot"):
        merge_snapshots([hist, scalar])
