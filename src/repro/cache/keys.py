"""Cache keys: canonical parameter encoding and the trial-key digest.

A cache entry is addressed purely by content: the SHA-256 of a canonical
JSON document describing ``(experiment, trial index, derived seed,
canonicalized trial parameters, code fingerprint)``.  Nothing about the
host — executor shape, journal paths, wall clocks — may reach the key,
or a warm run on a different ``--jobs`` value would miss entries it
should hit.

:func:`canonicalize` maps the parameter objects the studies actually
pass around (dataclass specs, dicts of device kwargs, tuples of page
specs, module-level task callables) onto a JSON-serializable form with a
total order: dict pairs and set members are sorted by their canonical
serialization, dataclasses carry their qualified class name, and
functions are identified by ``module:qualname``.  Values that *cannot*
participate in a stable key — lambdas, closures, arbitrary objects —
raise :class:`Uncacheable`, and the caller degrades to plain execution
instead of guessing.

Execution infrastructure (executors, runlogs, the cache itself) is
skipped rather than rejected: a study config legitimately holds an
executor, but which executor ran a trial must never change its key.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import types
from pathlib import Path
from typing import Any, List

#: Bumped whenever the key derivation itself changes shape, so stores
#: written by an older scheme read as misses instead of wrong hits.
KEY_VERSION = 1


class Uncacheable(Exception):
    """The value cannot participate in a stable cache key."""


#: Sentinel for values that are execution infrastructure: silently
#: omitted from keys rather than rejected (see module docstring).
_OMIT = object()

_FUNCTION_TYPES = (types.FunctionType, types.BuiltinFunctionType,
                   types.MethodType)


def _is_infrastructure(value: Any) -> bool:
    from repro.obs.runlog import NullRunLog, RunLog
    from repro.parallel import Executor

    if isinstance(value, (Executor, RunLog, NullRunLog)):
        return True
    # The cache itself (repro.cache.store.TrialCache) is recognized by a
    # marker attribute instead of an isinstance check so this module
    # never imports the store (which imports this module for keys).
    return bool(getattr(value, "cache_infrastructure", False))


def _qualname(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _sort_key(canon: Any) -> str:
    return json.dumps(canon, sort_keys=True, separators=(",", ":"))


def _canon(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, bytes):
        return ["bytes", base64.b64encode(value).decode("ascii")]
    if isinstance(value, Path):
        return ["path", value.as_posix()]
    if _is_infrastructure(value):
        return _OMIT
    if isinstance(value, (list, tuple)):
        items = [_canon(v) for v in value]
        return ["seq", [item for item in items if item is not _OMIT]]
    if isinstance(value, (set, frozenset)):
        items = [item for item in (_canon(v) for v in value)
                 if item is not _OMIT]
        return ["set", sorted(items, key=_sort_key)]
    if isinstance(value, dict):
        pairs: List[List[Any]] = []
        for key, val in value.items():
            canon_key, canon_val = _canon(key), _canon(val)
            if canon_key is _OMIT or canon_val is _OMIT:
                continue
            pairs.append([canon_key, canon_val])
        pairs.sort(key=lambda pair: _sort_key(pair[0]))
        return ["map", pairs]
    params = getattr(value, "cache_params", None)
    if callable(params) and not isinstance(value, type):
        # Objects opt into caching by declaring which of their facets a
        # trial result depends on (studies expose link/clip/... but not
        # their executor or corpus factory internals).
        return ["params", _qualname(type(value)), _canon(params())]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {}
        for spec in dataclasses.fields(value):
            item = _canon(getattr(value, spec.name))
            if item is _OMIT:
                continue
            fields[spec.name] = item
        return ["dc", _qualname(type(value)), fields]
    if isinstance(value, _FUNCTION_TYPES):
        qualname = getattr(value, "__qualname__", "")
        if "<locals>" in qualname or "<lambda>" in qualname:
            raise Uncacheable(
                f"local function {qualname!r} has no stable identity "
                f"across runs; use a module-level function or a "
                f"dataclass task")
        return ["fn", f"{value.__module__}:{qualname}"]
    raise Uncacheable(
        f"cannot canonicalize a {type(value).__qualname__} value for a "
        f"cache key")


def canonicalize(value: Any) -> Any:
    """JSON-serializable canonical form of a trial parameter value.

    Raises :class:`Uncacheable` for values with no stable identity.
    Infrastructure values (executors, runlogs, caches) canonicalize to
    ``None`` at the top level — they never distinguish two trials.
    """
    out = _canon(value)
    return None if out is _OMIT else out


def canonical_json(value: Any) -> str:
    """Canonical JSON text of an already-canonicalized value."""
    return _sort_key(value)


def trial_key(experiment: str, trial: int, item: Any, params: Any,
              fingerprint: str) -> str:
    """Content digest addressing one trial's result.

    ``item`` is the executor-visible work item (the derived seed for
    runner sweeps, the page spec for grid sweeps); ``params`` must
    already be canonical (the caller canonicalizes once per sweep, not
    once per trial); ``fingerprint`` is the code fingerprint of the
    trial function's transitive ``repro.*`` sources.
    """
    payload = ["trialkey", KEY_VERSION, experiment, int(trial),
               canonicalize(item), params, fingerprint]
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()


__all__ = [
    "KEY_VERSION",
    "Uncacheable",
    "canonical_json",
    "canonicalize",
    "trial_key",
]
