"""Unit/behaviour tests for the DSP offload path (§4.2)."""

import pytest

from repro.device import Device, NEXUS4, PIXEL2, by_name
from repro.dsp import DspCostModel, DspRegexKernel, DspScriptExecutor, FastRpcChannel
from repro.jsruntime import CpuCostModel, JsFunction, RegexCall
from repro.netstack import Link
from repro.sim import Environment
from repro.web import BrowserEngine


def make_channel(spec=PIXEL2, pinned_mhz=None):
    env = Environment()
    device = Device(env, spec, governor="OD", pinned_mhz=pinned_mhz)
    return env, device, FastRpcChannel(env, device)


def test_channel_requires_dsp():
    env = Environment()
    device = Device(env, by_name("SG S6-edge"))
    with pytest.raises(ValueError, match="no DSP"):
        FastRpcChannel(env, device)


def test_invoke_accounts_busy_time_and_energy():
    env, device, channel = make_channel()
    cycles = 787e6 * 0.05  # 50 ms of DSP time

    def caller():
        yield from channel.invoke(1_000, cycles)

    env.run(env.process(caller()))
    assert channel.invocations == 1
    assert channel.busy_s == pytest.approx(0.05, rel=0.1)
    assert channel.energy_j == pytest.approx(
        channel.busy_s * device.accelerators.dsp.active_w
    )


def test_invoke_serializes_on_dsp_context():
    env, device, channel = make_channel()
    cycles = 787e6 * 0.1

    def caller():
        yield from channel.invoke(0, cycles)

    procs = [env.process(caller()) for _ in range(2)]
    env.run(env.all_of(procs))
    assert env.now >= 0.2  # two 100 ms kernels cannot overlap


def test_invoke_rejects_negative():
    env, device, channel = make_channel()

    def caller():
        yield from channel.invoke(-1, 10)

    env.process(caller())
    with pytest.raises(ValueError):
        env.run()


def _regex_call(mode="test", pike=1000, dfa=200, repeats=10):
    return RegexCall(pattern="x", subject_chars=100, mode=mode,
                     pike_ops=pike, dfa_ops=dfa, repeats=repeats)


def test_kernel_prices_dfa_cheaper_than_pike():
    cost = DspCostModel()
    dfa_call = _regex_call(mode="test")
    pike_call = _regex_call(mode="search", dfa=None)
    assert cost.call_cycles(dfa_call) < cost.call_cycles(pike_call)


def test_kernel_scales_with_repeats():
    cost = DspCostModel()
    once = cost.call_cycles(_regex_call(repeats=1))
    many = cost.call_cycles(_regex_call(repeats=50))
    assert many == pytest.approx(50 * once)


def test_payload_counts_each_subject_once():
    kernel = DspRegexKernel()
    function = JsFunction("f", 1e6, (_regex_call(repeats=100),))
    assert kernel.payload_bytes(function) == 100  # subject_chars, not ×repeats


def test_dsp_beats_cpu_on_regex_heavy_function():
    """Per-function regex pricing: DSP cycles convert to less time than
    the CPU's engine-op pricing at ondemand-era clocks."""
    call = _regex_call(mode="test", dfa=5000, repeats=500)
    function = JsFunction("f", 0.0, (call,))
    cpu_cost = CpuCostModel()
    dsp = DspRegexKernel()
    cpu_seconds = cpu_cost.function_regex_ops(function) / (1363e6 * 2.2)
    dsp_seconds = dsp.regex_cycles(function) / 787e6
    assert dsp_seconds < cpu_seconds


def test_offload_reduces_plt_on_sports_pages(sports_pages):
    page = sports_pages[0]

    def load(offload):
        env = Environment()
        device = Device(env, PIXEL2, governor="OD")
        link = Link(env)
        if offload:
            executor = DspScriptExecutor(FastRpcChannel(env, device))
            browser = BrowserEngine(env, device, link, executor=executor)
        else:
            browser = BrowserEngine(env, device, link)
        return env.run(env.process(browser.load(page)))

    cpu = load(False)
    dsp = load(True)
    assert dsp.plt < cpu.plt
    assert dsp.script_time < cpu.script_time


def test_offload_win_grows_at_low_clock(sports_pages):
    page = sports_pages[0]

    def load(offload, mhz):
        env = Environment()
        device = Device(env, PIXEL2, pinned_mhz=mhz)
        link = Link(env)
        if offload:
            executor = DspScriptExecutor(FastRpcChannel(env, device))
            browser = BrowserEngine(env, device, link, executor=executor)
        else:
            browser = BrowserEngine(env, device, link)
        return env.run(env.process(browser.load(page))).plt

    win_low = 1 - load(True, 300) / load(False, 300)
    win_high = 1 - load(True, 2457) / load(False, 2457)
    assert win_low > win_high
    assert win_low > 0.15


def test_nexus4_dsp_is_slower_but_present():
    assert NEXUS4.accelerators.dsp is not None
    assert NEXUS4.accelerators.dsp.freq_mhz < PIXEL2.accelerators.dsp.freq_mhz
