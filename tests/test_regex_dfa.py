"""Unit tests for the lazy DFA."""

import re as pyre

import pytest

from repro.regexlib import Regex
from repro.regexlib.dfa import DfaUnsupported, LazyDfa
from repro.regexlib.pikevm import Counter
from repro.regexlib.program import compile_pattern


def dfa_for(pattern):
    return LazyDfa(compile_pattern(pattern))


@pytest.mark.parametrize("pattern,subject,expected", [
    (r"abc", "xxabcyy", True),
    (r"abc", "xxabyy", False),
    (r"a+b", "caaab", True),
    (r"[0-9]{3}", "ab12cd345", True),
    (r"[0-9]{3}", "ab12cd34", False),
    (r"^start", "start here", True),
    (r"^start", "restart", False),
    (r"end$", "the end", True),
    (r"end$", "end of it", False),
    (r"^only$", "only", True),
    (r"^only$", "only more", False),
    (r"(?:foo|bar)+", "xx barfoo xx", True),
    (r"a*", "bbb", True),  # empty match at position 0
    (r"\.(?:png|jpe?g)$", "shot.jpeg", True),
    (r"\.(?:png|jpe?g)$", "shot.jpeg.txt", False),
])
def test_dfa_agrees_with_re(pattern, subject, expected):
    assert dfa_for(pattern).matches(subject) is expected
    assert (pyre.search(pattern, subject) is not None) is expected


def test_word_boundary_unsupported():
    with pytest.raises(DfaUnsupported):
        dfa_for(r"\bword\b")


def test_search_end_reports_earliest_match_end():
    dfa = dfa_for(r"ab")
    assert dfa.search_end("xxabab") == 4  # end of first match
    assert dfa.search_end("no") is None


def test_empty_subject():
    assert dfa_for(r"a*").matches("")
    assert not dfa_for(r"a+").matches("")


def test_warm_transitions_are_cheap():
    dfa = dfa_for(r"needle")
    subject = "h" * 500
    cold = Counter()
    dfa.matches(subject, cold)
    warm = Counter()
    dfa.matches(subject, warm)
    assert warm.ops < cold.ops
    # Warm scan: ~1 op per character plus closure checks.
    assert warm.ops <= 3 * len(subject)


def test_states_shared_across_subjects():
    dfa = dfa_for(r"[a-z]+[0-9]")
    dfa.matches("abcdef9")
    n_states = len(dfa._kernels)
    dfa.matches("zzzzzz1")
    assert len(dfa._kernels) == n_states  # no new states needed


def test_engine_dfa_property_returns_none_for_unsupported():
    regex = Regex(r"\bcat\b")
    assert regex.dfa() is None
    supported = Regex(r"cat")
    assert supported.dfa() is not None
