"""Lint driver: file discovery, rule execution, suppression, filtering.

Two entry points share one machinery:

* :func:`run_lint` — file rules only, one AST at a time (the PR-1 mode).
* :func:`run_project_lint` — parses every file once into a
  :class:`~repro.lint.project.ProjectModel`, runs the file rules *and*
  the project-wide dataflow rules (DF7xx) on top of the shared parse.

Both honor per-line ``# simlint: disable=`` suppressions and an optional
**baseline** — a recorded set of finding fingerprints that are reported
as baselined (not failures) so a new rule can land before every legacy
violation is fixed.  Fingerprints are ``rule::path::message`` (no line
numbers, so unrelated edits don't invalidate the file).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.lint.findings import (
    Finding,
    Severity,
    is_suppressed,
    parse_suppressions,
)
from repro.lint.project import ProjectModel, module_name_for
from repro.lint.rules import (
    ALL_PROJECT_RULES,
    ALL_RULES,
    FileContext,
    ProjectRule,
    Rule,
)

#: Rule id used for files the engine itself cannot parse.
PARSE_ERROR_RULE = "E000"

#: Baseline file schema version.
BASELINE_VERSION = 1


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Findings matched (and hidden) by the ``--baseline`` file.
    baselined: int = 0

    def count_at_least(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity >= severity)

    def by_severity(self) -> Dict[str, int]:
        counts = {str(s): 0 for s in Severity}
        for finding in self.findings:
            counts[str(finding.severity)] += 1
        return counts

    def as_dict(self) -> dict:
        return {
            "version": 1,
            "summary": {
                "files": self.files_checked,
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "by_severity": self.by_severity(),
            },
            "findings": [f.as_dict() for f in self.findings],
        }


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    seen = set()
    unique = []
    for path in out:
        key = str(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Rule]:
    """Resolve ``--select``/``--ignore`` ids against the registry.

    The registry is the union of file rules and project (DF7xx) rules,
    so every id a user can type is either honored or rejected — ids that
    match no registered rule raise :class:`ValueError`, which the CLI
    maps to a usage error (exit code 2).  Never silently accept-and-
    match-nothing.
    """
    if rules is None:
        rules = tuple(ALL_RULES) + tuple(ALL_PROJECT_RULES)
    known = {rule.id for rule in rules}
    chosen = list(rules)
    if select is not None:
        wanted = {rule_id.strip().upper() for rule_id in select if rule_id.strip()}
        unknown = sorted(wanted - known)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        chosen = [rule for rule in chosen if rule.id in wanted]
    if ignore is not None:
        dropped = {rule_id.strip().upper() for rule_id in ignore if rule_id.strip()}
        unknown = sorted(dropped - known)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        chosen = [rule for rule in chosen if rule.id not in dropped]
    return chosen


def _display_path(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return str(path.relative_to(root))
        except ValueError:
            pass
    return str(path)


def _parse_file(
    path: Path, display: str,
) -> Union[Tuple[str, ast.Module], Finding]:
    """Source + AST for a file, or the E000 finding explaining why not.

    Parse errors carry the syntax error's exact line/column and the
    offending source text, not just the file name.
    """
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as error:
        return Finding(
            path=display, line=1, col=0, rule=PARSE_ERROR_RULE,
            severity=Severity.ERROR, message=f"cannot read file: {error}",
        )
    try:
        return source, ast.parse(source, filename=display)
    except SyntaxError as error:
        offending = (error.text or "").strip()
        detail = f": {offending!r}" if offending else ""
        return Finding(
            path=display, line=error.lineno or 1, col=error.offset or 0,
            rule=PARSE_ERROR_RULE, severity=Severity.ERROR,
            message=(
                f"syntax error: {error.msg} at line {error.lineno or 1}, "
                f"col {error.offset or 0}{detail}"
            ),
        )


def _check_file(
    context: FileContext,
    rules: Sequence[Rule],
    suppressions: Dict[int, set],
    report: LintReport,
) -> None:
    for rule in rules:
        if not rule.applies_to(context):
            continue
        for finding in rule.check(context):
            if is_suppressed(finding, suppressions):
                report.suppressed += 1
            else:
                report.findings.append(finding)


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    root: Optional[Path] = None,
) -> LintReport:
    """Lint a single file; report findings with paths relative to root."""
    report = LintReport(files_checked=1)
    display = _display_path(path, root)
    parsed = _parse_file(path, display)
    if isinstance(parsed, Finding):
        report.findings.append(parsed)
        return report
    source, tree = parsed
    context = FileContext(path=display, source=source, tree=tree)
    _check_file(context, rules, parse_suppressions(source), report)
    return report


def run_lint(
    paths: Sequence[Path],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    min_severity: Severity = Severity.INFO,
    root: Optional[Path] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` with the chosen file rules.

    Project (DF7xx) rules in the selection are skipped here — they need
    the whole-program model of :func:`run_project_lint`.
    """
    rules = [r for r in select_rules(select, ignore)
             if not isinstance(r, ProjectRule)]
    report = LintReport()
    for path in discover_files([Path(p) for p in paths]):
        file_report = lint_file(path, rules, root=root)
        report.files_checked += file_report.files_checked
        report.suppressed += file_report.suppressed
        report.findings.extend(
            f for f in file_report.findings if f.severity >= min_severity
        )
    report.findings.sort()
    return report


def run_project_lint(
    paths: Sequence[Path],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    min_severity: Severity = Severity.INFO,
    root: Optional[Path] = None,
    baseline: Optional[Union[str, Path]] = None,
) -> LintReport:
    """Project mode: file rules plus whole-program dataflow rules.

    Every file is parsed exactly once; the shared ASTs feed both the
    per-file rules and the :class:`ProjectModel` the DF7xx analyses run
    on.  Findings from project rules honor the same per-line
    suppressions as file findings, keyed by the file the finding lands
    in.  Output is deterministic: modules are processed in sorted path
    order and findings are fully sorted, so repeated runs render
    byte-identical reports.
    """
    chosen = select_rules(select, ignore)
    file_rules = [r for r in chosen if not isinstance(r, ProjectRule)]
    project_rules = [r for r in chosen if isinstance(r, ProjectRule)]

    report = LintReport()
    model = ProjectModel()
    suppressions_by_path: Dict[str, Dict[int, set]] = {}

    for path in discover_files([Path(p) for p in paths]):
        report.files_checked += 1
        display = _display_path(path, root)
        parsed = _parse_file(path, display)
        if isinstance(parsed, Finding):
            report.findings.append(parsed)
            continue
        source, tree = parsed
        suppressions = parse_suppressions(source)
        suppressions_by_path[display] = suppressions
        context = FileContext(path=display, source=source, tree=tree)
        _check_file(context, file_rules, suppressions, report)
        name = module_name_for(path)
        if name in model.modules:
            # Same dotted name twice (e.g. two top-level conftest.py):
            # qualify by display path to keep both analyzable.
            name = f"{name}@{display}"
        model.add_module(name, display, tree, source)

    model.finish()
    for rule in project_rules:
        for finding in rule.check_project(model):
            suppressions = suppressions_by_path.get(finding.path, {})
            if is_suppressed(finding, suppressions):
                report.suppressed += 1
            else:
                report.findings.append(finding)

    report.findings = [f for f in report.findings
                       if f.severity >= min_severity]
    if baseline is not None:
        _apply_baseline(report, Path(baseline))
    report.findings.sort()
    return report


# -- baseline workflow --------------------------------------------------------

def finding_fingerprint(finding: Finding) -> str:
    """Line-independent identity of a finding, for baseline matching."""
    return f"{finding.rule}::{finding.path}::{finding.message}"


def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint -> count multiset from a baseline file."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise ValueError(f"unreadable baseline {path}: {error}") from error
    if not isinstance(raw, dict) or "findings" not in raw:
        raise ValueError(
            f"baseline {path} is not a simlint baseline file "
            f"(expected a JSON object with a 'findings' list)"
        )
    counts: Dict[str, int] = {}
    for fingerprint in raw["findings"]:
        counts[fingerprint] = counts.get(fingerprint, 0) + 1
    return counts


def write_baseline(report: LintReport, path: Path) -> None:
    """Record the report's findings as the accepted baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": sorted(finding_fingerprint(f) for f in report.findings),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n",
                    encoding="utf-8")


def _apply_baseline(report: LintReport, path: Path) -> None:
    budget = load_baseline(path)
    kept: List[Finding] = []
    for finding in report.findings:
        fingerprint = finding_fingerprint(finding)
        if budget.get(fingerprint, 0) > 0:
            budget[fingerprint] -= 1
            report.baselined += 1
        else:
            kept.append(finding)
    report.findings = kept


__all__ = [
    "BASELINE_VERSION",
    "LintReport",
    "PARSE_ERROR_RULE",
    "discover_files",
    "finding_fingerprint",
    "lint_file",
    "load_baseline",
    "run_lint",
    "run_project_lint",
    "select_rules",
    "write_baseline",
]
