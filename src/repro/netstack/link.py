"""The access link between the phone and the LAN server.

A single bottleneck link models the Aruba AP of the paper's testbed.  The
nominal 72 Mbps 802.11n PHY rate yields ≈48 Mbps of TCP goodput once MAC
framing, ACKs and contention are paid — the ceiling Fig 6 shows at high
clocks — so :class:`LinkSpec` is expressed directly in achievable goodput.

Transmission is FIFO: a transfer holds the link for its serialization time.
Because every flow sends in bounded chunks, FIFO interleaving approximates
the per-flow fair share of a real queue at the timescales we report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Environment, Resource


@dataclass(frozen=True)
class LinkSpec:
    """Capacity/RTT/loss of the testbed path (defaults: the paper's LAN)."""

    goodput_bps: float = 48.5e6
    rtt_s: float = 0.010
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.goodput_bps <= 0:
            raise ValueError("goodput must be positive")
        if self.rtt_s < 0:
            raise ValueError("RTT cannot be negative")
        if not 0 <= self.loss < 1:
            raise ValueError("loss must lie in [0, 1)")

    @property
    def bytes_per_s(self) -> float:
        return self.goodput_bps / 8.0

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth–delay product."""
        return self.bytes_per_s * self.rtt_s


class Link:
    """Shared FIFO bottleneck; ``transmit`` blocks for the serialization time."""

    def __init__(self, env: Environment, spec: LinkSpec = LinkSpec()):
        self.env = env
        self.spec = spec
        self._line = Resource(env, capacity=1)
        self._bytes_carried = 0.0

    @property
    def bytes_carried(self) -> float:
        """Total payload bytes delivered over the link so far."""
        return self._bytes_carried

    def serialization_time(self, nbytes: float) -> float:
        """Time the line is held to carry ``nbytes``."""
        return nbytes / self.spec.bytes_per_s

    def transmit(self, nbytes: float):
        """Process: occupy the line for ``nbytes`` of payload."""
        if nbytes < 0:
            raise ValueError("cannot transmit negative bytes")
        with self._line.request() as grant:
            yield grant
            yield self.env.timeout(self.serialization_time(nbytes))
            self._bytes_carried += nbytes


__all__ = ["Link", "LinkSpec"]
