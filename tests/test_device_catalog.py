"""Table 1: the device catalog matches the paper's spec sheet."""

import pytest

from repro.device import DeviceSpec, NEXUS4, NEXUS4_LADDER, PIXEL2, TABLE1_DEVICES, by_name
from repro.device.catalog import PIXEL2_BIG_LADDER


def test_seven_devices():
    assert len(TABLE1_DEVICES) == 7


def test_table1_rows():
    """Name, cores, RAM, and cost straight from Table 1."""
    expected = {
        "Intex Amaze+": (4, 1.0, 60),
        "Gionee F103": (4, 2.0, 150),
        "Google Nexus4": (4, 2.0, 200),
        "SG S2-Tab": (8, 3.0, 450),
        "Google Pixel C": (4, 3.0, 600),
        "SG S6-edge": (8, 3.0, 880),
        "Google Pixel2": (8, 4.0, 700),
    }
    for spec in TABLE1_DEVICES:
        cores, ram, cost = expected[spec.name]
        assert spec.n_cores == cores, spec.name
        assert spec.memory_gb == ram, spec.name
        assert spec.cost_usd == cost, spec.name


def test_nexus4_ladder_matches_figure_axis():
    assert NEXUS4_LADDER == (384, 486, 594, 702, 810, 918, 1026, 1134,
                             1242, 1350, 1458, 1512)
    assert NEXUS4.clusters[0].freqs_mhz == NEXUS4_LADDER


def test_pixel2_ladder_covers_fig7c_points():
    for mhz in (300, 441, 595, 748, 883):
        assert mhz in PIXEL2_BIG_LADDER


def test_clock_ranges_match_table1():
    assert NEXUS4.min_clock_mhz == 384 and NEXUS4.max_clock_mhz == 1512
    assert PIXEL2.min_clock_mhz == 300 and PIXEL2.max_clock_mhz == 2457
    intex = by_name("Intex Amaze+")
    assert intex.min_clock_mhz == 300 and intex.max_clock_mhz == 1300


def test_every_device_has_hardware_codec():
    """§3.2: even low-end phones ship hardware video decoders."""
    for spec in TABLE1_DEVICES:
        assert spec.accelerators.has_hw_decode, spec.name


def test_only_some_devices_have_dsp():
    assert PIXEL2.accelerators.has_dsp
    assert NEXUS4.accelerators.has_dsp
    assert not by_name("SG S6-edge").accelerators.has_dsp


def test_peak_rate_orders_low_to_high_end():
    intex = by_name("Intex Amaze+")
    gionee = by_name("Gionee F103")
    assert intex.best_rate_hz < gionee.best_rate_hz < NEXUS4.best_rate_hz
    assert NEXUS4.best_rate_hz < PIXEL2.best_rate_hz


def test_pixel2_outranks_s6_edge():
    """The paper's big.LITTLE inversion: Pixel2 beats the pricier S6."""
    s6 = by_name("SG S6-edge")
    assert PIXEL2.cost_usd < s6.cost_usd
    assert PIXEL2.best_rate_hz > s6.best_rate_hz


def test_by_name_unknown():
    with pytest.raises(ValueError, match="unknown device"):
        by_name("iPhone X")


def test_display_heights_cap_video_formats():
    assert by_name("Intex Amaze+").display_height == 720
    assert PIXEL2.display_height == 1080
