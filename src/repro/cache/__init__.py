"""Content-addressed trial-result caching (``docs/caching.md``).

Every trial in this reproduction is a pure function of ``(experiment,
trial index, derived seed, trial parameters, code)``.  :class:`TrialCache`
exploits that: results are stored under a digest of exactly those five
facts, so a warm re-run skips every unchanged trial, and editing any
``repro.*`` module a trial transitively imports flips its
:mod:`code fingerprint <repro.cache.fingerprint>` and forces
recomputation of precisely the affected experiments — nothing more.

Entry points:

* :func:`cached_map` — drop-in for ``Executor.map`` in the sweep loops;
* ``RobustTrialRunner``/``TrialRunner`` consult an attached cache before
  dispatching (``executor.cache``, mirroring ``executor.runlog``);
* ``python -m repro <figure> --cache DIR`` / ``REPRO_CACHE`` wire it up
  from the CLI; ``python -m repro cache stats|gc|clear`` maintains it.
"""

from repro.cache.fingerprint import (
    clear_caches,
    code_fingerprint,
    fingerprint_modules,
)
from repro.cache.keys import (
    KEY_VERSION,
    Uncacheable,
    canonical_json,
    canonicalize,
    trial_key,
)
from repro.cache.store import (
    CACHE_MARKER,
    CACHE_VERSION,
    CacheStats,
    ENTRY_SUFFIX,
    KIND_PICKLE,
    KIND_RECORD,
    TrialCache,
    TrialKeyer,
    cached_map,
    decode_result,
    encode_result,
    resolve_cache,
)

__all__ = [
    "CACHE_MARKER",
    "CACHE_VERSION",
    "CacheStats",
    "ENTRY_SUFFIX",
    "KEY_VERSION",
    "KIND_PICKLE",
    "KIND_RECORD",
    "TrialCache",
    "TrialKeyer",
    "Uncacheable",
    "cached_map",
    "canonical_json",
    "canonicalize",
    "clear_caches",
    "code_fingerprint",
    "decode_result",
    "encode_result",
    "fingerprint_modules",
    "resolve_cache",
    "trial_key",
]
