"""Fig 5c: telephony QoE vs core count."""

from repro.analysis import render_table
from repro.core.studies import RtcStudy, RtcStudyConfig
from repro.rtc import CallConfig


def run_fig5c():
    study = RtcStudy(RtcStudyConfig(call=CallConfig(call_duration_s=10),
                                    trials=1))
    return study.vs_cores(cores=(1, 2, 3, 4))


def test_fig5c(benchmark, fig_printer):
    points = benchmark.pedantic(run_fig5c, rounds=1, iterations=1)
    table = render_table(
        ["Cores", "Setup delay (s)", "Frame rate (fps)"],
        [[p.label, f"{p.setup_delay.mean:.1f}", f"{p.frame_rate.mean:.1f}"]
         for p in points],
    )
    fig_printer("Fig 5c: Skype vs number of cores (Nexus4)", table)
    by_cores = {p.label: p for p in points}
    # The media pipeline parallelizes: one core costs frames, two suffice.
    assert by_cores[1].frame_rate.mean < 0.7 * by_cores[4].frame_rate.mean
    assert by_cores[2].frame_rate.mean > 0.85 * by_cores[4].frame_rate.mean
