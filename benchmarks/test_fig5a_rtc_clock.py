"""Fig 5a: telephony setup delay and frame rate across the Nexus4 ladder."""

from repro.analysis import render_table
from repro.core.studies import RtcStudy, RtcStudyConfig
from repro.device import NEXUS4_LADDER
from repro.rtc import CallConfig


def run_fig5a():
    study = RtcStudy(RtcStudyConfig(call=CallConfig(call_duration_s=10),
                                    trials=1))
    return study.vs_clock(ladder=NEXUS4_LADDER)


def test_fig5a(benchmark, fig_printer):
    points = benchmark.pedantic(run_fig5a, rounds=1, iterations=1)
    table = render_table(
        ["Clock (MHz)", "Setup delay (s)", "Frame rate (fps)"],
        [[p.label, f"{p.setup_delay.mean:.1f}", f"{p.frame_rate.mean:.1f}"]
         for p in points],
    )
    fig_printer("Fig 5a: Skype vs clock frequency (Nexus4)", table)
    by_clock = {p.label: p for p in points}
    low, high = by_clock[384], by_clock[1512]
    # Paper: ~18 s more setup at 384 MHz; 30 → 17 fps.
    assert 12 < low.setup_delay.mean - high.setup_delay.mean < 24
    assert high.frame_rate.mean > 28
    assert 14 < low.frame_rate.mean < 21
    # Setup delay declines monotonically with the clock.
    setups = [p.setup_delay.mean for p in points]
    assert all(a >= b * 0.98 for a, b in zip(setups, setups[1:]))
