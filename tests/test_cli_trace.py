"""CLI contract of ``python -m repro trace`` and runner metric capture."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.experiments import RobustTrialRunner, TrialRecord
from repro.obs import MetricsRegistry, install
from repro.sim import Environment


# -- trace subcommand -------------------------------------------------------

def test_trace_writes_valid_chrome_trace(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", "fig2a", "--out", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "trace summary:" in stdout
    assert "plt_s=" in stdout
    assert f"[wrote {out}]" in stdout
    payload = json.loads(out.read_text())
    events = payload["traceEvents"]
    assert events
    lanes = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert {"sim", "net", "web", "device"} <= lanes


def test_trace_output_is_byte_identical_for_same_seed(tmp_path):
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    assert main(["trace", "fig2a", "--out", str(first), "--seed", "7"]) == 0
    assert main(["trace", "fig2a", "--out", str(second), "--seed", "7"]) == 0
    assert first.read_bytes() == second.read_bytes()


def test_trace_metrics_out_writes_snapshot(tmp_path, capsys):
    out = tmp_path / "t.json"
    metrics = tmp_path / "m.json"
    assert main(["trace", "fig6", "--out", str(out),
                 "--metrics-out", str(metrics)]) == 0
    snapshot = json.loads(metrics.read_text())
    assert snapshot["sim.steps"] > 0
    assert snapshot["net.link.tx_bytes"] > 0


def test_trace_metrics_out_is_byte_identical_for_same_seed(tmp_path):
    paths = [tmp_path / "a.json", tmp_path / "b.json"]
    for path in paths:
        assert main(["trace", "fig2a", "--out", str(tmp_path / "t.json"),
                     "--metrics-out", str(path), "--seed", "11"]) == 0
    first, second = (p.read_bytes() for p in paths)
    assert first == second
    assert list(json.loads(first)) == sorted(json.loads(first))


def test_trace_rejects_unknown_trial(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["trace", "nope", "--out", str(tmp_path / "t.json")])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_list_includes_trace(capsys):
    assert main(["list"]) == 0
    assert "trace" in capsys.readouterr().out.split()


# -- RobustTrialRunner metric/steps capture ---------------------------------

def _sim_trial(seed: int, metrics: MetricsRegistry) -> float:
    env = Environment()
    install(env, metrics=metrics)

    def proc():
        yield env.timeout(2.0)
        yield env.timeout(3.0)

    env.run(env.process(proc()))
    return env.now


def test_runner_passes_registry_and_journals_snapshot(tmp_path):
    journal = tmp_path / "journal.json"
    runner = RobustTrialRunner(trials=2, experiment="obs",
                               journal_path=journal)
    report = runner.run(_sim_trial)
    assert report.failures == 0
    for record in report.records:
        assert record.metrics is not None
        assert record.metrics["sim.steps"] == 4.0
        assert record.steps == 4
        assert record.duration_wall_s >= 0.0
    payload = json.loads(journal.read_text())
    assert payload["version"] == 3
    row = payload["records"][0]
    assert row["steps"] == 4
    assert row["metrics"]["sim.steps"] == 4.0
    # v3: host timing stays out of the file so journal bytes replay
    # identically across runs and worker counts.
    assert "duration_wall_s" not in row


def test_runner_records_steps_on_budget_exhaustion():
    def runaway(seed: int, step_budget) -> float:
        env = Environment()

        def spin():
            while True:
                yield env.timeout(1.0)

        env.process(spin())
        env.run(until=1e9, max_steps=step_budget)
        return env.now

    runner = RobustTrialRunner(trials=1, experiment="budget",
                               step_budget=25, max_attempts=1)
    (record,) = runner.run(runaway).records
    assert record.status == "timeout"
    assert record.steps == 25


def test_trial_fn_without_metrics_param_gets_none_fields():
    runner = RobustTrialRunner(trials=1, experiment="plain")
    (record,) = runner.run(lambda seed: 1.0).records
    assert record.ok
    assert record.metrics is None and record.steps is None


def test_trial_record_round_trips_new_fields():
    record = TrialRecord(trial=1, seed=9, status="ok", value=2.0,
                         duration_wall_s=0.25, steps=100,
                         metrics={"sim.steps": 100.0})
    assert TrialRecord.from_dict(record.as_dict()) == record
    # v1 journal rows (without the new fields) still load with defaults.
    legacy = TrialRecord.from_dict(
        {"trial": 0, "seed": 1, "status": "ok", "value": 1.0})
    assert legacy.duration_wall_s == 0.0
    assert legacy.steps is None and legacy.metrics is None
