"""FastRPC: the CPU↔DSP remote procedure call path.

Each invocation pays a fixed kernel-crossing latency, a per-byte
marshalling cost for the subject data (ION buffer mapping), a small CPU
stub cost, and then holds the (single-context) DSP for the kernel's
execution time.  Busy time and energy are metered so Fig 7b's power CDF
can be reproduced.
"""

from __future__ import annotations

from repro.device import Device, DspSpec
from repro.sim import Environment, Resource


class FastRpcChannel:
    """One process's FastRPC session to the aDSP."""

    #: CPU-side stub work per invoke (syscall, argument packing).
    STUB_OPS = 60_000.0

    def __init__(self, env: Environment, device: Device):
        dsp = device.accelerators.dsp
        if dsp is None:
            raise ValueError(f"{device.spec.name} has no DSP coprocessor")
        self.env = env
        self.device = device
        self.dsp: DspSpec = dsp
        self._context = Resource(env, capacity=1)
        self.busy_s = 0.0
        self.invocations = 0

    @property
    def energy_j(self) -> float:
        """DSP active energy so far (idle power is negligible)."""
        return self.busy_s * self.dsp.active_w

    def invoke(self, payload_bytes: float, dsp_cycles: float):
        """Process: one synchronous FastRPC call running ``dsp_cycles``."""
        if payload_bytes < 0 or dsp_cycles < 0:
            raise ValueError("payload and cycles must be non-negative")
        # CPU-side stub (calling thread).
        yield from self.device.run(self.STUB_OPS)
        with self._context.request() as grant:
            yield grant
            started = self.env.now
            marshal = (self.dsp.fastrpc_invoke_s
                       + payload_bytes * self.dsp.fastrpc_byte_s)
            exec_time = dsp_cycles / (self.dsp.freq_mhz * 1e6)
            yield self.env.timeout(marshal + exec_time)
            self.busy_s += self.env.now - started
            self.invocations += 1


__all__ = ["FastRpcChannel"]
