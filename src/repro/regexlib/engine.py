"""Public regex API: :class:`Regex`, :class:`Match`, and cost accounting.

The interface follows :mod:`re` closely (``search``/``match``/``fullmatch``/
``findall``/``finditer``), with one addition central to this project: every
call's work is metered.  ``Regex.ledger`` accumulates Pike-VM operations and
DFA operations separately, because the two loop shapes cost differently on
the CPU and DSP models (:mod:`repro.dsp`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.regexlib import parse as ast
from repro.regexlib import pikevm
from repro.regexlib.dfa import DfaUnsupported, LazyDfa
from repro.regexlib.program import Program, compile_ast


@dataclass
class CostLedger:
    """Cumulative work performed by an engine instance."""

    pike_ops: int = 0
    dfa_ops: int = 0
    calls: int = 0
    chars: int = 0

    @property
    def total_ops(self) -> int:
        return self.pike_ops + self.dfa_ops

    def merge(self, other: "CostLedger") -> None:
        self.pike_ops += other.pike_ops
        self.dfa_ops += other.dfa_ops
        self.calls += other.calls
        self.chars += other.chars


class Match:
    """Result of a successful match; spans follow :mod:`re` conventions."""

    def __init__(self, text: str, slots: tuple, n_groups: int,
                 group_names: Optional[dict[str, int]] = None):
        self._text = text
        self._slots = slots
        self._n_groups = n_groups
        self._group_names = group_names or {}

    def _resolve(self, group: int | str) -> int:
        if isinstance(group, str):
            try:
                return self._group_names[group]
            except KeyError:
                raise IndexError(f"no such group {group!r}") from None
        return group

    def span(self, group: int | str = 0) -> tuple[int, int]:
        index = self._resolve(group)
        start = self._slots[2 * index]
        end = self._slots[2 * index + 1]
        if start is None or end is None:
            return (-1, -1)
        return (start, end)

    def start(self, group: int | str = 0) -> int:
        return self.span(group)[0]

    def end(self, group: int | str = 0) -> int:
        return self.span(group)[1]

    def group(self, group: int | str = 0) -> Optional[str]:
        index = self._resolve(group)
        if not 0 <= index <= self._n_groups:
            raise IndexError(f"no such group {group}")
        start, end = self.span(index)
        if start < 0:
            return None
        return self._text[start:end]

    def groups(self) -> tuple[Optional[str], ...]:
        return tuple(self.group(i) for i in range(1, self._n_groups + 1))

    def groupdict(self) -> dict[str, Optional[str]]:
        """Named groups and their matched text (None if unmatched)."""
        return {name: self.group(index)
                for name, index in self._group_names.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Match span={self.span()} text={self.group()!r}>"


class Regex:
    """A compiled pattern with metered execution."""

    def __init__(self, pattern: str):
        self.pattern = pattern
        node, n_groups, group_names = ast.parse_with_names(pattern)
        self._node = node
        self.program: Program = compile_ast(node, n_groups, pattern)
        self.n_groups = n_groups
        self.group_names = group_names
        self.ledger = CostLedger()
        self._dfa: Optional[LazyDfa] = None
        self._dfa_failed = False
        self._full_program: Optional[Program] = None

    # -- internals -------------------------------------------------------

    def _run(self, text: str, start: int, anchored: bool,
             program: Optional[Program] = None) -> Optional[Match]:
        counter = pikevm.Counter()
        slots = pikevm.run(program or self.program, text, start=start,
                           anchored=anchored, counter=counter)
        self.ledger.pike_ops += counter.ops
        self.ledger.calls += 1
        self.ledger.chars += len(text) - start
        if slots is None:
            return None
        return Match(text, slots, self.n_groups, self.group_names)

    def dfa(self) -> Optional[LazyDfa]:
        """The lazy DFA, or ``None`` when the pattern needs the Pike VM."""
        if self._dfa is None and not self._dfa_failed:
            try:
                self._dfa = LazyDfa(self.program)
            except DfaUnsupported:
                self._dfa_failed = True
        return self._dfa

    # -- re-like API ------------------------------------------------------

    def search(self, text: str, start: int = 0) -> Optional[Match]:
        """Leftmost match anywhere at or after ``start``."""
        return self._run(text, start, anchored=False)

    def match(self, text: str, start: int = 0) -> Optional[Match]:
        """Match anchored at ``start``."""
        return self._run(text, start, anchored=True)

    def fullmatch(self, text: str) -> Optional[Match]:
        """Match that must span the entire subject."""
        if self._full_program is None:
            wrapped = ast.Concat(
                (ast.Group(self._node, None), ast.Anchor("eol"))
            )
            self._full_program = compile_ast(wrapped, self.n_groups, self.pattern)
        return self._run(text, 0, anchored=True, program=self._full_program)

    def test(self, text: str) -> bool:
        """Boolean unanchored search — the DFA fast path when possible."""
        dfa = self.dfa()
        if dfa is None:
            return self.search(text) is not None
        counter = pikevm.Counter()
        found = dfa.matches(text, counter)
        self.ledger.dfa_ops += counter.ops
        self.ledger.calls += 1
        self.ledger.chars += len(text)
        return found

    def finditer(self, text: str) -> Iterator[Match]:
        """Non-overlapping matches left to right."""
        pos = 0
        while pos <= len(text):
            found = self.search(text, pos)
            if found is None:
                return
            yield found
            start, end = found.span()
            pos = end + 1 if end == start else end

    def findall(self, text: str) -> list[str]:
        """All non-overlapping match texts (group 0)."""
        return [m.group() or "" for m in self.finditer(text)]

    def sub(self, replacement: str, text: str,
            count: int = 0) -> tuple[str, int]:
        """Replace non-overlapping matches; returns (new text, n_subs).

        ``replacement`` is literal (no backreference expansion); ``count``
        of 0 replaces every occurrence.
        """
        pieces: list[str] = []
        cursor = 0
        n_subs = 0
        for found in self.finditer(text):
            if count and n_subs >= count:
                break
            start, end = found.span()
            pieces.append(text[cursor:start])
            pieces.append(replacement)
            cursor = end
            n_subs += 1
        pieces.append(text[cursor:])
        return "".join(pieces), n_subs

    def split(self, text: str, maxsplit: int = 0) -> list[str]:
        """Split ``text`` on matches (empty matches never split)."""
        parts: list[str] = []
        cursor = 0
        n_splits = 0
        for found in self.finditer(text):
            if maxsplit and n_splits >= maxsplit:
                break
            start, end = found.span()
            if start == end:
                continue
            parts.append(text[cursor:start])
            cursor = end
            n_splits += 1
        parts.append(text[cursor:])
        return parts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Regex({self.pattern!r})"


_cache: dict[str, Regex] = {}


def compile(pattern: str) -> Regex:  # noqa: A001 - mirrors re.compile
    """Compile ``pattern``, memoized like :func:`re.compile`."""
    regex = _cache.get(pattern)
    if regex is None:
        regex = Regex(pattern)
        _cache[pattern] = regex
    return regex


__all__ = ["CostLedger", "Match", "Regex", "compile"]
