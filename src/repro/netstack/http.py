"""HTTP/1.1 client with per-origin connection pooling.

Connections default to TLS (the 2018 Alexa top sites are HTTPS, and the
paper's local replicas preserve the protocol): each fresh connection pays
two extra RTTs plus handshake crypto, and records pay per-byte cipher work
on the CPU.

Chrome's fetch behaviour at the granularity that matters for PLT:

* up to ``max_conns_per_origin`` (6) parallel persistent connections,
* one uncached DNS lookup per origin (the paper clears the DNS cache),
* request/response framing overhead on top of body bytes,
* a small static-file service time at the LAN server.

``fetch`` is a simulation process; the browser engine schedules one per
network activity in the page dependency graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Optional
from collections import deque

from repro.netstack.hoststack import HostStack
from repro.netstack.link import Link
from repro.netstack.tcp import TcpConnection
from repro.obs import metrics_of, tracer_of
from repro.sim import Environment, Event

#: Bytes of request line + headers for a typical GET.
REQUEST_OVERHEAD_BYTES = 460
#: Bytes of status line + response headers.
RESPONSE_OVERHEAD_BYTES = 380
#: LAN desktop static-file service time.
DEFAULT_SERVER_THINK_S = 0.015
#: One DNS lookup round trip (resolver on the LAN).
DNS_LOOKUP_RTTS = 1.0


@dataclass(frozen=True)
class Origin:
    """A content origin (scheme://host) with its service latency."""

    host: str
    server_think_s: float = DEFAULT_SERVER_THINK_S


@dataclass
class HttpResponse:
    """Outcome of one fetch, with queueing/transfer timing breakdown."""

    url: str
    body_bytes: float
    started_at: float
    finished_at: float
    from_new_connection: bool

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


class _Pool:
    """Connection pool for a single origin."""

    def __init__(self, limit: int):
        self.limit = limit
        self.idle: Deque[TcpConnection] = deque()
        self.active = 0
        self.waiters: Deque[Event] = deque()
        self.dns_done = False


class HttpClient:
    """Per-device HTTP client over the shared link and host stack."""

    def __init__(
        self,
        env: Environment,
        link: Link,
        stack: HostStack,
        max_conns_per_origin: int = 6,
        tls: bool = True,
    ):
        if max_conns_per_origin < 1:
            raise ValueError("need at least one connection per origin")
        self.env = env
        self.link = link
        self.stack = stack
        self.max_conns_per_origin = max_conns_per_origin
        self.tls = tls
        self._pools: dict[str, _Pool] = {}
        self.responses: list[HttpResponse] = []
        self._tracer = tracer_of(env)
        metrics = metrics_of(env)
        self._m_requests = metrics.counter("net.http.requests")
        self._m_dns = metrics.counter("net.http.dns_lookups")
        self._m_fetch_ms = metrics.histogram("web.fetch_ms")

    def _pool(self, origin: Origin) -> _Pool:
        if origin.host not in self._pools:
            self._pools[origin.host] = _Pool(self.max_conns_per_origin)
        return self._pools[origin.host]

    def _acquire(self, pool: _Pool):
        """Process: obtain a connection slot (idle conn or a new one)."""
        while True:
            if pool.idle:
                pool.active += 1
                return pool.idle.popleft(), False
            if pool.active < pool.limit:
                pool.active += 1
                return None, True
            waiter = self.env.event()
            pool.waiters.append(waiter)
            yield waiter

    def _release(self, pool: _Pool, conn: TcpConnection) -> None:
        pool.active -= 1
        pool.idle.append(conn)
        if pool.waiters:
            pool.waiters.popleft().succeed()

    def fetch(self, origin: Origin, url: str, body_bytes: float):
        """Process: GET ``url``; returns an :class:`HttpResponse`."""
        started = self.env.now
        with self._tracer.span("net.http.fetch", "net",
                               {"url": url, "bytes": float(body_bytes)}):
            pool = self._pool(origin)
            if not pool.dns_done:
                pool.dns_done = True
                self._m_dns.inc()
                yield self.env.timeout(DNS_LOOKUP_RTTS * self.link.spec.rtt_s)
            result = yield from self._acquire(pool)
            conn, fresh = result
            try:
                if conn is None:
                    conn = TcpConnection(self.env, self.link, self.stack,
                                         tls=self.tls)
                    yield from conn.connect()
                yield from conn.request(
                    REQUEST_OVERHEAD_BYTES,
                    RESPONSE_OVERHEAD_BYTES + body_bytes,
                    server_think_s=origin.server_think_s,
                )
            finally:
                self._release(pool, conn)
        response = HttpResponse(
            url=url,
            body_bytes=body_bytes,
            started_at=started,
            finished_at=self.env.now,
            from_new_connection=fresh,
        )
        self.responses.append(response)
        self._m_requests.inc()
        self._m_fetch_ms.observe(response.elapsed * 1000.0)
        return response


__all__ = [
    "DEFAULT_SERVER_THINK_S",
    "HttpClient",
    "HttpResponse",
    "Origin",
    "REQUEST_OVERHEAD_BYTES",
    "RESPONSE_OVERHEAD_BYTES",
]
