"""Unit tests for the trial runner and background load."""

import random

import pytest

from repro.core import BackgroundLoad, TrialRunner
from repro.core.experiments import derive_seed
from repro.device import Device, NEXUS4, by_name
from repro.sim import Environment


def test_derive_seed_is_stable():
    assert derive_seed("exp", 0) == derive_seed("exp", 0)
    assert derive_seed("exp", 0) != derive_seed("exp", 1)
    assert derive_seed("a", 0) != derive_seed("b", 0)


def test_runner_executes_all_trials():
    runner = TrialRunner(trials=4, experiment="t")
    seeds = runner.run(lambda seed: seed)
    assert len(seeds) == 4
    assert len(set(seeds)) == 4


def test_runner_summary():
    runner = TrialRunner(trials=3, experiment="t")
    summary = runner.summary(lambda seed: float(seed % 7))
    assert summary.n == 3


def test_runner_rejects_zero_trials():
    with pytest.raises(ValueError):
        TrialRunner(trials=0)


def test_background_load_emits_bursts():
    env = Environment()
    device = Device(env, NEXUS4, governor="PF")
    load = BackgroundLoad(env, device, random.Random(1))
    env.run(until=10.0)
    assert load.bursts > 3
    assert device.cpu.busy_time() > 0


def test_background_load_seed_determinism():
    counts = []
    for _ in range(2):
        env = Environment()
        device = Device(env, NEXUS4, governor="PF")
        load = BackgroundLoad(env, device, random.Random(42))
        env.run(until=5.0)
        counts.append(load.bursts)
    assert counts[0] == counts[1]


def test_background_load_hurts_slow_devices_more():
    """The jitter mechanism behind the paper's low-end error bars."""
    stolen = {}
    for name in ("Intex Amaze+", "Google Pixel2"):
        env = Environment()
        device = Device(env, by_name(name), governor="PF")
        BackgroundLoad(env, device, random.Random(7))
        env.run(until=10.0)
        stolen[name] = device.cpu.busy_time()
    assert stolen["Intex Amaze+"] > 2 * stolen["Google Pixel2"]


def test_background_load_rejects_bad_interval():
    env = Environment()
    device = Device(env, NEXUS4)
    with pytest.raises(ValueError):
        BackgroundLoad(env, device, random.Random(1), mean_interval_s=0)
