"""Fig 4c: streaming QoE vs core count — the one case video stalls."""

from repro.analysis import render_table
from repro.core.studies import VideoStudy, VideoStudyConfig
from repro.video import VideoSpec


def run_fig4c():
    study = VideoStudy(VideoStudyConfig(clip=VideoSpec(duration_s=60),
                                        trials=1))
    return study.vs_cores(cores=(1, 2, 3, 4))


def test_fig4c(benchmark, fig_printer):
    points = benchmark.pedantic(run_fig4c, rounds=1, iterations=1)
    table = render_table(
        ["Cores", "Startup (s)", "Stall ratio"],
        [[p.label, f"{p.startup.mean:.2f}", f"{p.stall_ratio.mean:.3f}"]
         for p in points],
    )
    fig_printer("Fig 4c: YouTube vs number of cores (Nexus4)", table)
    by_cores = {p.label: p for p in points}
    # Paper: single core → ~+4 s startup and ~15 % stall ratio.
    assert by_cores[1].startup.mean > by_cores[4].startup.mean + 2.0
    assert 0.08 < by_cores[1].stall_ratio.mean < 0.30
    assert all(by_cores[n].stall_ratio.mean < 0.03 for n in (2, 3, 4))
