"""Differential tests: the engine agrees with Python's ``re`` module."""

import re as pyre

import pytest

from repro.regexlib import Regex

#: (pattern, subject) pairs spanning the supported syntax.
CASES = [
    (r"abc", "xxabcyy"),
    (r"abc", "no match here"),
    (r"a+b", "aaab"),
    (r"a+?b", "aaab"),
    (r"a*", "aaa"),
    (r"a*?", "aaa"),
    (r"(a|b)*c", "ababac"),
    (r"\d{2,4}", "x12345y"),
    (r"[a-f0-9]+", "zzdeadbeef99!"),
    (r"https?://([^/]+)/(\w*)", "see https://example.com/path and more"),
    (r"^hello", "hello world"),
    (r"^hello", "say hello"),
    (r"world$", "hello world"),
    (r"world$", "worldly"),
    (r"\bcat\b", "a cat sat"),
    (r"\bcat\b", "concatenate"),
    (r"\Bcat", "concat"),
    (r"colou?r", "my color is"),
    (r"(\w+)@(\w+)\.com", "mail me bob@example.com ok"),
    (r"[^aeiou ]+", "the quick brown"),
    (r"(ab){2,3}", "ababab"),
    (r"(ab){2,3}?", "ababab"),
    (r"x|", "y"),
    (r"a{3}", "aaaa"),
    (r"a{3}", "aa"),
    (r"\.{2}", "wait.. what"),
    (r"[\d\s]+", "a 12 3b"),
    (r"(a(b(c)))d", "xabcd"),
    (r"(?:foo|bar)+", "foobarfoo!"),
    (r"[?&]([^=&]+)=([^&]*)", "/p?a=1&b=2"),
    (r"\d{4}-\d{2}-\d{2}", "due 2018-10-31 ok"),
    (r"(?:Chrome|Firefox)/(\d+)\.(\d+)", "Chrome/63.0.3239 Mobile"),
    (r"#[0-9a-fA-F]{6}\b", "color #1A2b3C."),
    (r"(a?)(b?)c", "bc"),
    (r"((a)|(b))+", "ab"),
    (r"[abc]*bc", "aabc"),
    (r"\s+$", "trailing   "),
    (r"^\s*", "   lead"),
    (r"(x+)(x*)", "xxxx"),
]


@pytest.mark.parametrize("pattern,subject", CASES)
def test_search_matches_re(pattern, subject):
    ours = Regex(pattern).search(subject)
    ref = pyre.search(pattern, subject)
    if ref is None:
        assert ours is None
    else:
        assert ours is not None
        assert ours.span() == ref.span()
        assert ours.groups() == ref.groups()


@pytest.mark.parametrize("pattern,subject", CASES)
def test_match_anchored_matches_re(pattern, subject):
    ours = Regex(pattern).match(subject)
    ref = pyre.match(pattern, subject)
    if ref is None:
        assert ours is None
    else:
        assert ours is not None
        assert ours.span() == ref.span()


@pytest.mark.parametrize("pattern,subject", CASES)
def test_fullmatch_matches_re(pattern, subject):
    ours = Regex(pattern).fullmatch(subject)
    ref = pyre.fullmatch(pattern, subject)
    assert (ours is None) == (ref is None)
    if ref is not None:
        assert ours.span() == ref.span()


@pytest.mark.parametrize("pattern,subject", [
    # Lazy empty-capable patterns are excluded: CPython ≥3.7 retries a
    # non-empty match at the same position after an empty one, a
    # backtracking-specific rule this engine (like RE2) does not follow.
    (p, s) for p, s in CASES
    if pyre.compile(p).groups == 0 and "*?" not in p
])
def test_findall_matches_re(pattern, subject):
    assert Regex(pattern).findall(subject) == pyre.findall(pattern, subject)


def test_match_object_api():
    found = Regex(r"(\w+)=(\d+)").search("key=42;")
    assert found is not None
    assert found.group() == "key=42"
    assert found.group(1) == "key"
    assert found.group(2) == "42"
    assert found.start() == 0
    assert found.end() == 6
    assert found.span(2) == (4, 6)
    with pytest.raises(IndexError):
        found.group(3)


def test_unmatched_group_is_none():
    found = Regex(r"(a)|(b)").search("b")
    assert found.groups() == (None, "b")


def test_finditer_non_overlapping():
    spans = [m.span() for m in Regex(r"\d+").finditer("1 22 333")]
    assert spans == [(0, 1), (2, 4), (5, 8)]


def test_finditer_handles_empty_matches():
    spans = [m.span() for m in Regex(r"a*").finditer("ab")]
    ref = [m.span() for m in pyre.finditer(r"a*", "ab")]
    assert spans == ref


def test_ledger_accumulates():
    regex = Regex(r"\d+")
    assert regex.ledger.total_ops == 0
    regex.search("abc123")
    ops_after_one = regex.ledger.total_ops
    assert ops_after_one > 0
    regex.search("abc123")
    assert regex.ledger.total_ops == pytest.approx(2 * ops_after_one)
    assert regex.ledger.calls == 2


def test_test_uses_dfa_when_possible():
    regex = Regex(r"(?:doubleclick|adservice)\.")
    assert regex.test("https://adservice.example/x")
    assert not regex.test("https://img.example/x")
    assert regex.ledger.dfa_ops > 0
    assert regex.ledger.pike_ops == 0


def test_test_falls_back_for_word_boundaries():
    regex = Regex(r"\bcat\b")
    assert regex.test("a cat here")
    assert regex.ledger.pike_ops > 0
    assert regex.ledger.dfa_ops == 0


def test_compile_caches():
    from repro.regexlib import compile as regex_compile

    first = regex_compile(r"cache-me-\d+")
    second = regex_compile(r"cache-me-\d+")
    assert first is second


def test_longer_subject_costs_more():
    regex = Regex(r"zzz")
    regex.search("a" * 100)
    small = regex.ledger.total_ops
    regex2 = Regex(r"zzz")
    regex2.search("a" * 1000)
    assert regex2.ledger.total_ops > small * 5
