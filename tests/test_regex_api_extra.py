"""Tests for named groups, sub, split, and groupdict."""

import re as pyre

import pytest

from repro.regexlib import Regex, RegexSyntaxError


def test_named_group_capture():
    regex = Regex(r"(?P<user>[\w.]+)@(?P<host>[\w.]+)")
    found = regex.search("write to bob.smith@example.com today")
    assert found is not None
    assert found.group("user") == "bob.smith"
    assert found.group("host") == "example.com"
    assert found.groupdict() == {"user": "bob.smith", "host": "example.com"}
    assert found.span("user") == found.span(1)


def test_named_groups_agree_with_re():
    pattern = r"(?P<key>[^=&]+)=(?P<value>[^&]*)"
    subject = "a=1&bb=22"
    ours = Regex(pattern).search(subject)
    ref = pyre.search(pattern, subject)
    assert ours.groupdict() == ref.groupdict()


def test_unmatched_named_group_is_none():
    regex = Regex(r"(?P<a>x)|(?P<b>y)")
    found = regex.search("y")
    assert found.groupdict() == {"a": None, "b": "y"}


def test_unknown_group_name_raises():
    found = Regex(r"(?P<a>x)").search("x")
    with pytest.raises(IndexError):
        found.group("missing")


def test_duplicate_group_name_rejected():
    with pytest.raises(RegexSyntaxError, match="duplicate"):
        Regex(r"(?P<a>x)(?P<a>y)")


def test_bad_group_name_rejected():
    with pytest.raises(RegexSyntaxError):
        Regex(r"(?P<1bad>x)")
    with pytest.raises(RegexSyntaxError):
        Regex(r"(?P<>x)")


def test_named_and_positional_groups_interleave():
    regex = Regex(r"(\d+)-(?P<mid>\w+)-(\d+)")
    found = regex.search("12-abc-34")
    assert found.groups() == ("12", "abc", "34")
    assert found.group("mid") == "abc"
    assert found.group(2) == "abc"


@pytest.mark.parametrize("pattern,repl,subject", [
    (r"\d+", "#", "a1b22c333"),
    (r"\s+", " ", "too   many    spaces"),
    (r"cat", "dog", "cat and cat"),
    (r"x", "y", "no match"),
])
def test_sub_matches_re(pattern, repl, subject):
    ours, n = Regex(pattern).sub(repl, subject)
    ref, ref_n = pyre.subn(pattern, repl, subject)
    assert ours == ref
    assert n == ref_n


def test_sub_with_count():
    text, n = Regex(r"\d").sub("*", "1 2 3 4", count=2)
    assert text == "* * 3 4"
    assert n == 2


@pytest.mark.parametrize("pattern,subject", [
    (r",", "a,b,,c"),
    (r"\s+", "split   on whitespace"),
    (r"-", "nodashes"),
])
def test_split_matches_re(pattern, subject):
    assert Regex(pattern).split(subject) == pyre.split(pattern, subject)


def test_split_maxsplit():
    assert Regex(r",").split("a,b,c,d", maxsplit=2) == ["a", "b", "c,d"]


def test_split_ignores_empty_matches():
    # CPython would splice empties; we document skipping them instead.
    assert Regex(r"x*").split("abc") == ["abc"]
