"""WProf-style critical-path extraction over a page-load activity DAG.

The critical path is traced backward from the activity that determines the
load event: at each step we move to the dependency that finished *last*
(the one that gated this activity's start).  Time along the path is
decomposed into:

* per-kind activity durations (``parse``, ``script``, ``fetch``, …), and
* *queueing gaps* between a dependency's end and the activity's start —
  attributed as ``<kind>-queue`` (e.g. a script that sat behind other
  main-thread work, or a fetch that waited for a connection slot).

Compute time on the critical path = compute-kind durations + compute
queueing; network time = fetch durations + fetch queueing.  This mirrors
how WProf's dependency graphs separate computation from network activities
(§3.1 of the paper).

Two input sources feed the same walk:

* the in-memory :class:`~repro.web.metrics.ActivityRecord` list the
  browser engine charges as it runs (the original, always-available path);
* a :mod:`repro.obs` trace — the ``web``-category spans the engine mirrors
  into the tracer carry the full activity record (id, kind, label, deps)
  in their args, so :func:`activities_from_trace` can rebuild the DAG
  from a trace alone.  When :func:`extract_critical_path` is handed a
  ``trace``, it prefers the trace-derived DAG and falls back to the
  charge-based records when the trace contains no web spans.  A
  consistency test asserts both sources agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

#: Activity kinds considered compute (main/raster-thread work).
COMPUTE_KINDS = frozenset(
    {"parse", "script", "style", "layout", "paint", "decode"}
)
#: Activity kinds considered network.
NETWORK_KINDS = frozenset({"fetch"})

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.web.metrics import ActivityRecord


@dataclass
class CriticalPath:
    """The extracted path and its time decomposition."""

    activities: list["ActivityRecord"]
    kind_breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def compute_time(self) -> float:
        """Compute durations + compute queueing along the path."""
        return sum(
            t for kind, t in self.kind_breakdown.items()
            if kind in COMPUTE_KINDS
            or (kind.endswith("-queue") and kind[:-6] in COMPUTE_KINDS)
        )

    @property
    def network_time(self) -> float:
        """Network durations + network queueing along the path."""
        return sum(
            t for kind, t in self.kind_breakdown.items()
            if kind in NETWORK_KINDS
            or (kind.endswith("-queue") and kind[:-6] in NETWORK_KINDS)
        )

    @property
    def total(self) -> float:
        return sum(self.kind_breakdown.values())


def activities_from_trace(trace: Sequence[object]) -> list["ActivityRecord"]:
    """Rebuild the activity DAG from ``web``-category tracer spans.

    The browser engine mirrors every :class:`ActivityRecord` into its
    tracer as a span whose args carry ``id``/``kind``/``label``/``deps``;
    spans of other categories (kernel, netstack, device) and web spans
    without an ``id`` are ignored.
    """
    from repro.web.metrics import ActivityRecord  # runtime: cycle guard

    activities = []
    for span in trace:
        if getattr(span, "cat", None) != "web":
            continue
        args = getattr(span, "args", None)
        if not args or "id" not in args:
            continue
        activities.append(ActivityRecord(
            id=int(args["id"]),
            kind=str(args.get("kind", "")),
            label=str(args.get("label", "")),
            start=float(span.start),  # type: ignore[attr-defined]
            end=float(span.end),  # type: ignore[attr-defined]
            deps=tuple(int(dep) for dep in args.get("deps", ())),
        ))
    activities.sort(key=lambda activity: activity.id)
    return activities


def _walk_backward(activities: Sequence["ActivityRecord"],
                   plt: float) -> CriticalPath:
    """The backward walk shared by both input sources."""
    by_id = {a.id: a for a in activities}
    breakdown: dict[str, float] = {}

    def charge(kind: str, amount: float) -> None:
        if amount > 1e-12:
            breakdown[kind] = breakdown.get(kind, 0.0) + amount

    current = max(activities, key=lambda a: a.end)
    path = [current]
    charge(current.kind, current.duration)
    while True:
        deps = [by_id[d] for d in current.deps if d in by_id]
        if not deps:
            break
        gate = max(deps, key=lambda a: a.end)
        # Queueing: the activity waited after its gating dep finished.
        charge(f"{current.kind}-queue", max(current.start - gate.end, 0.0))
        current = gate
        path.append(current)
        charge(current.kind, current.duration)
    # Lead-in before the first activity (navigation DNS + handshakes).
    charge("fetch-queue", max(current.start, 0.0))
    path.reverse()
    return CriticalPath(path, breakdown)


def extract_critical_path(
    activities: Sequence["ActivityRecord"], plt: float,
    *, trace: Optional[Sequence[object]] = None,
) -> CriticalPath:
    """Trace the critical path backward from the last-finishing activity.

    ``plt`` bounds the walk; any lead-in before the first activity (initial
    DNS/navigation latency) is attributed to network queueing.  When a
    ``trace`` (a sequence of :class:`repro.obs.Span`) is provided, the
    DAG is rebuilt from its web spans; the charge-based ``activities``
    remain the fallback when the trace carries none.
    """
    if trace is not None:
        traced = activities_from_trace(trace)
        if traced:
            activities = traced
    if not activities:
        return CriticalPath([], {})
    return _walk_backward(activities, plt)


__all__ = ["COMPUTE_KINDS", "CriticalPath", "NETWORK_KINDS",
           "activities_from_trace", "extract_critical_path"]
