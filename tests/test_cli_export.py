"""Tests for the CLI and data-export helpers."""

import csv
import json

import pytest

from repro.analysis.export import write_csv, write_json
from repro.cli import build_parser, main


def test_write_csv_roundtrip(tmp_path):
    path = write_csv(tmp_path / "sub" / "fig.csv",
                     ["x", "y"], [[1, 2.5], [3, 4.5]])
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows == [["x", "y"], ["1", "2.5"], ["3", "4.5"]]


def test_write_json_roundtrip(tmp_path):
    path = write_json(tmp_path / "fig.json", {"series": [1, 2, 3]})
    assert json.loads(path.read_text()) == {"series": [1, 2, 3]}


def test_parser_accepts_known_figures():
    parser = build_parser()
    args = parser.parse_args(["fig6"])
    assert args.figure == "fig6"
    assert args.pages == 5


def test_parser_rejects_unknown_figure():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["fig99"])


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig6" in out and "table1" in out and "joint" in out


def test_cli_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Pixel2" in out
    assert "Intex" in out


def test_cli_fig6_with_csv(tmp_path, capsys):
    assert main(["fig6", "--csv", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "throughput_mbps" in out
    written = tmp_path / "fig6.csv"
    assert written.exists()
    with written.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["clock_mhz", "throughput_mbps"]
    assert len(rows) == 13  # header + 12 ladder steps


def test_cli_fig3bcd_small(capsys):
    assert main(["fig3bcd", "--pages", "2"]) == 0
    out = capsys.readouterr().out
    assert "Fig 3b" in out and "Fig 3c" in out and "Fig 3d" in out
