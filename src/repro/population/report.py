"""Fleet report renderers: text tables, canonical JSON, and HTML.

Everything renders from :attr:`FleetReport.aggregate` — the streamed
snapshot — so the renderers are pure functions of the aggregate and
inherit its determinism: for a fixed cache state, the same seed renders
the same bytes at any worker count.

Quantiles come from :func:`repro.obs.export.histogram_quantile` (bucket
resolution); a quantile that lands in the ``+Inf`` overflow bucket
renders as ``>B`` where ``B`` is the last finite bucket bound.  The HTML
document reuses :func:`repro.obs.report.html_page`, so fleet reports
look and ship like run reports.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis import render_table
from repro.obs.report import escape, html_page
from repro.population.aggregate import ALL_TIER, WORKLOAD_METRICS
from repro.population.fleet import FleetReport

#: Quantiles every per-tier row reports.
QUANTILES = (0.5, 0.9, 0.99)

_TIER_HEADERS = ["tier", "n", "mean", "stdev", "min", "max",
                 "p50<=", "p90<=", "p99<="]


def _fmt_quantile(value: float, last_bound: float) -> str:
    if math.isinf(value):
        return f">{last_bound:g}"
    return f"{value:g}"


def _tier_order(report: FleetReport, entries: Dict[str, dict]) -> List[str]:
    """``all`` first, then configured tier order, then any leftovers."""
    order = [ALL_TIER] + [tier.name for tier in report.config.tiers]
    ordered = [name for name in order if name in entries]
    ordered += [name for name in sorted(entries) if name not in ordered]
    return ordered


def _metric_rows(report: FleetReport, workload: str,
                 metric: str) -> List[List[str]]:
    entries = report.series(workload, metric)
    rows: List[List[str]] = []
    for tier in _tier_order(report, entries):
        entry = entries[tier]
        n = entry["n"]
        if n == 0:
            rows.append([tier, "0", "n/a", "n/a", "n/a", "n/a",
                         "n/a", "n/a", "n/a"])
            continue
        last_bound = max(
            float(label) for label in entry["hist"]["buckets"]
            if label != "+Inf"
        )
        quantiles = [
            _fmt_quantile(report.quantile(workload, metric, q, tier),
                          last_bound)
            for q in QUANTILES
        ]
        rows.append([
            tier, str(n), f"{entry['mean']:.3f}", f"{entry['stdev']:.3f}",
            f"{entry['min']:.3f}", f"{entry['max']:.3f}", *quantiles,
        ])
    return rows


def _mix_line(counts: Dict[str, int], order: List[str]) -> str:
    ordered = [name for name in order if name in counts]
    ordered += [name for name in sorted(counts) if name not in ordered]
    return " ".join(f"{name}={counts[name]}" for name in ordered)


def _workload_order(report: FleetReport) -> List[str]:
    return [workload for workload, _ in report.config.workload_mix]


def render_text(report: FleetReport) -> str:
    """Plain-text fleet report (the ``population`` command's stdout)."""
    aggregate = report.aggregate
    mix = aggregate.get("mix", {})
    failures = report.failures
    lines: List[str] = ["population fleet report",
                        "======================="]
    headline = (f"experiment {report.experiment} · {report.sessions} "
                f"sessions ({report.completed} ok, "
                f"{sum(failures.values())} failed)")
    if report.quarantined:
        headline += f" · {report.quarantined} quarantined"
    lines.append(headline)
    lines.append("tiers: " + _mix_line(
        mix.get("tiers", {}), [t.name for t in report.config.tiers]))
    lines.append("workloads: " + _mix_line(
        mix.get("workloads", {}), _workload_order(report)))
    lines.append("networks: " + _mix_line(
        mix.get("networks", {}), [n.name for n in report.config.networks]))
    if failures:
        lines.append("failure taxonomy: " + ", ".join(
            f"{status}={failures[status]}" for status in sorted(failures)))
    else:
        lines.append("failure taxonomy: clean (no failed sessions)")
    for workload in _workload_order(report):
        for metric in WORKLOAD_METRICS.get(workload, ()):
            rows = _metric_rows(report, workload, metric)
            if not rows:
                continue
            lines.append("")
            lines.append(f"{workload} · {metric}")
            lines.append(render_table(_TIER_HEADERS, rows))
    return "\n".join(lines) + "\n"


def render_html(report: FleetReport) -> str:
    """Self-contained HTML fleet report (``--html`` artifact)."""
    aggregate = report.aggregate
    mix = aggregate.get("mix", {})
    failures = report.failures
    failed = sum(failures.values())
    parts: List[str] = [
        f"<p><span class=\"ok\">{report.completed} ok</span>, "
        f"<span class=\"{'bad' if failed else 'ok'}\">{failed} failed</span>"
        f" of {report.sessions} sessions "
        f"<span class=\"meta\">(experiment "
        f"<code>{escape(report.experiment)}</code>"
        + (f", {report.quarantined} quarantined" if report.quarantined
           else "")
        + ")</span></p>",
        "<p class=\"meta\">tiers: " + escape(_mix_line(
            mix.get("tiers", {}),
            [t.name for t in report.config.tiers]))
        + " · workloads: " + escape(_mix_line(
            mix.get("workloads", {}), _workload_order(report)))
        + " · networks: " + escape(_mix_line(
            mix.get("networks", {}),
            [n.name for n in report.config.networks])) + "</p>",
    ]
    if failures:
        parts.append("<p>failure taxonomy: " + ", ".join(
            f"<code>{escape(status)}</code>={failures[status]}"
            for status in sorted(failures)) + "</p>")
    for workload in _workload_order(report):
        for metric in WORKLOAD_METRICS.get(workload, ()):
            rows = _metric_rows(report, workload, metric)
            if not rows:
                continue
            parts.append(f"<h2>{escape(workload)} · {escape(metric)}</h2>")
            parts.append("<table><tr>" + "".join(
                f"<th>{escape(h)}</th>" for h in _TIER_HEADERS) + "</tr>")
            for row in rows:
                parts.append("<tr>" + "".join(
                    f"<td>{escape(cell)}</td>" for cell in row) + "</tr>")
            parts.append("</table>")
    return html_page("repro population fleet report", parts)


__all__ = ["QUANTILES", "render_html", "render_text"]
