"""Behaviour tests for video telephony (Figs 2c, 5a–5d)."""

import pytest

from repro.device import Device, NEXUS4, PIXEL2, by_name
from repro.netstack import Link
from repro.rtc import CallConfig, SkypeLikeAbr, VideoCall
from repro.rtc.abr import RTC_LADDER, RtcCostModel
from repro.sim import Environment


def call(spec=NEXUS4, duration=10.0, **device_kwargs):
    env = Environment()
    device = Device(env, spec, **device_kwargs)
    video_call = VideoCall(env, device, Link(env),
                           CallConfig(call_duration_s=duration))
    return env.run(env.process(video_call.run()))


def test_full_rate_at_high_clock():
    result = call(pinned_mhz=1512)
    assert result.frame_rate == pytest.approx(30.0, abs=1.5)


def test_frame_rate_drops_at_low_clock():
    """Fig 5a: ≈17 fps at 384 MHz."""
    result = call(pinned_mhz=384)
    assert 14.0 < result.frame_rate < 21.0


def test_setup_delay_swing_across_ladder():
    """Fig 5a: ~18 s more setup at 384 vs 1512 MHz."""
    slow = call(pinned_mhz=384)
    fast = call(pinned_mhz=1512)
    swing = slow.setup_delay_s - fast.setup_delay_s
    assert 12.0 < swing < 24.0


def test_setup_delay_monotone_in_clock():
    setups = [call(pinned_mhz=mhz).setup_delay_s
              for mhz in (384, 702, 1026, 1512)]
    assert setups == sorted(setups, reverse=True)


def test_low_end_devices_drop_frames():
    """Fig 2c: 30 fps on the Pixel2 down to ≈18 on the Intex."""
    intex = call(spec=by_name("Intex Amaze+"), governor="OD")
    pixel = call(spec=PIXEL2, governor="OD")
    assert pixel.frame_rate == pytest.approx(30.0, abs=1.5)
    assert 15.0 < intex.frame_rate < 23.0


def test_low_end_uses_software_encoder():
    intex = call(spec=by_name("Intex Amaze+"), governor="OD")
    pixel = call(spec=PIXEL2, governor="OD")
    assert intex.sw_encode
    assert not pixel.sw_encode


def test_abr_negotiates_lower_resolution_at_low_clock():
    """§3.3: Skype requests low-res video under slow clocks."""
    slow = call(pinned_mhz=384)
    fast = call(pinned_mhz=1512)
    assert slow.format.pixels < fast.format.pixels


def test_single_core_halves_frame_rate():
    one = call(governor="OD", online_cores=1)
    four = call(governor="OD", online_cores=4)
    assert one.frame_rate < 0.7 * four.frame_rate


def test_powersave_governor_hurts():
    pw = call(governor="PW")
    pf = call(governor="PF")
    assert pw.setup_delay_s > 1.3 * pf.setup_delay_s
    assert pw.frame_rate <= pf.frame_rate + 0.1


def test_memory_has_mild_effect():
    tight = call(governor="OD", memory_gb=0.5)
    full = call(governor="OD", memory_gb=2.0)
    assert tight.frame_rate > 0.6 * full.frame_rate


def test_abr_probe_estimates():
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=1512)
    abr = SkypeLikeAbr()
    estimates = [abr.estimate_fps(device, fmt) for fmt in RTC_LADDER]
    # Higher formats are never estimated faster.
    assert estimates == sorted(estimates, reverse=True)


def test_abr_floor_is_lowest_format():
    env = Environment()
    device = Device(env, by_name("Intex Amaze+"), pinned_mhz=300)
    fmt = SkypeLikeAbr().select(device)
    assert fmt == RTC_LADDER[0]


def test_cost_model_sw_encode_penalty():
    cost = RtcCostModel()
    fmt = RTC_LADDER[1]
    assert cost.direction_ops(fmt, True) > cost.direction_ops(fmt, False)


def test_frames_counted():
    result = call(pinned_mhz=1512, duration=5.0)
    assert result.frames_sent == pytest.approx(150, abs=10)
