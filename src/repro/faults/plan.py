"""Declarative fault plans: specs, the event trace, and installation.

A :class:`FaultPlan` is the single entry point studies use to degrade a
simulated testbed.  It is a list of immutable fault *specs* (what can go
wrong, with which parameters); :meth:`FaultPlan.install` binds them to one
trial's environment, constructing the matching injector processes.

Determinism contract: ``install`` takes one explicit seeded RNG (built via
:func:`repro.core.background.make_rng`) and derives an independent child
stream per spec, *in spec order*, so a given ``(experiment, trial,
FaultPlan)`` triple replays bit-identically regardless of how the
injectors interleave at runtime.  Every state transition an injector makes
is appended to a :class:`FaultTrace`, whose canonical JSONL serialization
is the replay fingerprint tests assert on.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

from repro.core.background import make_rng
from repro.device import Device
from repro.netstack import Link
from repro.obs import metrics_of, tracer_of
from repro.sim import Environment, Process


def spawn_rng(rng: random.Random) -> random.Random:
    """Derive an independent child RNG stream from a parent.

    Drawing the child seed from the parent keeps one audited seeding root
    (``make_rng``) while decoupling the consumers: adding draws inside one
    injector never perturbs another injector's stream.
    """
    return make_rng(rng.getrandbits(32))


# -- the fault event trace ---------------------------------------------------


@dataclass(frozen=True)
class FaultEvent:
    """One injector state transition at one simulated instant."""

    t: float
    injector: str
    action: str
    detail: str = ""

    def as_dict(self) -> dict:
        return {"t": self.t, "injector": self.injector,
                "action": self.action, "detail": self.detail}


class FaultTrace:
    """Ordered record of every fault the plan injected into one trial."""

    def __init__(self) -> None:
        self.events: list[FaultEvent] = []

    def record(self, env: Environment, injector: str, action: str,
               detail: str = "") -> None:
        """Append one transition stamped with the current simulated time.

        Every injection is also mirrored into the environment's tracer
        (as a ``faults``-category instant) and counted in
        ``faults.injected`` when observability is installed.
        """
        self.events.append(
            FaultEvent(t=round(env.now, 9), injector=injector,
                       action=action, detail=detail)
        )
        tracer_of(env).instant(f"fault.{injector}", "faults",
                               args={"action": action, "detail": detail})
        metrics_of(env).counter("faults.injected").inc()

    def to_jsonl(self) -> str:
        """Canonical serialization — byte-identical across replays."""
        return "\n".join(
            json.dumps(event.as_dict(), sort_keys=True,
                       separators=(",", ":"))
            for event in self.events
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


# -- fault specs -------------------------------------------------------------


@dataclass(frozen=True)
class BurstLossSpec:
    """Gilbert–Elliott two-state burst loss on the link.

    The chain dwells exponentially in a *good* state (loss ``p_good``) and
    a *bad* state (loss ``p_bad``); shorter ``mean_bad_s`` with the same
    stationary loss means burstier damage, the axis the faults study
    sweeps.
    """

    start_s: float = 0.0
    p_good: float = 0.0
    p_bad: float = 0.30
    mean_good_s: float = 5.0
    mean_bad_s: float = 1.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if not 0 <= self.p_good < 1 or not 0 <= self.p_bad < 1:
            raise ValueError("loss probabilities must lie in [0, 1)")
        if self.mean_good_s <= 0 or self.mean_bad_s <= 0:
            raise ValueError("state dwell times must be positive")


@dataclass(frozen=True)
class LinkFlapSpec:
    """Full outages: the link goes down and comes back, repeatedly."""

    start_s: float = 0.0
    mean_up_s: float = 10.0
    mean_down_s: float = 1.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.mean_up_s <= 0 or self.mean_down_s <= 0:
            raise ValueError("mean up/down times must be positive")


@dataclass(frozen=True)
class LatencySpikeSpec:
    """Transient latency spikes (bufferbloat, rate-adaptation stalls)."""

    start_s: float = 0.0
    mean_interval_s: float = 4.0
    spike_s: float = 0.25
    spike_duration_s: float = 0.5

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.mean_interval_s <= 0:
            raise ValueError("mean interval must be positive")
        if self.spike_s <= 0 or self.spike_duration_s <= 0:
            raise ValueError("spike magnitude and duration must be positive")


@dataclass(frozen=True)
class ThermalThrottleSpec:
    """Deterministic thermal-throttle schedule capping the DVFS ladder.

    ``schedule`` is an ascending sequence of ``(t_s, cap_fraction)`` pairs;
    at each time the CPU's ladder is capped at ``cap_fraction`` of every
    cluster's top frequency (1.0 lifts the cap).
    """

    schedule: Tuple[Tuple[float, float], ...] = ((2.0, 0.5),)

    def __post_init__(self) -> None:
        if not self.schedule:
            raise ValueError("schedule must be non-empty")
        last = -1.0
        for t_s, cap in self.schedule:
            if t_s < 0:
                raise ValueError("schedule times must be non-negative")
            if t_s <= last:
                raise ValueError("schedule times must be strictly ascending")
            if not 0 < cap <= 1:
                raise ValueError("cap fractions must lie in (0, 1]")
            last = t_s


@dataclass(frozen=True)
class MemoryPressureSpec:
    """Stochastic memory-pressure episodes (competing apps, LMK churn)."""

    start_s: float = 0.0
    mean_interval_s: float = 2.0
    pressure_gb: Tuple[float, float] = (0.1, 0.5)

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.mean_interval_s <= 0:
            raise ValueError("mean interval must be positive")
        low, high = self.pressure_gb
        if low < 0 or high < low:
            raise ValueError("pressure_gb must be a non-negative (low, high)")


@dataclass(frozen=True)
class CrashSpec:
    """Crash (interrupt) the trial's foreground sim processes.

    With probability ``probability`` the injector picks a uniform instant
    in ``window_s`` and throws :class:`repro.sim.Interrupt` into every
    target process still alive, modelling app/measurement-harness crashes
    mid-run (the failure mode in-situ Android measurement studies report).
    """

    probability: float = 1.0
    window_s: Tuple[float, float] = (0.0, 5.0)
    cause: str = "fault:crash"

    def __post_init__(self) -> None:
        if not 0 <= self.probability <= 1:
            raise ValueError("probability must lie in [0, 1]")
        low, high = self.window_s
        if low < 0 or high < low:
            raise ValueError("window_s must be a non-negative (low, high)")


FaultSpec = Union[
    BurstLossSpec,
    LinkFlapSpec,
    LatencySpikeSpec,
    ThermalThrottleSpec,
    MemoryPressureSpec,
    CrashSpec,
]

_LINK_SPECS = (BurstLossSpec, LinkFlapSpec, LatencySpikeSpec)
_DEVICE_SPECS = (ThermalThrottleSpec, MemoryPressureSpec)


# -- the plan ----------------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, reusable list of fault specs for one scenario.

    The plan is declarative — it holds no environment or RNG state — so a
    single plan object can be installed into every trial of a study.
    """

    specs: Tuple[FaultSpec, ...] = ()

    def __init__(self, specs: Sequence[FaultSpec] = ()):
        object.__setattr__(self, "specs", tuple(specs))
        for spec in self.specs:
            if not isinstance(spec, (_LINK_SPECS + _DEVICE_SPECS + (CrashSpec,))):
                raise TypeError(f"unknown fault spec {spec!r}")

    def describe(self) -> str:
        """One-line human summary, stable across runs."""
        return "; ".join(type(spec).__name__ for spec in self.specs) or "clean"

    def install(
        self,
        env: Environment,
        *,
        rng: random.Random,
        link: Optional[Link] = None,
        device: Optional[Device] = None,
        processes: Sequence[Process] = (),
        trace: Optional[FaultTrace] = None,
    ) -> FaultTrace:
        """Bind every spec to ``env``, returning the shared fault trace.

        ``rng`` must be an explicitly seeded stream (``make_rng(seed)``) —
        simlint rule FLT401 enforces this at call sites.  Specs that need a
        target (``link``/``device``/``processes``) raise ``ValueError``
        when it was not provided.
        """
        # Imported here to keep plan.py free of injector-module cycles.
        from repro.faults.device import MemoryPressureInjector, ThermalThrottleInjector
        from repro.faults.link import (
            GilbertElliottLossInjector,
            LatencySpikeInjector,
            LinkFlapInjector,
        )
        from repro.faults.process import CrashInjector

        trace = trace if trace is not None else FaultTrace()
        for spec in self.specs:
            child = spawn_rng(rng)
            if isinstance(spec, _LINK_SPECS):
                if link is None:
                    raise ValueError(
                        f"{type(spec).__name__} needs a link target; pass link="
                    )
                if isinstance(spec, BurstLossSpec):
                    GilbertElliottLossInjector(env, link, spec, rng=child,
                                               trace=trace)
                elif isinstance(spec, LinkFlapSpec):
                    LinkFlapInjector(env, link, spec, rng=child, trace=trace)
                else:
                    LatencySpikeInjector(env, link, spec, rng=child,
                                         trace=trace)
            elif isinstance(spec, _DEVICE_SPECS):
                if device is None:
                    raise ValueError(
                        f"{type(spec).__name__} needs a device target; "
                        f"pass device="
                    )
                if isinstance(spec, ThermalThrottleSpec):
                    ThermalThrottleInjector(env, device, spec, rng=child,
                                            trace=trace)
                else:
                    MemoryPressureInjector(env, device, spec, rng=child,
                                           trace=trace)
            else:
                if not processes:
                    raise ValueError(
                        "CrashSpec needs target processes; pass processes="
                    )
                CrashInjector(env, processes, spec, rng=child, trace=trace)
        return trace


__all__ = [
    "BurstLossSpec",
    "CrashSpec",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "FaultTrace",
    "LatencySpikeSpec",
    "LinkFlapSpec",
    "MemoryPressureSpec",
    "ThermalThrottleSpec",
    "spawn_rng",
]
