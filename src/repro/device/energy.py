"""Power and energy accounting.

Standard CMOS dynamic-power model per core::

    P_core(f) = P_static + c · f · V(f)²

with the rail voltage ``V(f)`` interpolated linearly across the DVFS ladder.
The meter observes cluster busy/frequency transitions (via
``Cluster.add_observer``) and integrates energy exactly between transitions,
so samples never miss short bursts.

The DSP draws a flat active power (a Hexagon-class aDSP runs a fixed
clock domain); the CPU-vs-DSP *median power ratio of ~4×* in the paper's
Fig 7b follows from these constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.cpu import CPU, Cluster, MHZ
from repro.sim import Environment


@dataclass(frozen=True)
class PowerSpec:
    """Electrical constants for one cluster.

    ``switching_nf`` is the effective switched capacitance in nanofarads;
    typical mobile big cores land near 1.0–1.5 nF, little cores near 0.4 nF.
    """

    v_min: float = 0.60
    v_max: float = 1.10
    switching_nf: float = 1.0
    static_w: float = 0.035

    def voltage(self, freq_mhz: float, min_mhz: float, max_mhz: float) -> float:
        """Rail voltage at ``freq_mhz``, linear across the ladder."""
        if max_mhz <= min_mhz:
            return self.v_max
        span = (freq_mhz - min_mhz) / (max_mhz - min_mhz)
        span = min(1.0, max(0.0, span))
        return self.v_min + span * (self.v_max - self.v_min)

    def dynamic_power(self, freq_mhz: float, min_mhz: float, max_mhz: float) -> float:
        """Active power of one busy core at ``freq_mhz`` in watts."""
        volts = self.voltage(freq_mhz, min_mhz, max_mhz)
        return self.switching_nf * 1e-9 * freq_mhz * MHZ * volts * volts


class EnergyMeter:
    """Integrates CPU energy over a simulation run.

    Attach one meter per device; it subscribes to every cluster and keeps a
    per-cluster running integral.  ``power_now`` exposes the instantaneous
    draw for power-trace experiments (Fig 7b).
    """

    def __init__(self, env: Environment, cpu: CPU, power: PowerSpec):
        self.env = env
        self.cpu = cpu
        self.power = power
        self._energy_j = 0.0
        self._last = env.now
        self._held_power = self._compute_power()
        for cluster in cpu.clusters:
            cluster.add_observer(self._on_transition)

    def _cluster_power(self, cluster: Cluster) -> float:
        spec = cluster.spec
        active = self.power.dynamic_power(cluster.freq_mhz, spec.min_mhz, spec.max_mhz)
        return (
            cluster.busy_cores * active
            + cluster.online_cores * self.power.static_w
        )

    def _compute_power(self) -> float:
        return sum(self._cluster_power(cluster) for cluster in self.cpu.clusters)

    @property
    def power_now(self) -> float:
        """Instantaneous CPU power draw in watts."""
        return self._compute_power()

    def _on_transition(self, cluster: Cluster) -> None:
        # The observer fires *after* a state change; the interval since the
        # previous transition ran at the power level held before it.
        self._integrate()
        self._held_power = self._compute_power()

    def _integrate(self) -> None:
        now = self.env.now
        if now > self._last:
            self._energy_j += self._held_power * (now - self._last)
        self._last = now

    @property
    def energy_j(self) -> float:
        """Total energy in joules up to the current simulated time."""
        self._integrate()
        return self._energy_j


@dataclass(frozen=True)
class DspPowerSpec:
    """Power constants for the DSP coprocessor power domain."""

    active_w: float = 0.28
    idle_w: float = 0.006


__all__ = ["DspPowerSpec", "EnergyMeter", "PowerSpec"]
