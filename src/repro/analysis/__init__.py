"""Analysis utilities: statistics, critical paths, tables, ASCII charts."""

from repro.analysis.critpath import CriticalPath, extract_critical_path
from repro.analysis.stats import Summary, cdf_points, mean, stdev, summarize
from repro.analysis.tables import ascii_bars, ascii_series, render_table

__all__ = [
    "CriticalPath",
    "Summary",
    "ascii_bars",
    "ascii_series",
    "cdf_points",
    "extract_critical_path",
    "mean",
    "render_table",
    "stdev",
    "summarize",
]
