"""Whole-project source model for dataflow rules.

File rules (``Rule``) see one AST at a time, which is enough for
syntactic invariants but blind to anything that crosses a module
boundary — an unseeded RNG returned by a helper, a wall-clock value
laundered through two calls into a journal, a lambda smuggled into a
process-pool task.  :class:`ProjectModel` is the shared substrate for
rules that need the whole program:

* every file is parsed exactly once (reusing the parse also used for
  file rules, so ``--project`` does not double the AST work);
* a symbol table maps qualified names (``repro.core.background.make_rng``,
  ``repro.core.experiments.RobustTrialRunner._run_trial``) to their
  definitions;
* a per-module import table resolves local names to qualified targets,
  including ``import numpy as np`` aliases and relative imports;
* an approximate call graph links each function to the project
  functions it may call (unresolvable calls are simply absent — the
  analyses on top treat "unknown" as benefit-of-the-doubt).

Everything is built deterministically: modules, symbols, and edges are
stored and iterated in sorted order so repeated runs produce
byte-identical reports (the linter holds itself to the determinism bar
it enforces).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  #: ``module.func`` or ``module.Class.method``
    module: str
    node: ast.AST  #: FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None  #: owning class qualname, if a method

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def params(self) -> List[str]:
        """Positional parameter names in order (``self`` included)."""
        args = self.node.args  # type: ignore[attr-defined]
        return [a.arg for a in args.posonlyargs + args.args]

    @property
    def keyword_only_params(self) -> List[str]:
        args = self.node.args  # type: ignore[attr-defined]
        return [a.arg for a in args.kwonlyargs]


@dataclass
class ClassInfo:
    """One class definition with its methods and field names."""

    qualname: str
    module: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Names assigned as ``self.X = ...`` anywhere in the class, plus
    #: annotated class-level fields (covers dataclasses).
    fields: Tuple[str, ...] = ()
    base_names: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def init(self) -> Optional[FunctionInfo]:
        return self.methods.get("__init__")

    def init_params(self) -> List[str]:
        """Constructor parameter names (``self`` stripped).

        For ``@dataclass`` classes without an explicit ``__init__``, the
        annotated field order is the constructor signature.
        """
        ctor = self.init
        if ctor is not None:
            params = ctor.params
            return params[1:] if params and params[0] == "self" else params
        return [name for name in self.fields]


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str  #: dotted module name, e.g. ``repro.core.background``
    path: str  #: display path (relative to the lint root when possible)
    tree: ast.Module
    source: str
    #: local name -> qualified target for every import in the module.
    imports: Dict[str, str] = field(default_factory=dict)


def module_name_for(path: Path) -> str:
    """Dotted module name for a file, walking up through packages.

    The package chain is whatever parent directories carry an
    ``__init__.py``; a standalone file is a top-level module named by its
    stem.  ``pkg/__init__.py`` maps to ``pkg`` itself.
    """
    resolved = path.resolve()
    parts: List[str] = []
    if resolved.stem != "__init__":
        parts.append(resolved.stem)
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts))


def _collect_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    """Map each imported local name to its fully qualified target."""
    table: Dict[str, str] = {}
    package_parts = module.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                table[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against the current package.
                # ``from . import x`` at level 1 inside pkg.mod -> pkg.x
                base_parts = package_parts[: len(package_parts) - node.level]
                base = ".".join(base_parts)
            else:
                base = node.module or ""
            if node.level and node.module:
                base = f"{base}.{node.module}" if base else node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


def _class_fields(node: ast.ClassDef) -> Tuple[str, ...]:
    names: List[str] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.append(stmt.target.id)
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Assign) or isinstance(sub, ast.AnnAssign)):
            targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    names.append(target.attr)
    seen: Set[str] = set()
    unique = []
    for name in names:
        if name not in seen:
            seen.add(name)
            unique.append(name)
    return tuple(unique)


class ProjectModel:
    """Parse-once model of every linted file plus resolution helpers."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: caller qualname -> sorted tuple of resolved callee qualnames.
        self._calls: Dict[str, Tuple[str, ...]] = {}

    # -- construction -----------------------------------------------------

    def add_module(self, name: str, path: str, tree: ast.Module,
                   source: str) -> ModuleInfo:
        info = ModuleInfo(name=name, path=path, tree=tree, source=source,
                          imports=_collect_imports(tree, name))
        self.modules[name] = info
        self._index_symbols(info)
        return info

    def _index_symbols(self, module: ModuleInfo) -> None:
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{module.name}.{stmt.name}"
                self.functions[qual] = FunctionInfo(
                    qualname=qual, module=module.name, node=stmt)
            elif isinstance(stmt, ast.ClassDef):
                class_qual = f"{module.name}.{stmt.name}"
                info = ClassInfo(
                    qualname=class_qual, module=module.name, node=stmt,
                    fields=_class_fields(stmt),
                    base_names=tuple(
                        name for name in (
                            _dotted(b) for b in stmt.bases) if name
                    ),
                )
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_qual = f"{class_qual}.{sub.name}"
                        method = FunctionInfo(
                            qualname=method_qual, module=module.name,
                            node=sub, class_name=class_qual)
                        info.methods[sub.name] = method
                        self.functions[method_qual] = method
                self.classes[class_qual] = info

    def finish(self) -> None:
        """Freeze the model: build the approximate call graph."""
        calls: Dict[str, Set[str]] = {}
        for qualname in sorted(self.functions):
            func = self.functions[qualname]
            module = self.modules[func.module]
            edges: Set[str] = set()
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = self.resolve_call(module, node, func)
                if resolved is None:
                    continue
                if resolved in self.functions or resolved in self.classes:
                    edges.add(resolved)
            calls[qualname] = edges
        self._calls = {name: tuple(sorted(edges))
                       for name, edges in calls.items()}

    # -- resolution -------------------------------------------------------

    def resolve(self, module: ModuleInfo, dotted: str,
                func: Optional[FunctionInfo] = None) -> Optional[str]:
        """Qualified name for a dotted reference inside ``module``.

        Resolution is approximate by design: the first path component is
        looked up in the module's imports, then among the module's own
        top-level definitions; anything else (locals, attributes of
        unknown objects) is ``None``, which analyses treat as unknown.
        """
        head, _, rest = dotted.partition(".")
        target: Optional[str] = None
        if head in module.imports:
            target = module.imports[head]
        elif f"{module.name}.{head}" in self.functions:
            target = f"{module.name}.{head}"
        elif f"{module.name}.{head}" in self.classes:
            target = f"{module.name}.{head}"
        elif func is not None and func.class_name is not None and head == "self":
            # ``self.method`` resolves to the owning class's method.
            if rest and f"{func.class_name}.{rest}" in self.functions:
                return f"{func.class_name}.{rest}"
            return None
        if target is None:
            return None
        resolved = f"{target}.{rest}" if rest else target
        return self._follow_reexport(resolved)

    def _follow_reexport(self, qualname: str, depth: int = 0) -> str:
        """Chase ``from x import y`` chains through package __init__ files."""
        if depth > 4 or qualname in self.functions or qualname in self.classes:
            return qualname
        module_part, _, leaf = qualname.rpartition(".")
        intermediate = self.modules.get(module_part)
        if intermediate is not None and leaf in intermediate.imports:
            return self._follow_reexport(
                intermediate.imports[leaf], depth + 1)
        return qualname

    def resolve_call(self, module: ModuleInfo, node: ast.Call,
                     func: Optional[FunctionInfo] = None) -> Optional[str]:
        """Qualified target of a call, or the raw dotted name if external.

        Project symbols come back as their definition qualname;
        non-project targets (``numpy.random.default_rng``) come back as
        the import-resolved dotted string so analyses can match on it.
        """
        dotted = _dotted(node.func)
        if dotted is None:
            return None
        return self.resolve(module, dotted, func)

    # -- queries ----------------------------------------------------------

    def callees(self, qualname: str) -> Tuple[str, ...]:
        return self._calls.get(qualname, ())

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qualname in sorted(self.functions):
            yield self.functions[qualname]

    def class_of(self, qualname: str) -> Optional[ClassInfo]:
        return self.classes.get(qualname)

    def function_module(self, func: FunctionInfo) -> ModuleInfo:
        return self.modules[func.module]


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectModel",
    "module_name_for",
]
