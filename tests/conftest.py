"""Shared fixtures: session-scoped corpora so page generation runs once."""

from __future__ import annotations

import pytest

from repro.workloads import generate_corpus
from repro.workloads.regexcorpus import RegexWorkloadFactory


@pytest.fixture(scope="session")
def regex_factory() -> RegexWorkloadFactory:
    return RegexWorkloadFactory()


@pytest.fixture(scope="session")
def small_corpus(regex_factory):
    """Five pages, one per category."""
    return generate_corpus(5, factory=regex_factory)


@pytest.fixture(scope="session")
def sports_pages(regex_factory):
    """Script-heavy pages for offload tests."""
    return generate_corpus(4, categories=("sports",), factory=regex_factory)
