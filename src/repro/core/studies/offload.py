"""DSP regex-offload evaluation (Figs 7a–7c, §4.2).

Reproduces the paper's three results on the top-20 sports pages:

* **Fig 7a** — scripting time and emulated PLT (ePLT) with and without
  offloading, at the default frequency governor;
* **Fig 7b** — CDF of (incremental) power drawn while executing the
  offloaded functions, CPU vs DSP — the ~4× median gap;
* **Fig 7c** — ePLT across low pinned clock frequencies, where the
  offload win grows toward ~25 %.

"ePLT" here is produced the same way the paper produced it: the identical
page-load dependency graph is replayed with the regex work re-priced on
the DSP (our browser engine executes the replay live rather than
post-processing WProf logs — the arithmetic is the same).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.stats import Summary, summarize
from repro.core.background import BackgroundLoad, make_rng
from repro.core.experiments import derive_seed
from repro.device import Device, DeviceSpec, PIXEL2
from repro.dsp import DspScriptExecutor, FastRpcChannel
from repro.jsruntime import CpuCostModel
from repro.netstack import Link, LinkSpec
from repro.sim import Environment
from repro.web import BrowserEngine, PageLoadResult
from repro.workloads import generate_corpus
from repro.workloads.pages import PageSpec
from repro.workloads.regexcorpus import RegexWorkloadFactory

#: Power-probe sampling period (a Monsoon-style monitor at 200 Hz would
#: oversample; 20 ms matches the phone's DVFS transition granularity).
POWER_SAMPLE_PERIOD_S = 0.020


@dataclass
class OffloadStudyConfig:
    """Scale and target of the offload study (paper: top-20 sports pages)."""

    n_pages: int = 8
    trials: int = 2
    device: DeviceSpec = PIXEL2
    link: LinkSpec = field(default_factory=LinkSpec)
    background_jitter: bool = True


@dataclass
class OffloadComparison:
    """Fig 7a: CPU-vs-DSP scripting time and ePLT."""

    cpu_scripting: Summary
    dsp_scripting: Summary
    cpu_eplt: Summary
    dsp_eplt: Summary

    @property
    def eplt_improvement(self) -> float:
        """Fractional ePLT reduction from offloading."""
        if self.cpu_eplt.mean <= 0:
            return 0.0
        return 1.0 - self.dsp_eplt.mean / self.cpu_eplt.mean


@dataclass
class EpltClockPoint:
    """Fig 7c: one pinned-clock x-position."""

    clock_mhz: int
    cpu_eplt: Summary
    dsp_eplt: Summary

    @property
    def improvement(self) -> float:
        if self.cpu_eplt.mean <= 0:
            return 0.0
        return 1.0 - self.dsp_eplt.mean / self.cpu_eplt.mean


class OffloadStudy:
    """Drives CPU-vs-DSP page loads over the sports-page corpus."""

    def __init__(self, config: Optional[OffloadStudyConfig] = None):
        self.config = config or OffloadStudyConfig()
        factory = RegexWorkloadFactory()
        self.pages: list[PageSpec] = generate_corpus(
            self.config.n_pages, categories=("sports",), factory=factory
        )

    # -- single load -------------------------------------------------------

    def load_page(
        self,
        page: PageSpec,
        offload: bool,
        seed: int,
        pinned_mhz: Optional[float] = None,
        power_samples: Optional[list[float]] = None,
    ) -> PageLoadResult:
        """One page load; optionally collects Fig 7b power samples.

        CPU samples are the device's incremental (dynamic) power while a
        regex-containing function executes; DSP samples are the DSP rail's
        active power during the offloaded window.
        """
        env = Environment()
        device = Device(env, self.config.device, governor="OD",
                        pinned_mhz=pinned_mhz)
        if self.config.background_jitter:
            BackgroundLoad(env, device, make_rng(seed))
        link = Link(env, self.config.link)
        channel: Optional[FastRpcChannel] = None
        if offload:
            channel = FastRpcChannel(env, device)
            executor = DspScriptExecutor(channel)
            browser = BrowserEngine(env, device, link, executor=executor)
        else:
            browser = BrowserEngine(env, device, link)

        probe_trace: list[tuple[float, float]] = []
        if power_samples is not None and not offload:
            static = sum(
                cluster.online_cores * self.config.device.power.static_w
                for cluster in device.cpu.clusters
            )

            def probe():
                while True:
                    probe_trace.append(
                        (env.now, max(device.energy.power_now - static, 0.0))
                    )
                    yield env.timeout(POWER_SAMPLE_PERIOD_S)

            env.process(probe())

        result = env.run(env.process(browser.load(page)))
        if channel is not None:
            result.dsp_busy_s = channel.busy_s
            result.dsp_energy_j = channel.energy_j
            result.energy_j += channel.energy_j
        if power_samples is not None:
            if offload:
                power_samples.extend(
                    self._dsp_power_samples(result, device)
                )
            else:
                power_samples.extend(
                    watts for t, watts in probe_trace
                    if self._in_regex_fn(result, t)
                )
        return result

    @staticmethod
    def _in_regex_fn(result: PageLoadResult, t: float) -> bool:
        return any(start <= t < end for start, end in result.regex_fn_intervals)

    def _dsp_power_samples(self, result: PageLoadResult,
                           device: Device) -> list[float]:
        """Per-interval DSP rail power during offloaded execution.

        The draw varies with the vector/scalar phase mix; sample one value
        per DVFS-granularity window across each offloaded interval.
        """
        dsp = device.accelerators.dsp
        assert dsp is not None
        samples = []
        for index, (start, end) in enumerate(result.regex_fn_intervals):
            n = max(1, int((end - start) / POWER_SAMPLE_PERIOD_S))
            for k in range(n):
                phase = 0.85 + 0.30 * (((index + k) * 2654435761) % 97) / 97.0
                samples.append(dsp.active_w * phase)
        return samples

    # -- Fig 7a ------------------------------------------------------------

    def compare_default_governor(self) -> OffloadComparison:
        """Scripting time and ePLT, CPU vs DSP, at the default governor."""
        rows = {True: ([], []), False: ([], [])}
        for offload in (False, True):
            for trial in range(self.config.trials):
                seed = derive_seed(f"fig7a:{offload}", trial)
                for page in self.pages:
                    r = self.load_page(page, offload, seed)
                    rows[offload][0].append(r.script_time)
                    rows[offload][1].append(r.plt)
        return OffloadComparison(
            cpu_scripting=summarize(rows[False][0]),
            dsp_scripting=summarize(rows[True][0]),
            cpu_eplt=summarize(rows[False][1]),
            dsp_eplt=summarize(rows[True][1]),
        )

    # -- Fig 7b ------------------------------------------------------------

    def power_distributions(self) -> tuple[list[float], list[float]]:
        """(CPU samples, DSP samples) of power during offloaded functions."""
        cpu_samples: list[float] = []
        dsp_samples: list[float] = []
        for trial in range(self.config.trials):
            seed = derive_seed("fig7b", trial)
            for page in self.pages:
                self.load_page(page, False, seed, power_samples=cpu_samples)
                self.load_page(page, True, seed, power_samples=dsp_samples)
        return cpu_samples, dsp_samples

    # -- Fig 7c ------------------------------------------------------------

    def eplt_vs_clock(
        self, clocks_mhz: Sequence[int] = (300, 441, 595, 748, 883)
    ) -> list[EpltClockPoint]:
        """ePLT with and without offload at pinned low clocks."""
        points = []
        for mhz in clocks_mhz:
            cpu, dsp = [], []
            for trial in range(self.config.trials):
                seed = derive_seed(f"fig7c:{mhz}", trial)
                for page in self.pages:
                    cpu.append(self.load_page(page, False, seed, mhz).plt)
                    dsp.append(self.load_page(page, True, seed, mhz).plt)
            points.append(EpltClockPoint(mhz, summarize(cpu), summarize(dsp)))
        return points

    # -- §4.2: regex share -----------------------------------------------------

    def regex_share_of_scripting(self) -> float:
        """Share of scripting work spent in regex evaluation (ops-weighted)."""
        cost = CpuCostModel()
        total = sum(p.scripting_ops(cost) for p in self.pages)
        regex = sum(
            cost.script_regex_ops(s) for p in self.pages for s in p.scripts
        )
        return regex / total if total else 0.0


__all__ = [
    "EpltClockPoint",
    "OffloadComparison",
    "OffloadStudy",
    "OffloadStudyConfig",
    "POWER_SAMPLE_PERIOD_S",
]
