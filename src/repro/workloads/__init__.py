"""Synthetic workload corpora.

The paper's workloads are proprietary or ephemeral (Alexa top-50 pages as
of 2018, a YouTube 1080p clip, Skype calls, HTTP Archive history).  This
package generates seeded synthetic equivalents with the structural
properties the results depend on:

* :mod:`pages` — Alexa-like page corpus; category controls scripting share
  (news/sports script-heavy), sizes match 2018 HTTP Archive medians.
* :mod:`regexcorpus` — the regex patterns/subjects embedded in page
  scripts (URL matching, ad-list filtering, query parsing …), profiled
  through the real engine.
* :mod:`video` — segment traces for streaming and frame traces for
  telephony.
* :mod:`history` — the 2011–2018 device-spec / page-size evolution dataset
  behind Fig 1.
"""

from repro.workloads.pages import PageSpec, WebObject, generate_page, generate_corpus
from repro.workloads.regexcorpus import RegexWorkloadFactory

__all__ = [
    "PageSpec",
    "RegexWorkloadFactory",
    "WebObject",
    "generate_corpus",
    "generate_page",
]
