"""The seven phones of Table 1, as parametric device specs.

Clock ladders match the figures: the Nexus4 ladder is exactly the twelve
x-axis steps of Fig 3a/4a/5a/6 (384–1512 MHz) and the low end of the
Pixel2 ladder matches Fig 7c (300–883 MHz).

IPC values express microarchitectural efficiency relative to a reference
in-order core and were calibrated so the cross-device QoE spread of Fig 2
reproduces (Intex ≈ 4–5× the Pixel2's PLT, Gionee ≈ 3×).  The SG S6-edge
big cluster is listed at its thermally sustainable 1800 MHz rather than
its 2100 MHz burst ceiling — the paper attributes the Pixel2/S6 inversion
to how the two phones manage their big.LITTLE clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.device.accelerators import (
    CODEC_HIGH,
    CODEC_LOW_END,
    CODEC_MID,
    AcceleratorSet,
    DspSpec,
)
from repro.device.cpu import ClusterSpec
from repro.device.energy import PowerSpec


def _ladder(min_mhz: int, max_mhz: int, steps: int) -> tuple[int, ...]:
    """Evenly spaced DVFS ladder with ``steps`` operating points."""
    if steps < 2:
        raise ValueError("a ladder needs at least two steps")
    pitch = (max_mhz - min_mhz) / (steps - 1)
    return tuple(round(min_mhz + pitch * i) for i in range(steps))


#: The twelve Nexus4 operating points on the x-axis of Figs 3a/4a/5a/6.
NEXUS4_LADDER = (384, 486, 594, 702, 810, 918, 1026, 1134, 1242, 1350, 1458, 1512)

#: Pixel2 ladder; the first five steps are the x-axis of Fig 7c.
PIXEL2_BIG_LADDER = (
    300, 441, 595, 748, 883, 1056, 1209, 1363, 1516, 1670,
    1824, 1977, 2130, 2284, 2457,
)


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one phone (a Table 1 row plus model constants)."""

    name: str
    soc: str
    clusters: Sequence[ClusterSpec]
    memory_gb: float
    os_version: str
    gpu: str
    release: str
    cost_usd: int
    accelerators: AcceleratorSet = field(default_factory=AcceleratorSet)
    power: PowerSpec = field(default_factory=PowerSpec)
    #: Vertical display resolution the device is served video at (YouTube
    #: serves device-specific formats; it does not stream FullHD to an Intex).
    display_height: int = 1080

    @property
    def n_cores(self) -> int:
        return sum(cluster.n_cores for cluster in self.clusters)

    @property
    def max_clock_mhz(self) -> int:
        return max(cluster.max_mhz for cluster in self.clusters)

    @property
    def min_clock_mhz(self) -> int:
        return min(cluster.min_mhz for cluster in self.clusters)

    @property
    def best_rate_hz(self) -> float:
        """Peak single-core instruction rate (Hz × IPC)."""
        return max(c.max_mhz * 1e6 * c.ipc for c in self.clusters)


INTEX_AMAZE = DeviceSpec(
    name="Intex Amaze+",
    soc="Spreadtrum SC9832A",
    clusters=(ClusterSpec("a7", 4, _ladder(300, 1300, 8), ipc=0.58),),
    memory_gb=1.0,
    os_version="6.0",
    gpu="Mali-400",
    release="Jan 2017",
    cost_usd=60,
    accelerators=AcceleratorSet(codec=CODEC_LOW_END),
    power=PowerSpec(switching_nf=0.45, static_w=0.030),
    display_height=720,
)

GIONEE_F103 = DeviceSpec(
    name="Gionee F103",
    soc="MediaTek MT6735",
    clusters=(ClusterSpec("a53", 4, _ladder(300, 1300, 8), ipc=0.95),),
    memory_gb=2.0,
    os_version="5.0",
    gpu="Mali-T720",
    release="Oct 2015",
    cost_usd=150,
    accelerators=AcceleratorSet(codec=CODEC_LOW_END),
    power=PowerSpec(switching_nf=0.50, static_w=0.030),
    display_height=720,
)

NEXUS4 = DeviceSpec(
    name="Google Nexus4",
    soc="Snapdragon S4 Pro",
    clusters=(ClusterSpec("krait", 4, NEXUS4_LADDER, ipc=1.40),),
    memory_gb=2.0,
    os_version="5.1.1",
    gpu="Adreno 320",
    release="Nov 2012",
    cost_usd=200,
    accelerators=AcceleratorSet(codec=CODEC_MID, dsp=DspSpec("hexagon-qdsp6v4", 500.0)),
    power=PowerSpec(switching_nf=1.00, static_w=0.040),
    display_height=768,
)

GALAXY_S2_TAB = DeviceSpec(
    name="SG S2-Tab",
    soc="Exynos 5433",
    clusters=(
        ClusterSpec("a53", 4, _ladder(400, 1300, 8), ipc=1.05),
        ClusterSpec("a57", 4, _ladder(400, 1300, 8), ipc=1.75),
    ),
    memory_gb=3.0,
    os_version="5.0.2",
    gpu="Mali-T760",
    release="Sep 2015",
    cost_usd=450,
    accelerators=AcceleratorSet(codec=CODEC_MID),
    power=PowerSpec(switching_nf=1.10, static_w=0.045),
    display_height=1080,
)

PIXEL_C_TAB = DeviceSpec(
    name="Google Pixel C",
    soc="Tegra X1",
    clusters=(ClusterSpec("a57", 4, _ladder(204, 1912, 10), ipc=1.75),),
    memory_gb=3.0,
    os_version="8.0.0",
    gpu="Maxwell",
    release="Dec 2015",
    cost_usd=600,
    accelerators=AcceleratorSet(codec=CODEC_HIGH),
    power=PowerSpec(switching_nf=1.30, static_w=0.050),
    display_height=1080,
)

PIXEL2 = DeviceSpec(
    name="Google Pixel2",
    soc="Snapdragon 835",
    clusters=(
        ClusterSpec("kryo-silver", 4, _ladder(300, 1900, 10), ipc=1.55),
        ClusterSpec("kryo-gold", 4, PIXEL2_BIG_LADDER, ipc=2.20),
    ),
    memory_gb=4.0,
    os_version="8.0.0",
    gpu="Adreno 540",
    release="Oct 2017",
    cost_usd=700,
    accelerators=AcceleratorSet(codec=CODEC_HIGH, dsp=DspSpec("hexagon-682", 787.0)),
    # 10 nm Kryo 280: low switched capacitance; calibrated so sustained JS
    # execution at the ondemand operating point draws ~1.1 W (Fig 7b).
    power=PowerSpec(switching_nf=0.36, static_w=0.040),
    display_height=1080,
)

GALAXY_S6_EDGE = DeviceSpec(
    name="SG S6-edge",
    soc="Exynos 7420",
    clusters=(
        ClusterSpec("a53", 4, _ladder(400, 1500, 8), ipc=1.05),
        # Burst ceiling is 2100 MHz, but the phone's cluster management
        # throttles sustained interactive work to ~1800 MHz — this is the
        # big.LITTLE policy difference the paper calls out vs the Pixel2.
        ClusterSpec("a57", 4, _ladder(400, 1800, 8), ipc=1.75),
    ),
    memory_gb=3.0,
    os_version="6.0.1",
    gpu="Mali-T760",
    release="Apr 2015",
    cost_usd=880,
    accelerators=AcceleratorSet(codec=CODEC_HIGH),
    power=PowerSpec(switching_nf=1.15, static_w=0.045),
    display_height=1440,
)

#: Table 1 rows in the order of Fig 2's x-axis.
TABLE1_DEVICES = (
    INTEX_AMAZE,
    GIONEE_F103,
    NEXUS4,
    GALAXY_S2_TAB,
    PIXEL_C_TAB,
    GALAXY_S6_EDGE,
    PIXEL2,
)

_BY_NAME = {spec.name: spec for spec in TABLE1_DEVICES}


def by_name(name: str) -> DeviceSpec:
    """Look up a Table 1 device by its display name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


__all__ = [
    "DeviceSpec",
    "GALAXY_S2_TAB",
    "GALAXY_S6_EDGE",
    "GIONEE_F103",
    "INTEX_AMAZE",
    "NEXUS4",
    "NEXUS4_LADDER",
    "PIXEL2",
    "PIXEL2_BIG_LADDER",
    "PIXEL_C_TAB",
    "TABLE1_DEVICES",
    "by_name",
]
