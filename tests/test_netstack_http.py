"""Unit tests for the HTTP client and connection pooling."""

import pytest

from repro.device import Device, NEXUS4
from repro.netstack import HostStack, HttpClient, Link, Origin
from repro.sim import Environment


def make_client(max_conns=6, tls=True):
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=1512)
    link = Link(env)
    stack = HostStack(env, device)
    client = HttpClient(env, link, stack, max_conns_per_origin=max_conns,
                        tls=tls)
    return env, client


def test_fetch_returns_response():
    env, client = make_client()
    origin = Origin("example.com")

    def fetch():
        return (yield from client.fetch(origin, "/index.html", 50_000))

    response = env.run(env.process(fetch()))
    assert response.body_bytes == 50_000
    assert response.finished_at > response.started_at
    assert client.responses == [response]


def test_first_fetch_pays_dns():
    env, client = make_client()
    origin = Origin("example.com", server_think_s=0.0)

    def fetch_twice():
        first = yield from client.fetch(origin, "/1", 1_000)
        second = yield from client.fetch(origin, "/2", 1_000)
        return first, second

    first, second = env.run(env.process(fetch_twice()))
    assert first.elapsed > second.elapsed  # DNS + connect amortized


def test_connection_reuse():
    env, client = make_client()
    origin = Origin("example.com")

    def fetches():
        r1 = yield from client.fetch(origin, "/1", 1_000)
        r2 = yield from client.fetch(origin, "/2", 1_000)
        return r1, r2

    r1, r2 = env.run(env.process(fetches()))
    assert r1.from_new_connection
    assert not r2.from_new_connection


def test_per_origin_connection_limit():
    env, client = make_client(max_conns=2)
    origin = Origin("example.com", server_think_s=0.2)
    fetchers = [
        env.process(client.fetch(origin, f"/{i}", 1_000)) for i in range(4)
    ]
    env.run(env.all_of(fetchers))
    fresh = sum(1 for r in client.responses if r.from_new_connection)
    assert fresh == 2  # pool capped at two connections


def test_distinct_origins_get_distinct_pools():
    env, client = make_client(max_conns=1)
    a, b = Origin("a.com"), Origin("b.com")
    fetchers = [
        env.process(client.fetch(a, "/", 1_000)),
        env.process(client.fetch(b, "/", 1_000)),
    ]
    env.run(env.all_of(fetchers))
    assert all(r.from_new_connection for r in client.responses)


def test_bad_pool_size_rejected():
    env = Environment()
    device = Device(env, NEXUS4)
    link = Link(env)
    stack = HostStack(env, device)
    with pytest.raises(ValueError):
        HttpClient(env, link, stack, max_conns_per_origin=0)


def test_plain_http_faster_than_tls():
    durations = {}
    for tls in (True, False):
        env, client = make_client(tls=tls)
        origin = Origin("example.com")

        def fetch():
            yield from client.fetch(origin, "/", 20_000)

        env.run(env.process(fetch()))
        durations[tls] = env.now
    assert durations[False] < durations[True]
