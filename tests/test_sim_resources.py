"""Unit tests for Resource, Store, and Container."""

import pytest

from repro.sim import Container, Environment, Resource, Store


# -- Resource -----------------------------------------------------------------


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def worker(name):
        with res.request() as req:
            yield req
            granted.append((env.now, name))
            yield env.timeout(1)

    for name in "abc":
        env.process(worker(name))
    env.run()
    assert granted == [(0, "a"), (0, "b"), (1, "c")]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(name, start):
        yield env.timeout(start)
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(10)

    env.process(worker("first", 0))
    env.process(worker("second", 1))
    env.process(worker("third", 2))
    env.run()
    assert order == ["first", "second", "third"]


def test_resource_release_is_idempotent():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    env.run()
    res.release(req)
    res.release(req)
    assert res.count == 0


def test_resource_rejects_bad_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_queued_request_can_withdraw():
    env = Environment()
    res = Resource(env, capacity=1)
    holder = res.request()
    queued = res.request()
    env.run()
    assert res.count == 1
    queued.cancel()
    res.release(holder)
    assert res.count == 0
    assert not res.queue


# -- Store --------------------------------------------------------------------


def test_store_fifo():
    env = Environment()
    store = Store(env)
    out = []

    def producer():
        for item in ("x", "y", "z"):
            yield store.put(item)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            out.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert out == ["x", "y", "z"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    seen = []

    def consumer():
        item = yield store.get()
        seen.append((env.now, item))

    def producer():
        yield env.timeout(5)
        yield store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert seen == [(5, "late")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    events = []

    def producer():
        yield store.put(1)
        events.append(("put1", env.now))
        yield store.put(2)
        events.append(("put2", env.now))

    def consumer():
        yield env.timeout(3)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert events == [("put1", 0), ("put2", 3)]


def test_store_len_tracks_items():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    env.run()
    assert len(store) == 2


# -- Container ----------------------------------------------------------------


def test_container_level_accounting():
    env = Environment()
    tank = Container(env, capacity=10, init=4)
    tank.put(3)
    tank.get(5)
    env.run()
    assert tank.level == 2


def test_container_get_blocks_until_level():
    env = Environment()
    tank = Container(env, capacity=100)
    times = []

    def consumer():
        yield tank.get(10)
        times.append(env.now)

    def producer():
        for _ in range(10):
            yield env.timeout(1)
            yield tank.put(1)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert times == [10]


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=5, init=5)
    times = []

    def producer():
        yield tank.put(2)
        times.append(env.now)

    def consumer():
        yield env.timeout(7)
        yield tank.get(3)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [7]


def test_container_rejects_bad_amounts():
    env = Environment()
    tank = Container(env, capacity=5)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=9)
