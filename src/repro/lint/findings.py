"""Finding/severity model and per-line suppression parsing."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Dict, Optional, Set


class Severity(enum.IntEnum):
    """Ranked severity: comparisons follow the integer order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; choose from "
                f"{[s.name.lower() for s in cls]}"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, col, rule) so reports are stable across runs
    regardless of rule execution order — the linter holds itself to the
    determinism bar it enforces.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


#: ``# simlint: disable=DET001,SIM102`` or a blanket ``# simlint: disable``.
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?:=(?P<rules>[A-Za-z0-9_,\s]+))?"
)

#: Sentinel rule set meaning "every rule is suppressed on this line".
SUPPRESS_ALL = frozenset({"*"})


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line number -> rule ids suppressed on that line.

    A bare ``disable`` (no ``=RULES``) suppresses every rule on the line
    and is recorded as :data:`SUPPRESS_ALL`.
    """
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = set(SUPPRESS_ALL)
        else:
            table[lineno] = {
                token.strip().upper()
                for token in rules.split(",")
                if token.strip()
            }
    return table


def is_suppressed(
    finding: Finding, suppressions: Dict[int, Set[str]],
    logical_line: Optional[int] = None,
) -> bool:
    """True if ``finding`` is disabled by a comment on its (logical) line."""
    for lineno in (finding.line, logical_line):
        if lineno is None:
            continue
        rules = suppressions.get(lineno)
        if rules and ("*" in rules or finding.rule.upper() in rules):
            return True
    return False


__all__ = [
    "Finding",
    "SUPPRESS_ALL",
    "Severity",
    "is_suppressed",
    "parse_suppressions",
]
