"""Host-side packet processing, charged to the device CPU.

The paper's §4.1 finding: kernel packet processing is computationally
expensive enough on phones that TCP throughput is CPU-bound at low clocks
(48 → 32 Mbps over the Nexus4 ladder).  We charge a fixed instruction cost
per received/sent packet — covering IRQ handling, the SDIO/WiFi driver,
skb management, checksums, TCP/IP, and the copy to userspace — executed on
a single serialized "softirq" context, as NAPI processes one device's RX
queue on one CPU.

Calibration: 190 k reference ops/packet makes a Nexus4 (IPC 1.4) saturate
at ≈2 760 packets/s ≈ 32 Mbps at 384 MHz while staying link-limited
(≥48 Mbps of CPU headroom) above ≈600 MHz — Fig 6's shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.device import Device
from repro.sim import Environment, Resource

#: TCP maximum segment size (payload bytes per packet).
MSS = 1448


@dataclass(frozen=True)
class PacketCostModel:
    """Instruction cost of moving one packet through the kernel stack.

    TLS adds userspace crypto: a per-connection handshake cost and a
    per-byte record decrypt/encrypt cost on top of kernel processing.
    """

    rx_ops_per_pkt: float = 190_000.0
    tx_ops_per_pkt: float = 150_000.0
    tls_handshake_ops: float = 45e6
    tls_ops_per_byte: float = 22.0

    def rx_ops(self, nbytes: float, tls: bool = False) -> float:
        """Reference ops to receive ``nbytes`` of TCP payload."""
        ops = math.ceil(max(nbytes, 1) / MSS) * self.rx_ops_per_pkt
        if tls:
            ops += nbytes * self.tls_ops_per_byte
        return ops

    def tx_ops(self, nbytes: float, tls: bool = False) -> float:
        """Reference ops to send ``nbytes`` of TCP payload."""
        ops = math.ceil(max(nbytes, 1) / MSS) * self.tx_ops_per_pkt
        if tls:
            ops += nbytes * self.tls_ops_per_byte
        return ops


class HostStack:
    """The phone's kernel network stack bound to its CPU.

    ``process_rx``/``process_tx`` are simulation processes that execute the
    per-packet instruction cost on the device CPU.  A single softirq lock
    serializes stack work across connections (one NAPI poller), which is
    what makes packet processing compete with — at most — one core's worth
    of application work.
    """

    def __init__(self, env: Environment, device: Device,
                 cost: PacketCostModel = PacketCostModel()):
        self.env = env
        self.device = device
        self.cost = cost
        self._softirq = Resource(env, capacity=1)
        self._rx_bytes = 0.0
        self._tx_bytes = 0.0

    @property
    def rx_bytes(self) -> float:
        return self._rx_bytes

    @property
    def tx_bytes(self) -> float:
        return self._tx_bytes

    def process_rx(self, nbytes: float, tls: bool = False):
        """Process: charge the CPU for receiving ``nbytes`` of payload."""
        with self._softirq.request() as grant:
            yield grant
            yield from self.device.run(self.cost.rx_ops(nbytes, tls))
            self._rx_bytes += nbytes

    def process_tx(self, nbytes: float, tls: bool = False):
        """Process: charge the CPU for sending ``nbytes`` of payload."""
        with self._softirq.request() as grant:
            yield grant
            yield from self.device.run(self.cost.tx_ops(nbytes, tls))
            self._tx_bytes += nbytes

    def tls_handshake(self):
        """Process: client-side handshake crypto (userspace, any core)."""
        yield from self.device.run(self.cost.tls_handshake_ops)


__all__ = ["MSS", "HostStack", "PacketCostModel"]
