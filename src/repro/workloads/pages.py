"""Synthetic Alexa-like Web page corpus.

Pages are generated from seeded distributions matched to 2018 HTTP-Archive
medians (≈2 MB, 60–110 objects) with category-dependent structure: news
and sports pages carry substantially more scripting — the paper finds them
~6× more sensitive to CPU clock — and their scripts lean on repeated
regex list-filtering (the shape §4.2 offloads).

Every script's regex calls are *measured* through the real engine at
generation time via :class:`~repro.workloads.regexcorpus.RegexWorkloadFactory`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.jsruntime import CpuCostModel, JsFunction, Script
from repro.workloads.regexcorpus import RegexWorkloadFactory, synth_url

#: Page categories; the paper samples business, health, shopping, news,
#: and sports.
CATEGORIES = ("business", "health", "shopping", "news", "sports")

#: Categories whose scripts are regex/list heavy.
SCRIPT_HEAVY = ("news", "sports")


@dataclass(frozen=True)
class WebObject:
    """One fetchable resource in a page's dependency graph.

    ``parent`` is the object whose processing discovers this one (``None``
    for the root document).  ``discovery_frac`` places the discovery point
    within the parent's processing (0 = immediately, 1 = at its end).
    ``blocking`` marks classic synchronous ``<script>`` tags that stall the
    HTML parser until downloaded and executed.
    """

    index: int
    url: str
    origin_host: str
    kind: str  # 'html' | 'css' | 'js' | 'img' | 'font' | 'xhr'
    size_bytes: int
    parent: Optional[int]
    discovery_frac: float
    blocking: bool = False
    script: Optional[Script] = None
    #: Below-the-fold image: the fetch starts only after first paint.
    lazy: bool = False
    #: False for resources the preload scanner cannot see (inline-script
    #: document.write insertions): their fetch starts only when the parser
    #: reaches ``discovery_frac``.
    scanner_visible: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("html", "css", "js", "img", "font", "xhr"):
            raise ValueError(f"unknown object kind {self.kind!r}")
        if not 0.0 <= self.discovery_frac <= 1.0:
            raise ValueError("discovery_frac must lie in [0, 1]")


@dataclass(frozen=True)
class PageSpec:
    """A complete page: objects, dependency graph, compute footprint."""

    url: str
    category: str
    objects: tuple[WebObject, ...]
    layout_ops: float
    paint_ops: float

    @property
    def root(self) -> WebObject:
        return self.objects[0]

    @property
    def total_bytes(self) -> int:
        return sum(obj.size_bytes for obj in self.objects)

    @property
    def scripts(self) -> tuple[Script, ...]:
        return tuple(o.script for o in self.objects if o.script is not None)

    @property
    def working_set_gb(self) -> float:
        """Chrome-plus-page working set: browser baseline + decoded content."""
        return 0.28 + self.total_bytes * 40e-9

    def children_of(self, index: int) -> tuple[WebObject, ...]:
        return tuple(o for o in self.objects if o.parent == index)

    def scripting_ops(self, cost: Optional[CpuCostModel] = None) -> float:
        """Total scripting reference ops (compile + execute, CPU pricing)."""
        cost = cost or CpuCostModel()
        return sum(cost.script_ops(s) for s in self.scripts)


# -- generation ----------------------------------------------------------


def _lognormalish(rng: random.Random, low: float, high: float) -> float:
    """Skewed draw in [low, high] (squared-uniform keeps small values common)."""
    span = high - low
    return low + span * rng.random() ** 2


def _make_script(
    rng: random.Random,
    url: str,
    size_bytes: int,
    exec_ops_target: float,
    list_heavy: bool,
    factory: RegexWorkloadFactory,
    cost: CpuCostModel,
) -> Script:
    """A script whose total executed ops land near ``exec_ops_target``.

    Functions are drawn until the cumulative (generic + measured regex)
    cost reaches the target; roughly a fifth of the work ends up in regex
    calls for list-heavy scripts, single-digit percent otherwise.
    """
    regex_share = rng.uniform(0.45, 0.58) if list_heavy else rng.uniform(0.02, 0.08)
    functions: list[JsFunction] = []
    accumulated = 0.0
    index = 0
    while accumulated < exec_ops_target:
        fn_ops = min(
            _lognormalish(rng, 8e6, 1.2e8), exec_ops_target - accumulated + 4e6
        )
        calls = ()
        regex_ops = 0.0
        if rng.random() < (0.75 if list_heavy else 0.30):
            calls = factory.make_calls(rng, rng.randint(1, 4), list_heavy)
            regex_ops = sum(cost.call_ops(c) for c in calls)
            # Scale call volume toward the target share via repeats.
            want = fn_ops * regex_share
            if regex_ops > 0 and want > regex_ops:
                scale = max(1, round(want / regex_ops))
                calls = tuple(
                    type(c)(c.pattern, c.subject_chars, c.mode, c.pike_ops,
                            c.dfa_ops, c.repeats * scale)
                    for c in calls
                )
                regex_ops = sum(cost.call_ops(c) for c in calls)
        generic = max(fn_ops - regex_ops, 1e6)
        functions.append(JsFunction(f"fn_{index}", generic, calls))
        accumulated += generic + regex_ops
        index += 1
    return Script(url=url, compile_ops=2.0 * size_bytes, functions=tuple(functions))


#: Per-category structural parameters:
#: (sync js, async js, css, images, scripting ops, total target bytes)
_CATEGORY_SHAPE = {
    "business": ((3, 6), (2, 5), (3, 6), (12, 30), (0.8e9, 1.3e9), 1.6e6),
    "health": ((3, 6), (2, 5), (3, 6), (14, 32), (0.8e9, 1.3e9), 1.7e6),
    "shopping": ((4, 8), (3, 7), (4, 8), (20, 45), (1.3e9, 2.0e9), 2.2e6),
    "news": ((6, 11), (4, 9), (4, 8), (22, 50), (3.8e9, 5.5e9), 2.6e6),
    "sports": ((6, 11), (4, 9), (4, 8), (22, 50), (4.0e9, 5.8e9), 2.6e6),
}

_ORIGINS = (
    "www.page-origin.com", "cdn.page-origin.com", "static.thirdparty.net",
    "ads.trackerhub.com", "analytics.metricsrv.com", "img.mediacdn.io",
)

#: Ad-tech origins used by injected script chains: each hop of a
#: document.write chain typically lands on a *different* third party, so
#: every hop pays DNS + TCP + TLS on a cold connection.
_AD_ORIGINS = (
    "tags.admanager-one.com", "sync.bidexchange.net", "px.audiencegraph.io",
    "cdn.headerbid.tv", "beacon.viewmetrics.com", "match.dspnetwork.org",
)


def generate_page(
    seed: int,
    category: str = "news",
    factory: Optional[RegexWorkloadFactory] = None,
    cost: Optional[CpuCostModel] = None,
    bytes_factor: float = 1.0,
    ops_factor: float = 1.0,
    chain_intensity: float = 1.0,
) -> PageSpec:
    """Generate one page deterministically from ``seed``/``category``.

    ``bytes_factor``/``ops_factor`` rescale the page's byte and scripting
    budgets, and ``chain_intensity`` scales the prevalence of injected
    ad-tech script chains — the historical study (Fig 1) uses them to
    regenerate pages as they looked in earlier years.
    """
    if category not in CATEGORIES:
        raise ValueError(f"unknown category {category!r}; choose from {CATEGORIES}")
    if bytes_factor <= 0 or ops_factor <= 0:
        raise ValueError("scale factors must be positive")
    rng = random.Random((seed, category).__repr__())
    factory = factory or RegexWorkloadFactory()
    cost = cost or CpuCostModel()
    (js_lo, js_hi), (ajs_lo, ajs_hi), (css_lo, css_hi), (img_lo, img_hi), \
        (ops_lo, ops_hi), bytes_target = _CATEGORY_SHAPE[category]
    ops_lo, ops_hi = ops_lo * ops_factor, ops_hi * ops_factor
    bytes_target = bytes_target * bytes_factor
    list_heavy = category in SCRIPT_HEAVY

    objects: list[WebObject] = []
    root_host = _ORIGINS[0]
    html_bytes = int(_lognormalish(rng, 40e3, 180e3) * bytes_factor)
    objects.append(WebObject(0, f"https://{root_host}/", root_host, "html",
                             html_bytes, None, 0.0))

    def add(kind: str, size: int, parent: int, frac: float,
            blocking: bool = False, script: Optional[Script] = None,
            lazy: bool = False, scanner_visible: bool = True) -> int:
        index = len(objects)
        # Half the subresources live on the page's own origins, the rest on
        # third parties — keeps the 6-connections-per-origin limit binding.
        host = _ORIGINS[0] if rng.random() < 0.5 else rng.choice(_ORIGINS[1:])
        objects.append(WebObject(index, synth_url(rng), host, kind, size,
                                 parent, frac, blocking, script, lazy,
                                 scanner_visible))
        return index

    n_sync = rng.randint(js_lo, js_hi)
    n_async = rng.randint(ajs_lo, ajs_hi)
    scripting_budget = rng.uniform(ops_lo, ops_hi)
    # Synchronous scripts get the lion's share of execution.
    sync_ops = scripting_budget * 0.7 / max(n_sync, 1)
    async_ops = scripting_budget * 0.3 / max(n_async, 1)

    sync_indices = []
    for i in range(n_sync):
        size = int(_lognormalish(rng, 25e3, 280e3) * bytes_factor)
        script = _make_script(rng, f"sync{i}.js", size, sync_ops,
                              list_heavy, factory, cost)
        frac = rng.uniform(0.05, 0.95)
        # ~40 % of sync scripts (on a modern page; scaled by
        # ``chain_intensity`` for historical ones) are inserted by inline
        # scripts, so the preload scanner never sees them; the fetch starts
        # only when the parser reaches their position — pure network on the
        # critical path.
        visible = rng.random() >= 0.4 * chain_intensity
        index = add("js", size, 0, frac, True, script, scanner_visible=visible)
        sync_indices.append(index)
        # document.write / tag-manager chains: scripts that inject further
        # *blocking* scripts, invisible to the preload scanner.  These
        # serialize fetch+execute on the parser's critical path.
        parent = index
        depth = rng.randint(1, 3) if rng.random() < 0.8 * chain_intensity else 0
        for level in range(depth):
            size = int(_lognormalish(rng, 15e3, 120e3) * bytes_factor)
            chained = _make_script(rng, f"sync{i}_inj{level}.js", size,
                                   sync_ops * 0.35, list_heavy, factory, cost)
            child = len(objects)
            objects.append(WebObject(
                child, synth_url(rng), rng.choice(_AD_ORIGINS), "js", size,
                parent, frac, True, chained, False, False,
            ))
            parent = child
    for i in range(n_async):
        size = int(_lognormalish(rng, 15e3, 180e3) * bytes_factor)
        script = _make_script(rng, f"async{i}.js", size, async_ops,
                              list_heavy, factory, cost)
        add("js", size, 0, rng.uniform(0.05, 0.9), False, script)
    for _ in range(rng.randint(css_lo, css_hi)):
        add("css", int(_lognormalish(rng, 8e3, 90e3) * bytes_factor), 0,
            rng.uniform(0.0, 0.3))
    for _ in range(rng.randint(1, 3)):
        add("font", int(_lognormalish(rng, 15e3, 80e3)), 0, rng.uniform(0.0, 0.3))

    # Second- and third-level discoveries: sync scripts fetch XHRs and
    # more scripts, which in turn fetch data — the dependency chains that
    # put network time on the critical path even on a 10 ms LAN.
    for parent in sync_indices:
        for _ in range(rng.randint(1, 3)):
            kind = "xhr" if rng.random() < 0.55 else "js"
            size = int(_lognormalish(rng, 2e3, 60e3))
            script = None
            if kind == "js":
                script = _make_script(rng, "lazy.js", size, async_ops * 0.5,
                                      list_heavy, factory, cost)
            child = add(kind, size, parent, 1.0, False, script)
            if kind == "js":
                for _ in range(rng.randint(0, 2)):
                    add("xhr", int(_lognormalish(rng, 2e3, 30e3)), child, 1.0)

    # Images fill the remaining byte budget; those far down the document
    # are lazy-loaded after first paint.
    n_img = rng.randint(img_lo, img_hi)
    used = sum(o.size_bytes for o in objects)
    img_budget = max(bytes_target - used, n_img * 4e3)
    for _ in range(n_img):
        size = int(min(_lognormalish(rng, 4e3, 2.5 * img_budget / n_img), 400e3))
        frac = rng.uniform(0.1, 1.0)
        add("img", size, 0, frac, lazy=(frac > 0.7 and rng.random() < 0.5))

    layout_ops = 1.0e8 + 2.5e4 * len(objects) ** 1.2
    paint_ops = 0.6 * layout_ops
    return PageSpec(
        url=f"https://{root_host}/", category=category,
        objects=tuple(objects), layout_ops=layout_ops, paint_ops=paint_ops,
    )


def generate_corpus(
    n_pages: int = 50,
    seed: int = 42,
    categories: Sequence[str] = CATEGORIES,
    factory: Optional[RegexWorkloadFactory] = None,
) -> list[PageSpec]:
    """The "Alexa top-N" corpus: pages cycled across ``categories``."""
    factory = factory or RegexWorkloadFactory()
    cost = CpuCostModel()
    return [
        generate_page(seed + i, categories[i % len(categories)], factory, cost)
        for i in range(n_pages)
    ]


__all__ = [
    "CATEGORIES",
    "PageSpec",
    "SCRIPT_HEAVY",
    "WebObject",
    "generate_corpus",
    "generate_page",
]
