"""Supervision overhead: SupervisedExecutor vs bare MultiprocessExecutor.

The supervisor's dispatch loop (windowed submission, deadline tracking,
signal bookkeeping) runs in the parent while workers do the real
per-task compute, so on a clean run its cost must disappear into the
noise.  This benchmark runs the identical task batch through both pool
executors and asserts the supervised run stays within 5% of the bare
one (with an absolute floor so sub-second batches don't fail on
scheduler jitter).
"""

from __future__ import annotations

import os
import time

from repro.core.background import make_rng
from repro.parallel import MultiprocessExecutor, SupervisedExecutor
from repro.sim import Environment

TASKS = 16
JOBS = 4
#: Allowed supervised-vs-bare slowdown on a clean run.
MAX_OVERHEAD = 0.05
#: Absolute jitter floor: differences below this are scheduler noise,
#: not supervision cost.
JITTER_FLOOR_S = 0.5


def kernel_task(seed: int) -> float:
    """~0.15s of event-loop work per task — figure-trial shaped."""
    env = Environment()
    rng = make_rng(seed)

    def spin():
        for _ in range(100_000):
            yield env.timeout(rng.uniform(0.1, 1.0))

    env.run(env.process(spin()))
    return env.now


def run_batch(executor) -> tuple[float, list]:
    start = time.perf_counter()  # simlint: disable=DET001
    results = executor.map(kernel_task, list(range(TASKS)))
    elapsed = time.perf_counter() - start  # simlint: disable=DET001
    return elapsed, results


def test_supervisor_overhead(fig_printer, perf_track):
    # Bare first, then supervised, after a warm-up batch that pays the
    # one-time interpreter/fork costs for both.
    run_batch(MultiprocessExecutor(JOBS))
    bare_s, bare_results = run_batch(MultiprocessExecutor(JOBS))
    supervised = SupervisedExecutor(JOBS, poll_interval_s=0.02)
    supervised_s, supervised_results = run_batch(supervised)

    overhead = supervised_s / bare_s - 1.0
    perf_track("parallel.supervisor.supervised_s", supervised_s,
               cores=os.cpu_count() or 1, tasks=TASKS, jobs=JOBS)
    body = "\n".join([
        f"tasks               {TASKS}",
        f"host cores          {os.cpu_count() or 1}",
        f"bare pool           {bare_s:8.3f} s",
        f"supervised pool     {supervised_s:8.3f} s",
        f"overhead            {overhead:8.1%}  (budget {MAX_OVERHEAD:.0%})",
    ])
    fig_printer("Supervised executor overhead on a clean run", body)

    # Same results, no supervision events, bounded overhead.
    assert supervised_results == bare_results
    assert supervised.last_supervision.clean
    assert (supervised_s - bare_s) < max(MAX_OVERHEAD * bare_s,
                                         JITTER_FLOOR_S)
