"""Page-load measurement records (the WProf-style view of one load).

Every timed activity carries its dependency edges, so the load produces a
replayable activity DAG.  :mod:`repro.analysis.critpath` extracts the
critical path and splits it into compute vs network — the decomposition
the paper reports in §3.1 — and :mod:`repro.core.offload` replays the same
DAG with regex functions re-priced on the DSP (the ePLT methodology of
§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.critpath import COMPUTE_KINDS, NETWORK_KINDS


@dataclass
class ActivityRecord:
    """One timed activity with its dependency edges (WProf's unit)."""

    id: int
    kind: str
    label: str
    start: float
    end: float
    deps: tuple[int, ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_compute(self) -> bool:
        return self.kind in COMPUTE_KINDS

    @property
    def is_network(self) -> bool:
        return self.kind in NETWORK_KINDS


@dataclass
class PageLoadResult:
    """Everything measured during one page load.

    ``compute_time``/``network_time`` are the critical-path decomposition
    (filled by the analyzer after the load); ``main_busy_time`` is raw
    integrated main-thread busy time; per-kind ``*_time`` fields are
    actual main-thread durations regardless of criticality.
    """

    url: str
    category: str
    plt: float = 0.0
    compute_time: float = 0.0
    network_time: float = 0.0
    main_busy_time: float = 0.0
    parse_time: float = 0.0
    script_time: float = 0.0
    script_regex_fn_time: float = 0.0  # time in functions containing regex
    style_time: float = 0.0
    layout_time: float = 0.0
    paint_time: float = 0.0
    decode_time: float = 0.0
    bytes_fetched: float = 0.0
    n_requests: int = 0
    energy_j: float = 0.0
    dsp_busy_s: float = 0.0
    dsp_energy_j: float = 0.0
    cp_kind_breakdown: dict[str, float] = field(default_factory=dict)
    activities: list[ActivityRecord] = field(default_factory=list)
    #: Execution intervals of regex-containing functions (for the Fig 7b
    #: power-trace analysis).
    regex_fn_intervals: list[tuple[float, float]] = field(default_factory=list)

    @property
    def scripting_share(self) -> float:
        """Scripting as a fraction of critical-path compute."""
        total = sum(
            t for kind, t in self.cp_kind_breakdown.items()
            if kind in COMPUTE_KINDS or kind.endswith("-queue")
        )
        if total <= 0:
            return 0.0
        return self.cp_kind_breakdown.get("script", 0.0) / total

    @property
    def layout_paint_share(self) -> float:
        total = self.compute_time
        if total <= 0:
            return 0.0
        layout = self.cp_kind_breakdown.get("layout", 0.0)
        paint = self.cp_kind_breakdown.get("paint", 0.0)
        return (layout + paint) / total


__all__ = ["ActivityRecord", "COMPUTE_KINDS", "NETWORK_KINDS", "PageLoadResult"]
