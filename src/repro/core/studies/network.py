"""Clock-frequency impact on TCP throughput (Fig 6, §4.1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.device import DeviceSpec, NEXUS4
from repro.netstack import LinkSpec, run_iperf


@dataclass(frozen=True)
class ThroughputPoint:
    """One x-position of Fig 6."""

    clock_mhz: int
    throughput_mbps: float


def throughput_vs_clock(
    spec: DeviceSpec = NEXUS4,
    ladder: Optional[Sequence[int]] = None,
    duration_s: float = 15.0,
    link: LinkSpec = LinkSpec(),
) -> list[ThroughputPoint]:
    """iperf throughput at each pinned clock (the paper's 12-step sweep).

    The paper measures 5 minutes × 20 repetitions; the simulation is
    deterministic and converges within seconds, so ``duration_s`` defaults
    far lower.
    """
    ladder = ladder or spec.clusters[0].freqs_mhz
    points = []
    for mhz in ladder:
        result = run_iperf(spec, clock_mhz=mhz, duration_s=duration_s,
                           link_spec=link)
        points.append(ThroughputPoint(mhz, result.throughput_mbps))
    return points


__all__ = ["ThroughputPoint", "throughput_vs_clock"]
