"""Fig 4d: streaming QoE per governor."""

from repro.analysis import render_table
from repro.core.studies import VideoStudy, VideoStudyConfig
from repro.video import VideoSpec


def run_fig4d():
    study = VideoStudy(VideoStudyConfig(clip=VideoSpec(duration_s=60),
                                        trials=1))
    return study.vs_governor()


def test_fig4d(benchmark, fig_printer):
    points = benchmark.pedantic(run_fig4d, rounds=1, iterations=1)
    table = render_table(
        ["Governor", "Startup (s)", "Stall ratio"],
        [[p.label, f"{p.startup.mean:.2f}", f"{p.stall_ratio.mean:.3f}"]
         for p in points],
    )
    fig_printer("Fig 4d: YouTube vs governor (Nexus4)", table)
    by_code = {p.label: p for p in points}
    assert by_code["PW"].startup.mean > 1.25 * by_code["PF"].startup.mean
    assert all(p.stall_ratio.mean < 0.03 for p in points)
