"""Fig 3b: Web PLT vs memory capacity (RAM-disk restricted)."""

from repro.analysis import ascii_bars
from repro.core.studies import WebStudy, WebStudyConfig


def run_fig3b():
    study = WebStudy(WebStudyConfig(n_pages=5, trials=1))
    return study.plt_vs_memory(sizes_gb=(0.5, 1.0, 1.5, 2.0))


def test_fig3b(benchmark, fig_printer):
    rows = benchmark.pedantic(run_fig3b, rounds=1, iterations=1)
    body = ascii_bars([f"{gb} GB" for gb, _ in rows],
                      [s.mean for _, s in rows], unit="s")
    fig_printer("Fig 3b: PLT vs memory (Nexus4)", body)
    by_gb = dict(rows)
    # Paper: ~2× PLT at 512 MB vs 2 GB.
    assert 1.4 < by_gb[0.5].mean / by_gb[2.0].mean < 3.0
    plts = [s.mean for _, s in rows]
    assert all(a >= b * 0.95 for a, b in zip(plts, plts[1:]))
