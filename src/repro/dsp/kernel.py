"""DSP-side cost model for offloaded regex evaluation.

The paper converts JavaScript regex functions into C calls and runs the
regular-expression evaluation on the aDSP.  Relative to the CPU's JS
engine the DSP wins two ways:

* **HVX vector lanes** chew through table-driven DFA scans several
  characters per cycle (``dfa_cycles_per_op`` < 1) — this is the loop
  shape URL filters and list scans compile to;
* **hardware loops + VLIW packing** keep even the Pike-VM-shaped scans
  (captures, findall) competitive despite the modest 787 MHz clock.

Costs are per *engine operation* measured by :mod:`repro.regexlib` on the
actual pattern/subject, so the CPU and DSP price exactly the same work.
Constants are calibrated so a Pixel2 at its default governor reproduces
Fig 7a (≈18 % ePLT reduction) and the win grows to ≈25 % at 300 MHz
(Fig 7c).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jsruntime import JsFunction, RegexCall


@dataclass(frozen=True)
class DspCostModel:
    """DSP cycles per regex-engine operation."""

    #: Cycles per Pike-VM engine op (scalar VLIW, hardware loops).
    pike_cycles_per_op: float = 1.3
    #: Cycles per DFA transition (HVX table-driven scan, multiple
    #: characters per cycle).
    dfa_cycles_per_op: float = 0.13

    def call_cycles(self, call: RegexCall) -> float:
        """DSP cycles for one recorded regex call (all repeats)."""
        if call.mode == "test" and call.dfa_ops is not None:
            per_call = call.dfa_ops * self.dfa_cycles_per_op
        else:
            per_call = call.pike_ops * self.pike_cycles_per_op
        return per_call * call.repeats


class DspRegexKernel:
    """Prices a function's offloaded regex work on the DSP."""

    def __init__(self, cost: DspCostModel = DspCostModel()):
        self.cost = cost

    def regex_cycles(self, function: JsFunction) -> float:
        """DSP cycles for all regex calls in ``function`` (one batch)."""
        return sum(self.cost.call_cycles(c) for c in function.regex_calls)

    def payload_bytes(self, function: JsFunction) -> float:
        """Subject data shipped to the DSP for one batched invocation.

        Each call's subject buffer crosses once (repeats rescan the same
        ION-mapped buffer on the DSP side).
        """
        return sum(c.subject_chars for c in function.regex_calls)


__all__ = ["DspCostModel", "DspRegexKernel"]
